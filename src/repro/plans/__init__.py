"""Query plans: DAG representation, builder, annotation, rendering."""

from repro.plans.annotate import (
    NodeEstimate,
    PlanAnnotation,
    annotate,
    bulk_erspi,
)
from repro.plans.builder import PlanBuilder, Poset, chain_poset, parallel_after
from repro.plans.dag import PlanError, QueryPlan, plan_with_nodes
from repro.plans.nodes import InputNode, JoinNode, OutputNode, PlanNode, ServiceNode
from repro.plans.render import render_ascii, render_dot, summarize
from repro.plans.spec import PlanSpec

__all__ = [
    "InputNode",
    "JoinNode",
    "NodeEstimate",
    "OutputNode",
    "PlanAnnotation",
    "PlanBuilder",
    "PlanError",
    "PlanNode",
    "PlanSpec",
    "Poset",
    "QueryPlan",
    "ServiceNode",
    "annotate",
    "bulk_erspi",
    "chain_poset",
    "parallel_after",
    "plan_with_nodes",
    "render_ascii",
    "render_dot",
    "summarize",
]
