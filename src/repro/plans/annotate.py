"""Annotating plans with expected tuple flows and invocation counts.

Implements Section 3.4 and Section 5.2 of the paper:

* ``tuples_in(n)`` — tuples arriving at node ``n`` (the raw stream);
* ``tuples_out(n)`` — expected output size: ``t_in · ξ`` for exact
  services, ``t_in · cs · F`` for chunked services, and
  ``t_out(l) · t_out(m) · σ`` for a join of ``l`` and ``m`` (Eq. 1 and
  Section 3.4);
* ``calls(n)`` — the number of invocations actually required, which
  depends on the cache setting (Section 5.2).  Without caching it is
  the raw stream size.  With caching, blocks of uniform tuples need a
  single call, so Eq. (2) applies::

      t_in(n) = prod over m in N(n) of  ξ_m · t_in(m)  =  prod t_out(m)

  where ``N(n)`` contains, for each input variable ``X`` of ``n``, the
  node with *minimal* ``t_out`` among the nodes lying on a path from a
  provider of ``X`` to ``n`` — a selective intermediary bounds the
  number of distinct values of ``X`` that can reach ``n``.

Selection predicates assigned to a node multiply its output by their
selectivity (the paper folds selections into the notion of erspi).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.execution.cache import CacheSetting
from repro.model.terms import Variable
from repro.plans.dag import PlanError, QueryPlan
from repro.plans.nodes import InputNode, JoinNode, OutputNode, PlanNode, ServiceNode


@dataclass(frozen=True)
class NodeEstimate:
    """Expected tuple traffic at one plan node."""

    tuples_in: float
    tuples_out: float
    calls: float

    def __post_init__(self) -> None:
        if self.tuples_in < 0 or self.tuples_out < 0 or self.calls < 0:
            raise PlanError("estimates must be non-negative")


@dataclass(frozen=True)
class PlanAnnotation:
    """Estimates for every node of a plan, plus the overall output size."""

    cache_setting: CacheSetting
    estimates: dict[str, NodeEstimate]
    output_size: float

    def of(self, node: PlanNode) -> NodeEstimate:
        """Estimate for *node*."""
        return self.estimates[node.node_id]

    def calls(self, node: PlanNode) -> float:
        """Expected number of invocations of *node*."""
        return self.estimates[node.node_id].calls

    def tuples_out(self, node: PlanNode) -> float:
        """Expected output size of *node*."""
        return self.estimates[node.node_id].tuples_out

    def tuples_in(self, node: PlanNode) -> float:
        """Expected input size of *node*."""
        return self.estimates[node.node_id].tuples_in


#: Selectivity charged per *output* position that is constrained after
#: retrieval: a constant in an output field acts as an equality
#: selection (e.g. ``Category = 'luxury'`` under an all-output
#: pattern), and an output variable that is already bound upstream is
#: an implicit equi-join — the execution engine drops mismatching
#: tuples, so the estimate must charge for them too.  The value is the
#: classical default equality selectivity.
EQUALITY_OUTPUT_SELECTIVITY = 0.1


def _selectivity_of(
    node: ServiceNode | JoinNode | OutputNode,
    bound_upstream: frozenset[Variable] = frozenset(),
) -> float:
    predicates = getattr(node, "predicates", None)
    if predicates is None:
        predicates = getattr(node, "residual_predicates", ())
    result = 1.0
    for predicate in predicates:
        result *= predicate.estimated_selectivity()
    if isinstance(node, ServiceNode):
        assert node.atom is not None and node.pattern is not None
        for position in node.pattern.output_positions:
            term = node.atom.term_at(position)
            if not isinstance(term, Variable) or term in bound_upstream:
                result *= EQUALITY_OUTPUT_SELECTIVITY
    return result


def _upstream_variables(plan: QueryPlan, node: ServiceNode) -> frozenset[Variable]:
    """Variables bound by the service nodes strictly preceding *node*."""
    bound: set[Variable] = set()
    for ancestor in plan.upstream_service_nodes(node):
        assert ancestor.atom is not None
        bound |= ancestor.atom.variable_set
    return frozenset(bound)


def annotate(plan: QueryPlan, cache_setting: CacheSetting) -> PlanAnnotation:
    """Compute :class:`NodeEstimate` for every node of *plan*."""
    estimates: dict[str, NodeEstimate] = {}
    order = plan.topological_order()

    for node in order:
        if isinstance(node, InputNode):
            # The user always injects one single input tuple (Sec. 3.4).
            estimates[node.node_id] = NodeEstimate(
                tuples_in=1.0, tuples_out=1.0, calls=0.0
            )
        elif isinstance(node, ServiceNode):
            estimates[node.node_id] = _estimate_service(
                plan, node, estimates, cache_setting
            )
        elif isinstance(node, JoinNode):
            estimates[node.node_id] = _estimate_join(plan, node, estimates)
        elif isinstance(node, OutputNode):
            estimates[node.node_id] = _estimate_output(plan, node, estimates)
        else:
            raise PlanError(f"unknown node type: {type(node).__name__}")

    output_estimate = estimates[plan.output_node.node_id]
    return PlanAnnotation(
        cache_setting=cache_setting,
        estimates=estimates,
        output_size=output_estimate.tuples_out,
    )


def _feed_size(plan: QueryPlan, node: PlanNode, estimates: dict[str, NodeEstimate]) -> float:
    predecessors = plan.predecessors(node)
    if len(predecessors) != 1:
        raise PlanError(
            f"node {node.node_id!r} expected exactly one predecessor, "
            f"got {len(predecessors)}"
        )
    return estimates[predecessors[0].node_id].tuples_out


def _estimate_service(
    plan: QueryPlan,
    node: ServiceNode,
    estimates: dict[str, NodeEstimate],
    cache_setting: CacheSetting,
) -> NodeEstimate:
    assert node.profile is not None
    tuples_in = _feed_size(plan, node, estimates)
    selectivity = _selectivity_of(node, _upstream_variables(plan, node))
    if node.profile.is_chunked:
        per_input = node.profile.chunk_size * node.fetches  # type: ignore[operator]
        tuples_out = tuples_in * per_input * selectivity
    else:
        tuples_out = tuples_in * node.profile.erspi * selectivity
    if cache_setting is CacheSetting.NO_CACHE:
        calls = tuples_in
    else:
        calls = min(tuples_in, _cached_calls(plan, node, estimates))
    return NodeEstimate(tuples_in=tuples_in, tuples_out=tuples_out, calls=calls)


def _cached_calls(
    plan: QueryPlan, node: ServiceNode, estimates: dict[str, NodeEstimate]
) -> float:
    """Equation (2): product of the minimal contributions per input var.

    For each input variable ``X`` of *node*, the candidate bounding
    nodes are the providers of ``X`` (upstream service nodes with ``X``
    among their outputs) and every node lying between a provider and
    *node*; the minimal ``t_out`` among them bounds the number of
    distinct bindings of ``X``.  ``N(node)`` is the *set* of chosen
    minimizers (one per variable, deduplicated), and the estimate is
    the product of their ``t_out`` values.
    """
    input_variables = node.input_variables
    if not input_variables:
        # All inputs are constants: a single invocation covers every
        # block once any cache is present.
        return 1.0
    ancestors = plan.ancestors(node)
    minimizers: set[str] = set()
    for variable in sorted(input_variables, key=lambda v: v.name):
        candidates = _bounding_nodes(plan, node, variable, ancestors)
        if not candidates:
            # No upstream provider: the variable must be bound by the
            # atom's own constants or is supplied by the user input.
            continue
        best = min(candidates, key=lambda nid: (estimates[nid].tuples_out, nid))
        minimizers.add(best)
    if not minimizers:
        return 1.0
    calls = 1.0
    for node_id in minimizers:
        calls *= estimates[node_id].tuples_out
    return calls


def _bounding_nodes(
    plan: QueryPlan,
    node: ServiceNode,
    variable: Variable,
    ancestors: frozenset[str],
) -> set[str]:
    """Ids of nodes bounding the distinct values of *variable* at *node*."""
    bounding: set[str] = set()
    for candidate in plan.nodes:
        if candidate.node_id not in ancestors:
            continue
        if isinstance(candidate, ServiceNode):
            if variable in candidate.output_variables:
                # A provider of the variable.
                bounding.add(candidate.node_id)
                continue
        # Intermediaries: nodes strictly between some provider and
        # *node*.  A node m is such an intermediary iff some provider
        # is an ancestor of m (and m is an ancestor of node, which we
        # already know).
        if isinstance(candidate, (ServiceNode, JoinNode)):
            candidate_ancestors = plan.ancestors(candidate)
            for provider in plan.nodes:
                if (
                    isinstance(provider, ServiceNode)
                    and provider.node_id in candidate_ancestors
                    and variable in provider.output_variables
                ):
                    bounding.add(candidate.node_id)
                    break
    return bounding


def _estimate_join(
    plan: QueryPlan, node: JoinNode, estimates: dict[str, NodeEstimate]
) -> NodeEstimate:
    predecessors = plan.predecessors(node)
    if len(predecessors) != 2:
        raise PlanError(f"join {node.node_id!r} must have two predecessors")
    left, right = predecessors
    pairs = estimates[left.node_id].tuples_out * estimates[right.node_id].tuples_out
    tuples_out = pairs * node.selectivity
    return NodeEstimate(tuples_in=pairs, tuples_out=tuples_out, calls=0.0)


def _estimate_output(
    plan: QueryPlan, node: OutputNode, estimates: dict[str, NodeEstimate]
) -> NodeEstimate:
    tuples_in = _feed_size(plan, node, estimates)
    tuples_out = tuples_in * _selectivity_of(node)
    return NodeEstimate(tuples_in=tuples_in, tuples_out=tuples_out, calls=0.0)


def bulk_erspi(plan: QueryPlan) -> float:
    """Ξ(G): the product of the erspi of all *bulk* service nodes.

    Used by the closed-form fetch assignment (Eq. 5): the output size
    of a plan whose chunked contributions can be isolated equals
    ``Ξ(G) · Π (cs_i · F_i)``.  Join and predicate selectivities are
    folded in by the caller via the annotation.
    """
    result = 1.0
    for node in plan.service_nodes:
        assert node.profile is not None
        if not node.profile.is_chunked:
            result *= node.profile.erspi * _selectivity_of(node)
    return result
