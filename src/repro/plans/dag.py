"""Query plans as directed acyclic graphs (Sections 2.2, 3.3).

A :class:`QueryPlan` has a unique :class:`~repro.plans.nodes.InputNode`
and a unique :class:`~repro.plans.nodes.OutputNode`; every other node
is a service invocation or a parallel join.  Arcs indicate precedence
in the invocation and possibly parameter passing; nodes not connected
by any directed path are invoked in parallel.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.plans.nodes import InputNode, JoinNode, OutputNode, PlanNode, ServiceNode


class PlanError(ValueError):
    """Raised for malformed plans (cycles, missing IN/OUT, etc.)."""


class QueryPlan:
    """A mutable DAG of plan nodes, built by the plan builder."""

    def __init__(self) -> None:
        self._nodes: dict[str, PlanNode] = {}
        self._succ: dict[str, list[str]] = {}
        self._pred: dict[str, list[str]] = {}
        self._input: InputNode | None = None
        self._output: OutputNode | None = None
        self._ancestors_memo: dict[str, frozenset[str]] = {}

    # -- construction ---------------------------------------------------

    def add_node(self, node: PlanNode) -> PlanNode:
        """Insert *node*; returns it for chaining."""
        if node.node_id in self._nodes:
            raise PlanError(f"duplicate node id {node.node_id!r}")
        if isinstance(node, InputNode):
            if self._input is not None:
                raise PlanError("plan already has an input node")
            self._input = node
        if isinstance(node, OutputNode):
            if self._output is not None:
                raise PlanError("plan already has an output node")
            self._output = node
        self._nodes[node.node_id] = node
        self._succ[node.node_id] = []
        self._pred[node.node_id] = []
        return node

    def add_arc(self, origin: PlanNode, destination: PlanNode) -> None:
        """Add the arc origin → destination (checks acyclicity lazily)."""
        for node in (origin, destination):
            if node.node_id not in self._nodes:
                raise PlanError(f"node {node.node_id!r} not in plan")
        if destination.node_id in self._succ[origin.node_id]:
            return
        self._succ[origin.node_id].append(destination.node_id)
        self._pred[destination.node_id].append(origin.node_id)
        self._ancestors_memo.clear()

    # -- basic accessors -------------------------------------------------

    @property
    def input_node(self) -> InputNode:
        """The unique start node."""
        if self._input is None:
            raise PlanError("plan has no input node")
        return self._input

    @property
    def output_node(self) -> OutputNode:
        """The unique end node."""
        if self._output is None:
            raise PlanError("plan has no output node")
        return self._output

    @property
    def nodes(self) -> tuple[PlanNode, ...]:
        """All nodes, in insertion order."""
        return tuple(self._nodes.values())

    def node(self, node_id: str) -> PlanNode:
        """Node lookup by id."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise PlanError(f"no node with id {node_id!r}") from None

    @property
    def service_nodes(self) -> tuple[ServiceNode, ...]:
        """All service nodes, in insertion order."""
        return tuple(n for n in self._nodes.values() if isinstance(n, ServiceNode))

    @property
    def join_nodes(self) -> tuple[JoinNode, ...]:
        """All parallel-join nodes, in insertion order."""
        return tuple(n for n in self._nodes.values() if isinstance(n, JoinNode))

    @property
    def chunked_service_nodes(self) -> tuple[ServiceNode, ...]:
        """Service nodes whose service pages its results."""
        return tuple(n for n in self.service_nodes if n.is_chunked)

    def service_node_for_atom(self, atom_index: int) -> ServiceNode:
        """The service node executing the body atom at *atom_index*."""
        for node in self.service_nodes:
            if node.atom_index == atom_index:
                return node
        raise PlanError(f"no service node for atom index {atom_index}")

    def successors(self, node: PlanNode) -> tuple[PlanNode, ...]:
        """Direct successors of *node*."""
        return tuple(self._nodes[i] for i in self._succ[node.node_id])

    def predecessors(self, node: PlanNode) -> tuple[PlanNode, ...]:
        """Direct predecessors of *node*."""
        return tuple(self._nodes[i] for i in self._pred[node.node_id])

    # -- graph algorithms --------------------------------------------------

    def topological_order(self) -> tuple[PlanNode, ...]:
        """Nodes in a topological order; raises :class:`PlanError` on cycles."""
        in_degree = {i: len(self._pred[i]) for i in self._nodes}
        frontier = [i for i, d in in_degree.items() if d == 0]
        order: list[PlanNode] = []
        while frontier:
            current = frontier.pop(0)
            order.append(self._nodes[current])
            for nxt in self._succ[current]:
                in_degree[nxt] -= 1
                if in_degree[nxt] == 0:
                    frontier.append(nxt)
        if len(order) != len(self._nodes):
            raise PlanError("plan graph contains a cycle")
        return tuple(order)

    def paths(self) -> tuple[tuple[PlanNode, ...], ...]:
        """All simple paths from the input node to the output node."""
        result: list[tuple[PlanNode, ...]] = []
        stack: list[tuple[str, tuple[str, ...]]] = [
            (self.input_node.node_id, (self.input_node.node_id,))
        ]
        out_id = self.output_node.node_id
        while stack:
            current, path = stack.pop()
            if current == out_id:
                result.append(tuple(self._nodes[i] for i in path))
                continue
            for nxt in self._succ[current]:
                stack.append((nxt, path + (nxt,)))
        return tuple(result)

    def ancestors(self, node: PlanNode) -> frozenset[str]:
        """Ids of all strict ancestors of *node* (memoized)."""
        cached = self._ancestors_memo.get(node.node_id)
        if cached is not None:
            return cached
        seen: set[str] = set()
        stack = list(self._pred[node.node_id])
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._pred[current])
        result = frozenset(seen)
        self._ancestors_memo[node.node_id] = result
        return result

    def descendants(self, node: PlanNode) -> frozenset[str]:
        """Ids of all strict descendants of *node*."""
        seen: set[str] = set()
        stack = list(self._succ[node.node_id])
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._succ[current])
        return frozenset(seen)

    def upstream_service_nodes(self, node: PlanNode) -> tuple[ServiceNode, ...]:
        """Service nodes among the strict ancestors of *node*."""
        ids = self.ancestors(node)
        return tuple(
            n for n in self.service_nodes if n.node_id in ids
        )

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        """Check structural well-formedness.

        * exactly one input node with no predecessors;
        * exactly one output node with no successors;
        * acyclic;
        * every node lies on some input → output path;
        * join nodes have exactly two predecessors.
        """
        input_node = self.input_node
        output_node = self.output_node
        if self._pred[input_node.node_id]:
            raise PlanError("input node must have no predecessors")
        if self._succ[output_node.node_id]:
            raise PlanError("output node must have no successors")
        self.topological_order()
        reachable = {input_node.node_id} | set(self.descendants(input_node))
        coreachable = {output_node.node_id} | set(self.ancestors(output_node))
        for node_id in self._nodes:
            if node_id not in reachable:
                raise PlanError(f"node {node_id!r} unreachable from input")
            if node_id not in coreachable:
                raise PlanError(f"node {node_id!r} cannot reach output")
        for join in self.join_nodes:
            if len(self._pred[join.node_id]) != 2:
                raise PlanError(
                    f"join node {join.node_id!r} must have exactly 2 predecessors"
                )

    # -- misc ---------------------------------------------------------------

    def arcs(self) -> tuple[tuple[PlanNode, PlanNode], ...]:
        """All arcs as (origin, destination) node pairs."""
        result = []
        for origin_id, destinations in self._succ.items():
            for destination_id in destinations:
                result.append((self._nodes[origin_id], self._nodes[destination_id]))
        return tuple(result)

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[PlanNode]:
        return iter(self._nodes.values())

    def __contains__(self, node: PlanNode) -> bool:
        return node.node_id in self._nodes

    def describe(self) -> str:
        """Multi-line description: one ``a -> b`` line per arc."""
        lines = []
        for origin, destination in self.arcs():
            lines.append(f"{origin.label} -> {destination.label}")
        return "\n".join(lines)


def plan_with_nodes(nodes: Iterable[PlanNode]) -> QueryPlan:
    """Small helper for tests: a plan containing *nodes*, no arcs yet."""
    plan = QueryPlan()
    for node in nodes:
        plan.add_node(node)
    return plan
