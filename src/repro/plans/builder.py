"""Building executable plan DAGs from queries, patterns, and posets.

The optimizer's phase 2 chooses a *partial order* over the query atoms
(Section 4.2.2; Example 5.1 counts the 19 partial orders over the three
free atoms of the running example).  This module turns such a choice
into a concrete :class:`~repro.plans.dag.QueryPlan`:

* atoms become service nodes; arcs follow the transitive reduction of
  the partial order (pipe joins: parameter passing along arcs);
* when incomparable branches must be combined — because a downstream
  atom draws inputs from several of them, or at the query output — a
  *parallel join* node is inserted, with the NL/MS method and the
  selectivity registered for the pair of services being merged;
* each selection predicate is assigned to the earliest node at which
  all its variables are bound, and its selectivity is folded into the
  node's expected output (the paper folds selection predicates into the
  notion of erspi);
* the fetching factors chosen by phase 3 are stored on chunked nodes.

The builder also enforces Definition 3.1: every atom must be *callable
after* its strict predecessors in the chosen order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.model.atoms import Atom
from repro.model.predicates import Comparison
from repro.model.query import ConjunctiveQuery
from repro.model.schema import AccessPattern
from repro.model.terms import Variable
from repro.plans.dag import PlanError, QueryPlan
from repro.plans.nodes import InputNode, JoinNode, OutputNode, PlanNode, ServiceNode
from repro.services.registry import ServiceRegistry


@dataclass(frozen=True)
class Poset:
    """A strict partial order over atom indices ``0..n-1``.

    ``pairs`` need not be transitively closed; the closure is computed
    on construction.  ``n`` is the number of atoms.
    """

    n: int
    pairs: frozenset[tuple[int, int]] = frozenset()

    def __post_init__(self) -> None:
        for i, j in self.pairs:
            if not (0 <= i < self.n and 0 <= j < self.n):
                raise PlanError(f"pair ({i}, {j}) out of range for n={self.n}")
            if i == j:
                raise PlanError(f"reflexive pair ({i}, {j}) in poset")

    def closure(self) -> frozenset[tuple[int, int]]:
        """The transitive closure; raises on cycles."""
        reach: dict[int, set[int]] = {i: set() for i in range(self.n)}
        for i, j in self.pairs:
            reach[i].add(j)
        changed = True
        while changed:
            changed = False
            for i in range(self.n):
                extra: set[int] = set()
                for j in reach[i]:
                    extra |= reach[j] - reach[i]
                if extra:
                    reach[i] |= extra
                    changed = True
        for i in range(self.n):
            if i in reach[i]:
                raise PlanError(f"cycle through atom {i} in precedence relation")
        return frozenset((i, j) for i in range(self.n) for j in reach[i])

    def predecessors_of(self, index: int) -> frozenset[int]:
        """Strict predecessors of *index* under the closure."""
        return frozenset(i for i, j in self.closure() if j == index)

    def direct_predecessors_of(self, index: int) -> frozenset[int]:
        """Predecessors in the transitive reduction."""
        closure = self.closure()
        preds = {i for i, j in closure if j == index}
        return frozenset(
            p for p in preds
            if not any((p, q) in closure for q in preds if q != p)
        )

    def maximal_elements(self) -> frozenset[int]:
        """Atoms with no successors."""
        closure = self.closure()
        has_successor = {i for i, _ in closure}
        return frozenset(i for i in range(self.n) if i not in has_successor)

    def minimal_elements(self) -> frozenset[int]:
        """Atoms with no predecessors."""
        closure = self.closure()
        has_predecessor = {j for _, j in closure}
        return frozenset(i for i in range(self.n) if i not in has_predecessor)

    def is_chain(self) -> bool:
        """True when the order is total (a single serial pipeline)."""
        return len(self.closure()) == self.n * (self.n - 1) // 2


@dataclass
class _Stream:
    """A branch of the dataflow: frontier node + accumulated bindings."""

    frontier: PlanNode
    bound: frozenset[Variable]
    representative: str  # service name used for join method/selectivity lookups
    atoms: frozenset[int] = field(default_factory=frozenset)


class PlanBuilder:
    """Builds :class:`QueryPlan` objects for one query and registry."""

    def __init__(self, query: ConjunctiveQuery, registry: ServiceRegistry) -> None:
        self._query = query
        self._registry = registry

    def build(
        self,
        patterns: Sequence[AccessPattern],
        poset: Poset,
        fetches: Mapping[int, int] | None = None,
    ) -> QueryPlan:
        """Construct the plan for a pattern sequence and a partial order.

        Parameters
        ----------
        patterns:
            One feasible access pattern per body atom, by atom index.
        poset:
            The precedence relation over atom indices.
        fetches:
            Fetching factors for chunked atoms (atom index → F);
            defaults to 1 everywhere.
        """
        query = self._query
        if len(patterns) != len(query.atoms):
            raise PlanError(
                f"expected {len(query.atoms)} patterns, got {len(patterns)}"
            )
        if poset.n != len(query.atoms):
            raise PlanError("poset size does not match the number of atoms")
        self._check_callability(patterns, poset)

        plan = QueryPlan()
        input_node = plan.add_node(InputNode())
        fetches = dict(fetches or {})

        order = self._topological_atoms(poset)
        streams: dict[str, _Stream] = {}
        input_stream = _Stream(
            frontier=input_node, bound=frozenset(), representative="", atoms=frozenset()
        )
        streams[input_node.node_id] = input_stream
        stream_of_atom: dict[int, _Stream] = {}
        assigned: set[Comparison] = set()
        join_memo: dict[frozenset[str], _Stream] = {}

        for index in order:
            body_atom = query.atoms[index]
            pattern = patterns[index]
            direct = sorted(poset.direct_predecessors_of(index))
            if not direct:
                feed = input_stream
            elif len(direct) == 1:
                feed = stream_of_atom[direct[0]]
            else:
                feed = self._merge_streams(
                    plan,
                    [stream_of_atom[d] for d in direct],
                    assigned,
                    join_memo,
                )
            node = self._make_service_node(index, body_atom, pattern, fetches)
            new_bound = feed.bound | body_atom.variable_set
            node.predicates = self._take_predicates(new_bound, assigned)
            plan.add_node(node)
            plan.add_arc(feed.frontier, node)
            stream = _Stream(
                frontier=node,
                bound=new_bound,
                representative=body_atom.service,
                atoms=feed.atoms | {index},
            )
            streams[node.node_id] = stream
            stream_of_atom[index] = stream

        final_streams = [stream_of_atom[i] for i in sorted(poset.maximal_elements())]
        if not final_streams:
            raise PlanError("plan has no atoms")
        merged = self._merge_streams(plan, final_streams, assigned, join_memo)
        residual = tuple(p for p in query.predicates if p not in assigned)
        output_node = plan.add_node(OutputNode(residual_predicates=residual))
        plan.add_arc(merged.frontier, output_node)
        plan.validate()
        return plan

    # -- internals -------------------------------------------------------

    def _make_service_node(
        self,
        index: int,
        body_atom: Atom,
        pattern: AccessPattern,
        fetches: Mapping[int, int],
    ) -> ServiceNode:
        profile = self._registry.profile(body_atom.service, pattern.code)
        fetch_count = fetches.get(index, 1)
        if not profile.is_chunked:
            fetch_count = 1
        return ServiceNode(
            atom_index=index,
            atom=body_atom,
            pattern=pattern,
            profile=profile,
            fetches=fetch_count,
        )

    def _merge_streams(
        self,
        plan: QueryPlan,
        streams: list[_Stream],
        assigned: set[Comparison],
        join_memo: dict[frozenset[str], _Stream],
    ) -> _Stream:
        """Left-fold parallel joins over *streams* (no-op for one stream)."""
        current = streams[0]
        for other in streams[1:]:
            key = frozenset({current.frontier.node_id, other.frontier.node_id})
            if key in join_memo:
                current = join_memo[key]
                continue
            shared = current.bound & other.bound
            union_bound = current.bound | other.bound
            predicates = self._take_predicates(union_bound, assigned)
            method = self._registry.join_method(
                current.representative or other.representative,
                other.representative or current.representative,
            )
            selectivity = self._join_selectivity(current, other, predicates)
            join = JoinNode(
                method=method,
                variables=frozenset(shared),
                predicates=predicates,
                selectivity=selectivity,
            )
            plan.add_node(join)
            plan.add_arc(current.frontier, join)
            plan.add_arc(other.frontier, join)
            merged = _Stream(
                frontier=join,
                bound=union_bound,
                representative=current.representative or other.representative,
                atoms=current.atoms | other.atoms,
            )
            join_memo[key] = merged
            current = merged
        return current

    def _join_selectivity(
        self,
        left: _Stream,
        right: _Stream,
        predicates: tuple[Comparison, ...],
    ) -> float:
        """Joint selectivity of the parallel-join condition.

        Combines the selectivities of the predicates that become
        evaluable at the join with, when the branches share *fresh*
        equi-join variables (bound independently on both sides rather
        than inherited from a common upstream prefix), the registered
        pair selectivity for the two frontier services.  Variables
        inherited from the shared prefix recombine blocks originating
        from the same upstream tuple and are matched by construction,
        so they contribute selectivity 1 — this is how Example 5.1
        obtains the join erspi of 0.01 from the price predicate alone.
        """
        selectivity = 1.0
        for predicate in predicates:
            selectivity *= predicate.estimated_selectivity()
        shared_atoms = left.atoms & right.atoms
        inherited: set[Variable] = set()
        for index in shared_atoms:
            inherited |= self._query.atoms[index].variable_set
        fresh_shared = (left.bound & right.bound) - inherited
        if fresh_shared and left.representative and right.representative:
            pair = self._registry.join_selectivity(
                left.representative, right.representative
            )
            selectivity *= pair
        return max(0.0, min(1.0, selectivity))

    def _take_predicates(
        self, bound: frozenset[Variable], assigned: set[Comparison]
    ) -> tuple[Comparison, ...]:
        """Predicates newly evaluable with *bound*; marks them assigned."""
        ready = []
        for predicate in self._query.predicates:
            if predicate in assigned:
                continue
            if predicate.variables <= bound:
                ready.append(predicate)
                assigned.add(predicate)
        return tuple(ready)

    def _topological_atoms(self, poset: Poset) -> list[int]:
        closure = poset.closure()
        in_degree = {i: 0 for i in range(poset.n)}
        for _, j in closure:
            in_degree[j] += 1
        # Process by number of strict predecessors; ties by index for
        # determinism.  Sorting by predecessor count linearizes any
        # partial order.
        return sorted(range(poset.n), key=lambda i: (in_degree[i], i))

    def _check_callability(
        self, patterns: Sequence[AccessPattern], poset: Poset
    ) -> None:
        """Definition 3.1: each atom callable after its predecessors."""
        query = self._query
        for index, body_atom in enumerate(query.atoms):
            ancestors = poset.predecessors_of(index)
            bound: set[Variable] = set()
            for ancestor in ancestors:
                ancestor_atom = query.atoms[ancestor]
                ancestor_pattern = patterns[ancestor]
                # Everything the ancestor touches is bound once it ran:
                # its inputs were bound before it, its outputs after.
                bound |= ancestor_atom.variable_set
                del ancestor_pattern
            if not body_atom.is_callable_given(patterns[index], frozenset(bound)):
                raise PlanError(
                    f"atom {body_atom} (index {index}) is not callable after "
                    f"its predecessors {sorted(ancestors)} "
                    f"with pattern {patterns[index].code!r}"
                )


def chain_poset(n: int, order: Iterable[int]) -> Poset:
    """A total order visiting atoms in *order* (a serial pipeline)."""
    sequence = list(order)
    if sorted(sequence) != list(range(n)):
        raise PlanError(f"order {sequence} is not a permutation of 0..{n - 1}")
    pairs = {
        (sequence[i], sequence[i + 1]) for i in range(len(sequence) - 1)
    }
    return Poset(n=n, pairs=frozenset(pairs))


def parallel_after(n: int, first: int) -> Poset:
    """Atom *first* before all others, which run in parallel."""
    pairs = {(first, j) for j in range(n) if j != first}
    return Poset(n=n, pairs=frozenset(pairs))
