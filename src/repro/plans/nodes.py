"""Node types of query-plan DAGs (Sections 2.2, 3.3).

A plan has a unique input node (the user query's input), a unique
output node (the query result), one *service node* per body atom
(carrying the chosen access pattern and, for chunked services, the
number of fetches), and *parallel join* nodes merging incomparable
branches with a nested-loop or merge-scan strategy.  Pipe joins are
plain arcs: the destination's inputs are fed by the origin's outputs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.model.atoms import Atom
from repro.model.predicates import Comparison
from repro.model.schema import AccessPattern
from repro.model.terms import Variable
from repro.services.profile import ServiceProfile
from repro.services.registry import JoinMethod

_COUNTER = itertools.count()


def _fresh_id(prefix: str) -> str:
    return f"{prefix}{next(_COUNTER)}"


@dataclass(eq=False)
class PlanNode:
    """Base class of all plan nodes; identity-based equality."""

    node_id: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.node_id:
            self.node_id = _fresh_id(self._prefix())

    def _prefix(self) -> str:
        return "n"

    @property
    def label(self) -> str:
        """Short human-readable label for rendering."""
        return self.node_id


@dataclass(eq=False)
class InputNode(PlanNode):
    """The unique start node: the user injects one input tuple here."""

    def _prefix(self) -> str:
        return "in"

    @property
    def label(self) -> str:
        return "IN"


@dataclass(eq=False)
class OutputNode(PlanNode):
    """The unique end node: the query result.

    ``residual_predicates`` are comparison predicates that could not be
    evaluated earlier (they span branches merged right before output).
    """

    residual_predicates: tuple[Comparison, ...] = ()

    def _prefix(self) -> str:
        return "out"

    @property
    def label(self) -> str:
        return "OUT"


@dataclass(eq=False)
class ServiceNode(PlanNode):
    """Invocation of one service atom with a chosen access pattern.

    ``fetches`` is the fetching factor ``F`` fixed by phase 3 of the
    optimizer for chunked services (always 1 for bulk services).
    ``predicates`` are the selection predicates that become evaluable
    right after this node and are applied on its output stream.
    """

    atom_index: int = -1
    atom: Atom | None = None
    pattern: AccessPattern | None = None
    profile: ServiceProfile | None = None
    fetches: int = 1
    predicates: tuple[Comparison, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.atom is None or self.pattern is None or self.profile is None:
            raise ValueError("ServiceNode requires atom, pattern, and profile")
        if self.atom_index < 0:
            raise ValueError("ServiceNode requires the atom's index in the query body")
        if self.fetches < 1:
            raise ValueError(f"fetches must be >= 1, got {self.fetches}")
        if not self.profile.is_chunked and self.fetches != 1:
            raise ValueError(
                f"bulk service {self.service_name!r} cannot have fetches > 1"
            )

    def _prefix(self) -> str:
        return "s"

    @property
    def service_name(self) -> str:
        """Name of the invoked service."""
        assert self.atom is not None
        return self.atom.service

    @property
    def is_chunked(self) -> bool:
        """True when the underlying service pages its results."""
        assert self.profile is not None
        return self.profile.is_chunked

    @property
    def input_variables(self) -> frozenset[Variable]:
        """Variables the node consumes (input positions of the pattern)."""
        assert self.atom is not None and self.pattern is not None
        return self.atom.input_variables(self.pattern)

    @property
    def output_variables(self) -> frozenset[Variable]:
        """Variables the node produces (output positions of the pattern)."""
        assert self.atom is not None and self.pattern is not None
        return self.atom.output_variables(self.pattern)

    @property
    def label(self) -> str:
        assert self.pattern is not None
        marker = ""
        assert self.profile is not None
        if self.profile.is_search:
            marker = "~"
        elif self.profile.is_proliferative:
            marker = "*"
        fetch = f" F={self.fetches}" if self.is_chunked else ""
        return f"{self.service_name}[{self.pattern.code}]{marker}{fetch}"


@dataclass(eq=False)
class JoinNode(PlanNode):
    """A parallel join merging two incomparable branches.

    ``variables`` is the set of equi-join variables shared by the two
    input streams; ``predicates`` are the comparison predicates that
    become evaluable on the merged stream (e.g. ``FPrice + HPrice <
    2000`` in the running example); ``selectivity`` is the estimated
    joint selectivity of the join condition (the join's erspi is the
    product of the input sizes and this selectivity).
    """

    method: JoinMethod = JoinMethod.MERGE_SCAN
    variables: frozenset[Variable] = frozenset()
    predicates: tuple[Comparison, ...] = ()
    selectivity: float = 1.0
    cost_per_tuple: float = 0.0
    response_time: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.selectivity <= 1.0:
            raise ValueError(f"selectivity must be in [0, 1], got {self.selectivity}")

    def _prefix(self) -> str:
        return "j"

    @property
    def label(self) -> str:
        joined = ",".join(sorted(v.name for v in self.variables)) or "×"
        return f"{self.method.value}({joined})"
