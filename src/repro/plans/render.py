"""Textual rendering of query plans.

Two renderers are provided:

* :func:`render_ascii` — an indented, topologically ordered listing
  with the visual conventions of Figure 4 mapped onto text markers:
  ``*`` for proliferative exact services, ``~`` for search services,
  ``|chunked|`` for chunked ones, ``NL``/``MS`` labels on parallel
  joins, and ``F=...`` fetch annotations;
* :func:`render_dot` — Graphviz DOT output for the same DAG.

Annotations (``t_in``/``t_out``/calls, as in Figure 8) can be included
when a :class:`~repro.plans.annotate.PlanAnnotation` is supplied.
"""

from __future__ import annotations

from repro.plans.annotate import PlanAnnotation
from repro.plans.dag import QueryPlan
from repro.plans.nodes import InputNode, JoinNode, OutputNode, PlanNode, ServiceNode


def _node_text(node: PlanNode, annotation: PlanAnnotation | None) -> str:
    text = node.label
    if isinstance(node, ServiceNode) and node.is_chunked:
        text = f"|{text}|"
    if annotation is not None and not isinstance(node, InputNode):
        estimate = annotation.of(node)
        text += (
            f"  [t_in={estimate.tuples_in:g} t_out={estimate.tuples_out:g}"
            f" calls={estimate.calls:g}]"
        )
    return text


def render_ascii(plan: QueryPlan, annotation: PlanAnnotation | None = None) -> str:
    """Render *plan* as an indented arc listing in topological order."""
    lines: list[str] = []
    depth: dict[str, int] = {}
    for node in plan.topological_order():
        predecessors = plan.predecessors(node)
        if predecessors:
            level = max(depth[p.node_id] for p in predecessors) + 1
        else:
            level = 0
        depth[node.node_id] = level
        indent = "  " * level
        origin = ""
        if predecessors:
            names = " + ".join(p.label for p in predecessors)
            origin = f"<- {names}  "
        lines.append(f"{indent}{origin}{_node_text(node, annotation)}")
    return "\n".join(lines)


def render_dot(plan: QueryPlan, annotation: PlanAnnotation | None = None) -> str:
    """Render *plan* in Graphviz DOT syntax."""
    lines = ["digraph plan {", "  rankdir=LR;"]
    for node in plan.nodes:
        shape = "box"
        if isinstance(node, (InputNode, OutputNode)):
            shape = "circle"
        elif isinstance(node, JoinNode):
            shape = "diamond"
        label = _node_text(node, annotation).replace('"', "'")
        lines.append(f'  "{node.node_id}" [shape={shape}, label="{label}"];')
    for origin, destination in plan.arcs():
        lines.append(f'  "{origin.node_id}" -> "{destination.node_id}";')
    lines.append("}")
    return "\n".join(lines)


def summarize(plan: QueryPlan) -> str:
    """One-line summary: services in topological order with join markers."""
    parts: list[str] = []
    for node in plan.topological_order():
        if isinstance(node, ServiceNode):
            parts.append(node.service_name)
        elif isinstance(node, JoinNode):
            parts.append(node.method.value)
    return " -> ".join(parts)
