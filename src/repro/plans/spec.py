"""Serializable plan specifications.

A fully instantiated plan is determined by three decisions — the
access-pattern sequence, the precedence poset, and the fetching
factors (Section 2.4).  :class:`PlanSpec` captures exactly these, can
round-trip through JSON, and rebuilds the executable plan against any
registry exposing the same services.  This is what a deployment would
persist for a *query template* whose optimization is done once and
reused across parameter values (Section 2.2).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.model.query import ConjunctiveQuery
from repro.plans.builder import PlanBuilder, Poset
from repro.plans.dag import PlanError, QueryPlan
from repro.services.registry import ServiceRegistry


@dataclass(frozen=True)
class PlanSpec:
    """The three optimizer decisions that instantiate a plan."""

    pattern_codes: tuple[str, ...]
    precedence_pairs: tuple[tuple[int, int], ...]
    fetches: tuple[tuple[int, int], ...]

    # -- construction ------------------------------------------------------

    @classmethod
    def from_choices(
        cls,
        patterns,
        poset: Poset,
        fetches: dict[int, int] | None = None,
    ) -> "PlanSpec":
        """Capture a (patterns, poset, fetches) triple."""
        return cls(
            pattern_codes=tuple(p.code for p in patterns),
            precedence_pairs=tuple(sorted(poset.pairs)),
            fetches=tuple(sorted((fetches or {}).items())),
        )

    @classmethod
    def from_optimized(cls, optimized) -> "PlanSpec":
        """Capture the decisions of an :class:`OptimizedPlan`."""
        return cls.from_choices(
            optimized.patterns, optimized.poset, optimized.fetches
        )

    # -- rebuild ------------------------------------------------------------

    def poset(self) -> Poset:
        """The precedence relation over atom indices."""
        return Poset(
            n=len(self.pattern_codes), pairs=frozenset(self.precedence_pairs)
        )

    def build(
        self, query: ConjunctiveQuery, registry: ServiceRegistry
    ) -> QueryPlan:
        """Re-instantiate the executable plan for *query*."""
        if len(self.pattern_codes) != len(query.atoms):
            raise PlanError(
                f"spec has {len(self.pattern_codes)} patterns, query has "
                f"{len(query.atoms)} atoms"
            )
        patterns = tuple(
            registry.signature(atom.service).pattern(code)
            for atom, code in zip(query.atoms, self.pattern_codes)
        )
        return PlanBuilder(query, registry).build(
            patterns, self.poset(), fetches=dict(self.fetches)
        )

    # -- JSON round-trip ------------------------------------------------------

    def to_json(self) -> str:
        """Serialize the spec to a JSON string."""
        return json.dumps(
            {
                "patterns": list(self.pattern_codes),
                "precedence": [list(pair) for pair in self.precedence_pairs],
                "fetches": {str(k): v for k, v in self.fetches},
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "PlanSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        data = json.loads(text)
        return cls(
            pattern_codes=tuple(data["patterns"]),
            precedence_pairs=tuple(
                (int(a), int(b)) for a, b in data["precedence"]
            ),
            fetches=tuple(
                sorted((int(k), int(v)) for k, v in data["fetches"].items())
            ),
        )
