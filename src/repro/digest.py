"""The one content-digest idiom shared by every fingerprint site.

Profiles, registry epochs, and query fingerprints (and the plan-cache
keys composed from them) must truncate and serialize identically, or
invalidation stops being consistent — so the idiom lives here once.
"""

from __future__ import annotations

import hashlib
import json

#: Hex digits kept from the sha256 digest; 64 bits of content hash is
#: far beyond collision risk for the handful of profiles, registries,
#: and query templates a deployment distinguishes.
DIGEST_LENGTH = 16


def content_digest(payload: object) -> str:
    """Stable hex digest of *payload*'s canonical JSON rendering.

    ``sort_keys`` makes the digest independent of dict insertion and
    iteration order; payloads must be JSON-serializable.
    """
    rendered = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(rendered.encode()).hexdigest()[:DIGEST_LENGTH]
