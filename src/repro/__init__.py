"""repro — Optimization of Multi-Domain Queries on the Web (VLDB 2008).

A full reimplementation of the framework of Braga, Ceri, Daniel, and
Martinenghi: conjunctive queries over exact and search Web services
with access limitations, DAG query plans with rank-preserving joins,
several cost metrics, a three-phase branch-and-bound optimizer, and a
caching, parallel execution engine — plus the calibrated simulated
deep-Web sources used to reproduce the paper's experiments.

Quickstart::

    from repro import (
        CacheSetting, ExecutionEngine, ExecutionTimeMetric, Optimizer,
        OptimizerConfig, travel_registry, running_example_query,
    )

    registry = travel_registry()
    query = running_example_query()
    optimizer = Optimizer(registry, ExecutionTimeMetric(),
                          OptimizerConfig(k=10))
    best = optimizer.optimize(query)
    engine = ExecutionEngine(registry, CacheSetting.ONE_CALL)
    result = engine.execute(best.plan, head=query.head, k=10)
    print(result.table.render(10))
"""

from repro.costs import (
    BottleneckMetric,
    CostMetric,
    ExecutionTimeMetric,
    MonetaryCostMetric,
    RequestResponseMetric,
    SumCostMetric,
    TimeToScreenMetric,
)
from repro.execution import (
    CacheSetting,
    ExecutionEngine,
    ExecutionMode,
    ExecutionResult,
    execute_plan,
)
from repro.model import (
    AccessPattern,
    Atom,
    Comparison,
    ConjunctiveQuery,
    Constant,
    Schema,
    ServiceSignature,
    Variable,
    atom,
    comparison,
    parse_query,
    query,
    schema_of,
    signature,
)
from repro.optimizer import (
    OptimizedPlan,
    Optimizer,
    OptimizerConfig,
    optimize_query,
)
from repro.plans import (
    PlanBuilder,
    Poset,
    QueryPlan,
    annotate,
    render_ascii,
    render_dot,
)
from repro.services import (
    JoinMethod,
    ServiceKind,
    ServiceProfile,
    ServiceRegistry,
    TableExactService,
    TableSearchService,
    exact_profile,
    search_profile,
)
from repro.sources import running_example_query, travel_registry, travel_schema

__version__ = "1.0.0"

__all__ = [
    "AccessPattern",
    "Atom",
    "BottleneckMetric",
    "CacheSetting",
    "Comparison",
    "ConjunctiveQuery",
    "Constant",
    "CostMetric",
    "ExecutionEngine",
    "ExecutionMode",
    "ExecutionResult",
    "ExecutionTimeMetric",
    "JoinMethod",
    "MonetaryCostMetric",
    "OptimizedPlan",
    "Optimizer",
    "OptimizerConfig",
    "PlanBuilder",
    "Poset",
    "QueryPlan",
    "RequestResponseMetric",
    "Schema",
    "ServiceKind",
    "ServiceProfile",
    "ServiceRegistry",
    "ServiceSignature",
    "SumCostMetric",
    "TableExactService",
    "TableSearchService",
    "TimeToScreenMetric",
    "Variable",
    "annotate",
    "atom",
    "comparison",
    "exact_profile",
    "execute_plan",
    "optimize_query",
    "parse_query",
    "query",
    "render_ascii",
    "render_dot",
    "running_example_query",
    "schema_of",
    "search_profile",
    "signature",
    "travel_registry",
    "travel_schema",
]
