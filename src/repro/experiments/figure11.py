"""Programmatic regeneration of Figure 11 (the paper's main experiment).

Runs plans S, P, and O under the three logical-cache settings and
returns a :class:`Figure11Result` holding, per cell, the calls issued
to each service and the simulated total time, next to the paper's
published values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.execution.cache import CacheSetting
from repro.execution.engine import ExecutionEngine, ExecutionMode, ExecutionResult
from repro.model.query import ConjunctiveQuery
from repro.plans.builder import PlanBuilder
from repro.plans.dag import QueryPlan
from repro.services.registry import ServiceRegistry
from repro.sources.travel import (
    FLIGHT_ATOM,
    HOTEL_ATOM,
    alpha1_patterns,
    poset_optimal,
    poset_parallel,
    poset_serial,
    running_example_query,
    travel_registry,
)

PLAN_NAMES = ("S", "P", "O")

#: The paper's call counts: {(setting value, plan): (weather, flight, hotel)}.
PAPER_CALLS: dict[tuple[str, str], tuple[int, int, int]] = {
    ("no-cache", "S"): (71, 16, 284),
    ("no-cache", "P"): (71, 71, 71),
    ("no-cache", "O"): (71, 16, 16),
    ("one-call", "S"): (71, 16, 15),
    ("one-call", "P"): (71, 71, 71),
    ("one-call", "O"): (71, 16, 16),
    ("optimal", "S"): (54, 11, 10),
    ("optimal", "P"): (54, 54, 54),
    ("optimal", "O"): (54, 11, 11),
}

#: The paper's total times in seconds.
PAPER_TIMES: dict[tuple[str, str], int] = {
    ("no-cache", "S"): 374, ("no-cache", "P"): 596, ("no-cache", "O"): 218,
    ("one-call", "S"): 266, ("one-call", "P"): 598, ("one-call", "O"): 219,
    ("optimal", "S"): 176, ("optimal", "P"): 512, ("optimal", "O"): 155,
}


@dataclass(frozen=True)
class Figure11Cell:
    """One (cache setting, plan) measurement."""

    setting: str
    plan: str
    calls: tuple[int, int, int]  # weather, flight, hotel
    conf_calls: int
    elapsed: float
    answers: int

    @property
    def paper_calls(self) -> tuple[int, int, int]:
        return PAPER_CALLS[(self.setting, self.plan)]

    @property
    def paper_time(self) -> int:
        return PAPER_TIMES[(self.setting, self.plan)]

    @property
    def calls_match_paper(self) -> bool:
        return self.calls == self.paper_calls


@dataclass(frozen=True)
class Figure11Result:
    """All nine cells of the experiment."""

    cells: dict[tuple[str, str], Figure11Cell]

    def cell(self, setting: str, plan: str) -> Figure11Cell:
        return self.cells[(setting, plan)]

    @property
    def all_calls_match_paper(self) -> bool:
        return all(cell.calls_match_paper for cell in self.cells.values())

    def time_shape_holds(self) -> bool:
        """O < S < P per setting, caching never slows a plan."""
        for setting in ("no-cache", "one-call", "optimal"):
            o = self.cell(setting, "O").elapsed
            s = self.cell(setting, "S").elapsed
            p = self.cell(setting, "P").elapsed
            if not o < s < p:
                return False
        for plan in PLAN_NAMES:
            no = self.cell("no-cache", plan).elapsed
            one = self.cell("one-call", plan).elapsed
            optimal = self.cell("optimal", plan).elapsed
            if not optimal <= one + 1e-9 <= no + 1e-9:
                return False
        return True

    def render(self) -> str:
        """A text table in the shape of Figure 11."""
        lines = [
            f"{'setting':<10} {'plan':<5} {'weather':>8} {'flight':>7} "
            f"{'hotel':>6} {'time[s]':>9}   {'paper calls':<15} {'paper[s]':>8}",
        ]
        for setting in ("no-cache", "one-call", "optimal"):
            for plan in PLAN_NAMES:
                cell = self.cell(setting, plan)
                w, f, h = cell.calls
                lines.append(
                    f"{setting:<10} {plan:<5} {w:>8} {f:>7} {h:>6} "
                    f"{cell.elapsed:>9.1f}   {str(cell.paper_calls):<15} "
                    f"{cell.paper_time:>8}"
                )
        return "\n".join(lines)


def figure11_plans(
    registry: ServiceRegistry, query: ConjunctiveQuery
) -> dict[str, QueryPlan]:
    """The three plans of the experiment with their fetching factors.

    S is a single path, so Eq. 7 pushes fetches downstream (F_hotel=8);
    P and O have the parallel flight/hotel pair, so Eq. 6 gives
    F_flight=3, F_hotel=4 (Figure 8).
    """
    builder = PlanBuilder(query, registry)
    return {
        "S": builder.build(
            alpha1_patterns(), poset_serial(),
            fetches={FLIGHT_ATOM: 1, HOTEL_ATOM: 8},
        ),
        "P": builder.build(
            alpha1_patterns(), poset_parallel(),
            fetches={FLIGHT_ATOM: 3, HOTEL_ATOM: 4},
        ),
        "O": builder.build(
            alpha1_patterns(), poset_optimal(),
            fetches={FLIGHT_ATOM: 3, HOTEL_ATOM: 4},
        ),
    }


def run_figure11(
    registry: ServiceRegistry | None = None,
    query: ConjunctiveQuery | None = None,
    k: int = 10,
) -> Figure11Result:
    """Execute the full 3 plans × 3 cache settings grid."""
    registry = registry or travel_registry()
    query = query or running_example_query()
    plans = figure11_plans(registry, query)
    cells: dict[tuple[str, str], Figure11Cell] = {}
    for setting in CacheSetting:
        for name, plan in plans.items():
            engine = ExecutionEngine(
                registry, cache_setting=setting, mode=ExecutionMode.PARALLEL
            )
            outcome: ExecutionResult = engine.execute(plan, head=query.head, k=k)
            stats = outcome.stats
            cells[(setting.value, name)] = Figure11Cell(
                setting=setting.value,
                plan=name,
                calls=(
                    stats.calls("weather"),
                    stats.calls("flight"),
                    stats.calls("hotel"),
                ),
                conf_calls=stats.calls("conf"),
                elapsed=outcome.elapsed,
                answers=len(outcome.rows),
            )
    return Figure11Result(cells=cells)
