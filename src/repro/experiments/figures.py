"""Programmatic regeneration of Table 1, Figure 7/8, and the
multithreading experiment (the non-grid artifacts of Section 6)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.costs.time_cost import ExecutionTimeMetric
from repro.execution.cache import CacheSetting
from repro.execution.engine import ExecutionEngine, ExecutionMode
from repro.model.query import ConjunctiveQuery
from repro.model.schema import AccessPattern
from repro.optimizer.fetches import (
    FetchContext,
    FetchResult,
    closed_form_pair,
    exhaustive_assignment,
)
from repro.optimizer.topology import TopologyEnumerator
from repro.plans.annotate import PlanAnnotation, annotate
from repro.plans.builder import PlanBuilder, Poset
from repro.plans.dag import QueryPlan
from repro.plans.render import render_ascii, summarize
from repro.services.profiler import ProfileEstimate, ServiceProfiler
from repro.services.registry import ServiceRegistry
from repro.sources.travel import (
    FLIGHT_ATOM,
    HOTEL_ATOM,
    alpha1_patterns,
    poset_optimal,
    poset_serial,
    running_example_query,
    travel_registry,
)
from repro.sources.world import (
    DEEP_ROUTE_CITY,
    OTHER_TOPIC_SIZES,
    TravelWorld,
    build_world,
    city_dates,
)


# -- Table 1 ----------------------------------------------------------------


def run_table1(
    registry: ServiceRegistry | None = None,
    world: TravelWorld | None = None,
) -> list[ProfileEstimate]:
    """Profile the four travel services by sampling, as at registration."""
    registry = registry or travel_registry()
    world = world or build_world()
    registry.reset_all()
    estimates = []
    estimates.append(
        ServiceProfiler(registry.service("conf")).estimate(
            AccessPattern("ioooo"), [{0: topic} for topic in OTHER_TOPIC_SIZES]
        )
    )
    weather_samples = []
    for city in world.all_cities[:20]:
        start, _ = city_dates(city)
        weather_samples.append({0: city, 2: start})
    estimates.append(
        ServiceProfiler(registry.service("weather")).estimate(
            AccessPattern("ioi"), weather_samples
        )
    )
    flight_samples = []
    hotel_samples = []
    for city in list(world.hot_cities[:5]) + [DEEP_ROUTE_CITY]:
        start, end = city_dates(city)
        flight_samples.append({0: "Milano", 1: city, 2: start, 3: end})
        hotel_samples.append({1: city, 2: "luxury", 3: start, 4: end})
    estimates.append(
        ServiceProfiler(registry.service("flight")).estimate(
            AccessPattern("iiiiooo"), flight_samples
        )
    )
    estimates.append(
        ServiceProfiler(registry.service("hotel")).estimate(
            AccessPattern("oiiiio"), hotel_samples
        )
    )
    return estimates


# -- Figure 7 (plan space of Example 5.1) -----------------------------------


@dataclass(frozen=True)
class CostedTopology:
    """One of the 19 plans with its best fetch assignment and cost."""

    poset: Poset
    plan: QueryPlan
    fetch_result: FetchResult

    @property
    def cost(self) -> float:
        return self.fetch_result.cost

    def describe(self) -> str:
        return (
            f"cost={self.cost:.1f} h={self.fetch_result.output_size:.2f} "
            f"{summarize(self.plan)}"
        )


def run_figure7(
    registry: ServiceRegistry | None = None,
    query: ConjunctiveQuery | None = None,
    k: int = 10,
) -> list[CostedTopology]:
    """Enumerate and cost every topology for the α1 patterns (ETM)."""
    registry = registry or travel_registry()
    query = query or running_example_query()
    metric = ExecutionTimeMetric()
    builder = PlanBuilder(query, registry)
    rows = []
    for poset in TopologyEnumerator(query, alpha1_patterns()).all_posets():
        plan = builder.build(alpha1_patterns(), poset)
        context = FetchContext(plan, metric, CacheSetting.ONE_CALL)
        rows.append(
            CostedTopology(
                poset=poset,
                plan=plan,
                fetch_result=exhaustive_assignment(context, k),
            )
        )
    return sorted(rows, key=lambda row: row.cost)


# -- Figure 8 (annotated physical plan) --------------------------------------


@dataclass(frozen=True)
class Figure8Result:
    """The fully instantiated plan O with its annotation."""

    plan: QueryPlan
    fetches: dict[int, int]
    annotation: PlanAnnotation

    def render(self) -> str:
        return render_ascii(self.plan, self.annotation)


def run_figure8(
    registry: ServiceRegistry | None = None,
    query: ConjunctiveQuery | None = None,
    k: int = 10,
) -> Figure8Result:
    """Build plan O, fix the fetching factors via Eq. 6, annotate."""
    registry = registry or travel_registry()
    query = query or running_example_query()
    plan = PlanBuilder(query, registry).build(alpha1_patterns(), poset_optimal())
    context = FetchContext(plan, ExecutionTimeMetric(), CacheSetting.ONE_CALL)
    fetch_result = closed_form_pair(context, k=k)
    context.apply(fetch_result.fetches)
    return Figure8Result(
        plan=plan,
        fetches=dict(fetch_result.fetches),
        annotation=annotate(plan, CacheSetting.ONE_CALL),
    )


# -- Multithreading experiment ------------------------------------------------


@dataclass(frozen=True)
class MultithreadingResult:
    """Plan S with and without per-node thread dispatch."""

    ordered_elapsed: float
    threaded_elapsed: float
    ordered_hotel_calls: int
    threaded_hotel_calls: int

    @property
    def speedup(self) -> float:
        return self.ordered_elapsed / self.threaded_elapsed

    @property
    def cache_degraded(self) -> bool:
        return self.threaded_hotel_calls > self.ordered_hotel_calls


def run_multithreading(
    registry: ServiceRegistry | None = None,
    query: ConjunctiveQuery | None = None,
) -> MultithreadingResult:
    """Compare ordered vs threaded execution of plan S (one-call cache)."""
    registry = registry or travel_registry()
    query = query or running_example_query()
    plan = PlanBuilder(query, registry).build(
        alpha1_patterns(), poset_serial(),
        fetches={FLIGHT_ATOM: 1, HOTEL_ATOM: 8},
    )
    ordered = ExecutionEngine(
        registry, CacheSetting.ONE_CALL, mode=ExecutionMode.PARALLEL
    ).execute(plan, head=query.head)
    threaded = ExecutionEngine(
        registry, CacheSetting.ONE_CALL, mode=ExecutionMode.MULTITHREADED
    ).execute(plan, head=query.head)
    return MultithreadingResult(
        ordered_elapsed=ordered.elapsed,
        threaded_elapsed=threaded.elapsed,
        ordered_hotel_calls=ordered.stats.calls("hotel"),
        threaded_hotel_calls=threaded.stats.calls("hotel"),
    )
