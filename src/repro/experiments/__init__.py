"""Programmatic regeneration of every table and figure of the paper."""

from repro.experiments.figure11 import (
    PAPER_CALLS,
    PAPER_TIMES,
    Figure11Cell,
    Figure11Result,
    figure11_plans,
    run_figure11,
)
from repro.experiments.figures import (
    CostedTopology,
    Figure8Result,
    MultithreadingResult,
    run_figure7,
    run_figure8,
    run_multithreading,
    run_table1,
)

__all__ = [
    "CostedTopology",
    "Figure11Cell",
    "Figure11Result",
    "Figure8Result",
    "MultithreadingResult",
    "PAPER_CALLS",
    "PAPER_TIMES",
    "figure11_plans",
    "run_figure11",
    "run_figure7",
    "run_figure8",
    "run_multithreading",
    "run_table1",
]
