"""Synthetic workload generator: random schemas, services, and queries.

The paper's evaluation uses one hand-built query; to characterize the
*optimizer* itself (search-space growth, pruning effectiveness,
heuristic quality) we need families of queries of increasing size.
This module generates deterministic (seeded) chain-of-custody
workloads:

* a schema of ``n`` services ``s0 .. s{n-1}``, each with a key input
  and a key output over shared abstract domains, so every query built
  over a prefix is executable;
* a mix of exact and search services with plausible profiles (erspi,
  latency, chunking, occasional decay);
* table-backed implementations whose data respects the join structure,
  so generated plans can also be *executed*, not just costed;
* chain queries ``q(X_n) :- s0('seed', X1), s1(X1, X2), ...`` plus
  optional extra output attributes and selection predicates.

Everything is pure-Python and reproducible from the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.model.atoms import Atom
from repro.model.predicates import Comparison
from repro.model.query import ConjunctiveQuery
from repro.model.schema import signature
from repro.model.terms import Constant, Variable
from repro.services.profile import exact_profile, search_profile
from repro.services.registry import ServiceRegistry
from repro.services.table import TableExactService, TableSearchService


@dataclass(frozen=True)
class SyntheticWorkload:
    """A registry plus a query over it."""

    registry: ServiceRegistry
    query: ConjunctiveQuery
    seed: int
    n_services: int


def _key(space: int, index: int) -> str:
    return f"k{space}_{index:03d}"


def generate_workload(
    n_services: int = 4,
    seed: int = 7,
    keys_per_space: int = 12,
    fanout: int = 3,
    search_fraction: float = 0.4,
    with_predicates: bool = True,
    enrichments: int = 0,
) -> SyntheticWorkload:
    """Generate a chain workload of *n_services* services.

    Service ``si`` maps keys of space ``i`` to keys of space ``i + 1``
    (with ``fanout`` successors each on average) plus a numeric score
    attribute.  Roughly ``search_fraction`` of the services are chunked
    search services; one in four of those has a decay bound.

    ``enrichments`` adds that many *lookup* services, each decorating
    one intermediate key space with an attribute.  Enrichment atoms are
    incomparable with the downstream chain, which opens up the plan
    topology space (parallel branches and joins) — pure chains have a
    forced total order.
    """
    if n_services < 1:
        raise ValueError("need at least one service")
    rng = random.Random(seed)
    registry = ServiceRegistry()
    atoms: list[Atom] = []
    predicates: list[Comparison] = []
    variables = [Variable(f"X{i}") for i in range(n_services + 1)]

    for index in range(n_services):
        name = f"s{index}"
        sig = signature(
            name,
            [f"Key{index}", f"Key{index + 1}", "Score"],
            ["ioo"],
        )
        rows = []
        for source in range(keys_per_space):
            successors = rng.randint(1, fanout * 2 - 1)
            for _ in range(successors):
                target = rng.randrange(keys_per_space)
                score = rng.randint(1, 100)
                rows.append(
                    (_key(index, source), _key(index + 1, target), score)
                )
        is_search = rng.random() < search_fraction
        if is_search:
            decay = rng.choice([None, None, None, 3 * fanout])
            profile = search_profile(
                chunk_size=rng.choice([2, 5, 10]),
                response_time=round(rng.uniform(0.5, 8.0), 1),
                decay=decay,
            )
            registry.register(
                TableSearchService(
                    sig, profile, rows, score=lambda row: float(row[2])
                )
            )
        else:
            profile = exact_profile(
                erspi=round(rng.uniform(0.5, float(fanout)), 2),
                response_time=round(rng.uniform(0.3, 4.0), 1),
            )
            registry.register(TableExactService(sig, profile, rows))
        source_term: Constant | Variable
        if index == 0:
            source_term = Constant(_key(0, 0))
        else:
            source_term = variables[index]
        atoms.append(
            Atom(name, (source_term, variables[index + 1], Variable(f"S{index}")))
        )
        if with_predicates and rng.random() < 0.5:
            predicates.append(
                Comparison(
                    Variable(f"S{index}"), ">=", Constant(rng.randint(5, 40)),
                    selectivity=round(rng.uniform(0.4, 0.9), 2),
                )
            )

    for extra in range(enrichments):
        space = 1 + (extra % n_services)
        name = f"t{extra}"
        sig = signature(name, [f"Key{space}", "Attr"], ["io"])
        rows = [
            (_key(space, key), f"attr{extra}_{key % 4}")
            for key in range(keys_per_space)
        ]
        registry.register(
            TableExactService(
                sig,
                exact_profile(
                    erspi=1.0, response_time=round(rng.uniform(0.3, 2.0), 1)
                ),
                rows,
            )
        )
        atoms.append(Atom(name, (variables[space], Variable(f"A{extra}"))))

    query = ConjunctiveQuery(
        name="chain",
        head=(variables[n_services],),
        atoms=tuple(atoms),
        predicates=tuple(predicates),
    )
    return SyntheticWorkload(
        registry=registry, query=query, seed=seed, n_services=n_services
    )


def workload_family(
    sizes: tuple[int, ...] = (2, 3, 4, 5),
    seed: int = 7,
) -> list[SyntheticWorkload]:
    """One workload per requested size, sharing the seed lineage."""
    return [generate_workload(n_services=n, seed=seed + n) for n in sizes]
