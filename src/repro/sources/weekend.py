"""The weekend-trip domain: the third query of the paper's abstract.

"Can I spend an April weekend in a city served by a low-cost direct
flight from Milano offering a Mahler's symphony?"

Services:

* ``lowcost(From, To, Date, Price)`` — a *search* service over
  low-cost fares, cheapest first, chunked;
* ``concerts(City, Date, Composer, Venue)`` — exact: the programme of
  the season's concert halls, accessible by city or by composer.

Both the flight-first and the concert-first strategies are executable
(concerts has a composer-driven pattern), making this a nice small
playground for the optimizer: which side to drive the query from
depends on the metric.
"""

from __future__ import annotations

from repro.model.atoms import Atom
from repro.model.predicates import Comparison
from repro.model.query import ConjunctiveQuery
from repro.model.schema import ServiceSignature, signature
from repro.model.terms import Constant, Variable
from repro.services.profile import exact_profile, search_profile
from repro.services.registry import ServiceRegistry
from repro.services.table import TableExactService, TableSearchService

LOWCOST_CHUNK = 15
LOWCOST_TAU = 6.5
CONCERTS_TAU = 1.8

_CITIES = (
    "Vienna", "Berlin", "Amsterdam", "London", "Paris", "Prague",
    "Budapest", "Munich", "Hamburg", "Barcelona", "Lisbon", "Dublin",
)
_COMPOSERS = ("Mahler", "Beethoven", "Brahms", "Bruckner", "Verdi")
_APRIL_WEEKENDS = ("2008-04-05", "2008-04-12", "2008-04-19", "2008-04-26")


def lowcost_signature() -> ServiceSignature:
    """lowcost{iioo,iooo}(From, To, Date, Price).

    ``iioo`` queries one route; ``iooo`` browses all destinations from
    an origin (cheapest fares anywhere first), enabling the
    flight-first strategy.
    """
    return signature(
        "lowcost", ["City", "City", "Date", "Price"], ["iioo", "iooo"]
    )


def concerts_signature() -> ServiceSignature:
    """concerts{iooo,ooio}(City, Date, Composer, Venue)."""
    return signature(
        "concerts", ["City", "Date", "Composer", "Venue"], ["iooo", "ooio"]
    )


def _lowcost_rows() -> list[tuple]:
    rows = []
    for city_index, city in enumerate(_CITIES):
        for date_index, date in enumerate(_APRIL_WEEKENDS):
            fares = 2 + (city_index + date_index) % 3
            for fare in range(fares):
                price = 19 + (city_index * 13 + date_index * 7 + fare * 23) % 140
                rows.append(("Milano", city, date, price))
    return rows


def _concert_rows() -> list[tuple]:
    rows = []
    for city_index, city in enumerate(_CITIES):
        for date_index, date in enumerate(_APRIL_WEEKENDS):
            composer = _COMPOSERS[(city_index + date_index) % len(_COMPOSERS)]
            venue = f"{city} Philharmonic Hall"
            rows.append((city, date, composer, venue))
            if city_index % 3 == 0:
                rows.append(
                    (city, date, _COMPOSERS[(city_index + date_index + 2) % len(_COMPOSERS)],
                     f"{city} Opera House")
                )
    return rows


def weekend_registry() -> ServiceRegistry:
    """Registry with the low-cost fare and concert services."""
    registry = ServiceRegistry()
    registry.register(
        TableSearchService(
            lowcost_signature(),
            search_profile(chunk_size=LOWCOST_CHUNK, response_time=LOWCOST_TAU),
            _lowcost_rows(),
            score=lambda row: -float(row[3]),  # cheapest fares first
        )
    )
    registry.register(
        TableExactService(
            concerts_signature(),
            exact_profile(erspi=1.6, response_time=CONCERTS_TAU),
            _concert_rows(),
            pattern_profiles={
                "ooio": exact_profile(erspi=10.0, response_time=CONCERTS_TAU)
            },
        )
    )
    registry.register_join_selectivity("lowcost", "concerts", 0.02)
    return registry


def mahler_weekend_query(budget: int = 120) -> ConjunctiveQuery:
    """April weekend with a cheap flight and a Mahler symphony."""
    city = Variable("City")
    date = Variable("Date")
    price = Variable("Price")
    venue = Variable("Venue")
    atoms = (
        Atom("lowcost", (Constant("Milano"), city, date, price)),
        Atom("concerts", (city, date, Constant("Mahler"), venue)),
    )
    predicates = (
        Comparison(date, ">=", Constant("2008-04-01"), selectivity=1.0),
        Comparison(date, "<=", Constant("2008-04-30"), selectivity=1.0),
        Comparison(price, "<=", Constant(budget), selectivity=0.8),
    )
    return ConjunctiveQuery(
        name="weekend",
        head=(city, date, price, venue),
        atoms=atoms,
        predicates=predicates,
    )
