"""The bibliographic domain: the "experts" query of the abstract.

"Who are the strongest experts on service computing based upon their
recent publication record and accepted European projects?"

Services:

* ``pubsearch(Keyword, Paper, Title, Year)`` — a *search* service over
  a publication index, returning papers by decreasing relevance to the
  keyword, chunked;
* ``authors(Paper, Author)`` — exact, proliferative (a few authors per
  paper);
* ``projects(Author, Project, Programme)`` — exact: accepted projects
  per investigator (selective: most authors have none).

The deterministic corpus embeds a planted ground truth (a small group
of prolific authors with funded projects) so tests can check both the
plan mechanics and the answers.

Two extensions support experiments beyond the toy corpus:

* :func:`generate_corpus` produces a DBLP-style bibliography at any
  scale (100k+ papers) with the same planted ground truth, so the
  indexed backends can be exercised where an in-memory scan becomes
  the bottleneck;
* :func:`biblio_registry` takes a ``backend`` argument choosing the
  service implementation — ``"memory"`` (the in-memory tables, the
  default, unchanged), ``"sqlite"`` (B-tree indexed
  :mod:`repro.services.sqlite` services, bit-identical answers), or
  ``"fts5"`` (the publication index served from an FTS5 full-text
  table under BM25 ranking — same interface, a different but
  internally consistent ranking regime).
"""

from __future__ import annotations

import random
from pathlib import Path

from repro.model.atoms import Atom
from repro.model.predicates import Comparison
from repro.model.query import ConjunctiveQuery
from repro.model.schema import ServiceSignature, signature
from repro.model.terms import Constant, Variable
from repro.services.base import Service
from repro.services.profile import exact_profile, search_profile
from repro.services.registry import ServiceRegistry
from repro.services.sqlite import (
    FTS5SearchService,
    SQLiteExactService,
    SQLiteSearchService,
)
from repro.services.table import TableExactService, TableSearchService

PUBSEARCH_CHUNK = 10
PUBSEARCH_TAU = 2.1
AUTHORS_TAU = 0.9
PROJECTS_TAU = 1.1

_TOPICS = ("service computing", "data integration", "ranking", "mashups")
_EXPERTS = ("Rossi", "Bianchi", "Verdi", "Esposito")
_OTHERS = tuple(f"Author{index:02d}" for index in range(1, 31))


def pubsearch_signature() -> ServiceSignature:
    """pubsearch{iooo}(Keyword, Paper, Title, Year)."""
    return signature(
        "pubsearch", ["Keyword", "Paper", "Title", "Year"], ["iooo"]
    )


def authors_signature() -> ServiceSignature:
    """authors{io,oi}(Paper, Author)."""
    return signature("authors", ["Paper", "Author"], ["io", "oi"])


def projects_signature() -> ServiceSignature:
    """projects{ioo}(Author, Project, Programme)."""
    return signature("projects", ["Author", "Project", "Programme"], ["ioo"])


def _corpus() -> tuple[list[tuple], list[tuple], list[tuple]]:
    papers: list[tuple] = []
    authorships: list[tuple] = []
    projects: list[tuple] = []
    paper_counter = 0
    for topic_index, topic in enumerate(_TOPICS):
        for rank in range(25):
            paper_counter += 1
            paper_id = f"P{paper_counter:04d}"
            year = 2008 - (rank % 6)
            relevance = 1000 - rank * 31 - topic_index
            papers.append((topic, paper_id, f"{topic} study {rank + 1}", year, relevance))
            # Experts author the top papers of their pet topic.
            expert = _EXPERTS[(topic_index + rank) % len(_EXPERTS)]
            if rank < 12:
                authorships.append((paper_id, expert))
            authorships.append((paper_id, _OTHERS[(rank * 3 + topic_index) % len(_OTHERS)]))
            if rank % 2 == 0:
                authorships.append((paper_id, _OTHERS[(rank * 5 + 7) % len(_OTHERS)]))
    for index, expert in enumerate(_EXPERTS):
        projects.append((expert, f"EU-FP7-{index + 101}", "FP7"))
        if index % 2 == 0:
            projects.append((expert, f"EU-FP6-{index + 201}", "FP6"))
    # A couple of non-expert investigators too.
    projects.append((_OTHERS[0], "EU-FP7-301", "FP7"))
    return papers, authorships, projects


_TITLE_NOUNS = (
    "study", "survey", "framework", "architecture", "evaluation",
    "benchmark", "algorithm", "system", "approach", "analysis",
)


def generate_corpus(
    n_papers: int = 1000, seed: int = 0
) -> tuple[list[tuple], list[tuple], list[tuple]]:
    """A DBLP-style bibliography at parameterized scale.

    Returns ``(papers, authorships, projects)`` in the exact shape of
    the toy :func:`_corpus` — papers are ``(topic, paper_id, title,
    year, relevance)`` 5-tuples whose hidden relevance strictly
    decreases with rank inside each topic, authorships are ``(paper,
    author)``, projects are ``(author, project, programme)`` — so the
    same registry builders, score index, and :func:`experts_query`
    work unchanged from 1k to 100k+ papers.  Deterministic in
    ``(n_papers, seed)``; all values are ``str``/``int``/``float``
    (the SQLite-exact type domain).  The planted ground truth is
    preserved: the :func:`planted_experts` author the top papers of
    their pet topics and hold accepted EU projects, and an author
    pool scaling with the corpus (~0.6 authors per paper, a DBLP-ish
    ratio) supplies 1–3 coauthors per paper.
    """
    if n_papers < len(_TOPICS):
        raise ValueError(f"need at least {len(_TOPICS)} papers, got {n_papers}")
    rng = random.Random(seed)
    pool = [
        f"Author{index:06d}"
        for index in range(max(len(_OTHERS), int(n_papers * 0.6)))
    ]
    papers: list[tuple] = []
    authorships: list[tuple] = []
    projects: list[tuple] = []
    topic_ranks = [0] * len(_TOPICS)
    for counter in range(n_papers):
        topic_index = counter % len(_TOPICS)
        topic = _TOPICS[topic_index]
        rank = topic_ranks[topic_index]
        topic_ranks[topic_index] += 1
        paper_id = f"P{counter + 1:07d}"
        year = 2008 - (rank % 6)
        relevance = float(1_000_000 - rank * 31 - topic_index)
        title = f"{topic} {rng.choice(_TITLE_NOUNS)} {rank + 1}"
        papers.append((topic, paper_id, title, year, relevance))
        coauthors = {
            pool[rng.randrange(len(pool))] for _ in range(1 + rng.randrange(3))
        }
        if rank < 12:
            # Experts author the top papers of their pet topic, as in
            # the toy corpus — the planted ground truth.
            coauthors.add(_EXPERTS[(topic_index + rank) % len(_EXPERTS)])
        authorships.extend((paper_id, author) for author in sorted(coauthors))
    for index, expert in enumerate(_EXPERTS):
        projects.append((expert, f"EU-FP7-{index + 101}", "FP7"))
        if index % 2 == 0:
            projects.append((expert, f"EU-FP6-{index + 201}", "FP6"))
    # A sparse sprinkle of non-expert investigators (selective join).
    for index in range(0, len(pool), 37):
        projects.append((pool[index], f"EU-FP7-{index + 301}", "FP7"))
    return papers, authorships, projects


def _pubsearch_service(
    backend: str,
    papers: list[tuple],
    path: Path | str | None,
) -> Service:
    profile = search_profile(
        chunk_size=PUBSEARCH_CHUNK, response_time=PUBSEARCH_TAU
    )
    rows = [row[:4] for row in papers]
    if backend == "memory":
        # Relevance is the hidden score (stored separately in the corpus).
        return TableSearchService(
            pubsearch_signature(), profile, rows, score=_relevance_index(papers)
        )
    if backend == "sqlite":
        return SQLiteSearchService(
            pubsearch_signature(),
            profile,
            rows,
            score=_relevance_index(papers),
            path=None if path is None else Path(path) / "pubsearch.db",
        )
    # FTS5: the keyword column is the MATCH query; titles embed the
    # topic words, so indexing the document text finds them — ranked
    # by BM25 instead of the planted relevance (a different, internally
    # consistent ranking regime over the same interface).
    return FTS5SearchService(
        pubsearch_signature(),
        profile,
        [row[1:4] for row in papers],
        query_position=0,
        text_of=lambda document: str(document[1]),
        path=None if path is None else Path(path) / "pubsearch.db",
    )


def _exact_service(
    backend: str,
    signature_: ServiceSignature,
    profile,
    rows: list[tuple],
    path: Path | str | None,
    pattern_profiles=None,
) -> Service:
    if backend in ("sqlite", "fts5"):
        return SQLiteExactService(
            signature_,
            profile,
            rows,
            path=None if path is None else Path(path) / f"{signature_.name}.db",
            pattern_profiles=pattern_profiles,
        )
    return TableExactService(
        signature_, profile, rows, pattern_profiles=pattern_profiles
    )


def biblio_registry(
    backend: str = "memory",
    corpus: tuple[list[tuple], list[tuple], list[tuple]] | None = None,
    path: Path | str | None = None,
) -> ServiceRegistry:
    """Registry with the three bibliographic services.

    ``backend`` selects the service implementation: ``"memory"`` (the
    default — in-memory tables, exactly as before), ``"sqlite"``
    (B-tree indexed, bit-identical answers), or ``"fts5"`` (the
    publication index under BM25 full-text ranking; the exact
    services stay on SQLite B-trees).  ``corpus`` substitutes a
    generated corpus (:func:`generate_corpus`) for the toy one;
    ``path`` is a directory for the SQLite backends' database files
    (in-memory databases when None).
    """
    if backend not in ("memory", "sqlite", "fts5"):
        raise ValueError(f"unknown biblio backend {backend!r}")
    papers, authorships, project_rows = corpus if corpus is not None else _corpus()
    registry = ServiceRegistry()
    registry.register(_pubsearch_service(backend, papers, path))
    registry.register(
        _exact_service(
            backend,
            authors_signature(),
            exact_profile(erspi=2.4, response_time=AUTHORS_TAU),
            authorships,
            path,
            pattern_profiles={
                "oi": exact_profile(erspi=8.0, response_time=AUTHORS_TAU)
            },
        )
    )
    registry.register(
        _exact_service(
            backend,
            projects_signature(),
            exact_profile(erspi=0.4, response_time=PROJECTS_TAU),
            project_rows,
            path,
        )
    )
    return registry


def biblio_registry_sqlite() -> ServiceRegistry:
    """The bibliographic registry on the indexed SQLite backend."""
    return biblio_registry(backend="sqlite")


def biblio_registry_fts5() -> ServiceRegistry:
    """The bibliographic registry with an FTS5 publication index."""
    return biblio_registry(backend="fts5")


def _relevance_index(papers: list[tuple]):
    """Score function keyed on (keyword, paper id)."""
    relevance = {(row[0], row[1]): row[4] for row in papers}

    def score(row: tuple) -> float:
        return float(relevance.get((row[0], row[1]), 0))

    return score


def experts_query(keyword: str = "service computing") -> ConjunctiveQuery:
    """Experts on *keyword* with recent papers and accepted projects."""
    paper = Variable("Paper")
    title = Variable("Title")
    year = Variable("Year")
    author = Variable("Author")
    project = Variable("Project")
    programme = Variable("Programme")
    atoms = (
        Atom("pubsearch", (Constant(keyword), paper, title, year)),
        Atom("authors", (paper, author)),
        Atom("projects", (author, project, programme)),
    )
    predicates = (Comparison(year, ">=", Constant(2005), selectivity=0.7),)
    return ConjunctiveQuery(
        name="experts",
        head=(author, project, paper, year),
        atoms=atoms,
        predicates=predicates,
    )


def planted_experts() -> tuple[str, ...]:
    """The ground-truth expert names embedded in the corpus."""
    return _EXPERTS
