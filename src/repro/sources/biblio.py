"""The bibliographic domain: the "experts" query of the abstract.

"Who are the strongest experts on service computing based upon their
recent publication record and accepted European projects?"

Services:

* ``pubsearch(Keyword, Paper, Title, Year)`` — a *search* service over
  a publication index, returning papers by decreasing relevance to the
  keyword, chunked;
* ``authors(Paper, Author)`` — exact, proliferative (a few authors per
  paper);
* ``projects(Author, Project, Programme)`` — exact: accepted projects
  per investigator (selective: most authors have none).

The deterministic corpus embeds a planted ground truth (a small group
of prolific authors with funded projects) so tests can check both the
plan mechanics and the answers.
"""

from __future__ import annotations

from repro.model.atoms import Atom
from repro.model.predicates import Comparison
from repro.model.query import ConjunctiveQuery
from repro.model.schema import ServiceSignature, signature
from repro.model.terms import Constant, Variable
from repro.services.profile import exact_profile, search_profile
from repro.services.registry import ServiceRegistry
from repro.services.table import TableExactService, TableSearchService

PUBSEARCH_CHUNK = 10
PUBSEARCH_TAU = 2.1
AUTHORS_TAU = 0.9
PROJECTS_TAU = 1.1

_TOPICS = ("service computing", "data integration", "ranking", "mashups")
_EXPERTS = ("Rossi", "Bianchi", "Verdi", "Esposito")
_OTHERS = tuple(f"Author{index:02d}" for index in range(1, 31))


def pubsearch_signature() -> ServiceSignature:
    """pubsearch{iooo}(Keyword, Paper, Title, Year)."""
    return signature(
        "pubsearch", ["Keyword", "Paper", "Title", "Year"], ["iooo"]
    )


def authors_signature() -> ServiceSignature:
    """authors{io,oi}(Paper, Author)."""
    return signature("authors", ["Paper", "Author"], ["io", "oi"])


def projects_signature() -> ServiceSignature:
    """projects{ioo}(Author, Project, Programme)."""
    return signature("projects", ["Author", "Project", "Programme"], ["ioo"])


def _corpus() -> tuple[list[tuple], list[tuple], list[tuple]]:
    papers: list[tuple] = []
    authorships: list[tuple] = []
    projects: list[tuple] = []
    paper_counter = 0
    for topic_index, topic in enumerate(_TOPICS):
        for rank in range(25):
            paper_counter += 1
            paper_id = f"P{paper_counter:04d}"
            year = 2008 - (rank % 6)
            relevance = 1000 - rank * 31 - topic_index
            papers.append((topic, paper_id, f"{topic} study {rank + 1}", year, relevance))
            # Experts author the top papers of their pet topic.
            expert = _EXPERTS[(topic_index + rank) % len(_EXPERTS)]
            if rank < 12:
                authorships.append((paper_id, expert))
            authorships.append((paper_id, _OTHERS[(rank * 3 + topic_index) % len(_OTHERS)]))
            if rank % 2 == 0:
                authorships.append((paper_id, _OTHERS[(rank * 5 + 7) % len(_OTHERS)]))
    for index, expert in enumerate(_EXPERTS):
        projects.append((expert, f"EU-FP7-{index + 101}", "FP7"))
        if index % 2 == 0:
            projects.append((expert, f"EU-FP6-{index + 201}", "FP6"))
    # A couple of non-expert investigators too.
    projects.append((_OTHERS[0], "EU-FP7-301", "FP7"))
    return papers, authorships, projects


def biblio_registry() -> ServiceRegistry:
    """Registry with the three bibliographic services."""
    papers, authorships, project_rows = _corpus()
    registry = ServiceRegistry()
    registry.register(
        TableSearchService(
            pubsearch_signature(),
            search_profile(chunk_size=PUBSEARCH_CHUNK, response_time=PUBSEARCH_TAU),
            [row[:4] for row in papers],
            # Relevance is the hidden score (stored separately above).
            score=_relevance_index(papers),
        )
    )
    registry.register(
        TableExactService(
            authors_signature(),
            exact_profile(erspi=2.4, response_time=AUTHORS_TAU),
            authorships,
            pattern_profiles={
                "oi": exact_profile(erspi=8.0, response_time=AUTHORS_TAU)
            },
        )
    )
    registry.register(
        TableExactService(
            projects_signature(),
            exact_profile(erspi=0.4, response_time=PROJECTS_TAU),
            project_rows,
        )
    )
    return registry


def _relevance_index(papers: list[tuple]):
    """Score function keyed on (keyword, paper id)."""
    relevance = {(row[0], row[1]): row[4] for row in papers}

    def score(row: tuple) -> float:
        return float(relevance.get((row[0], row[1]), 0))

    return score


def experts_query(keyword: str = "service computing") -> ConjunctiveQuery:
    """Experts on *keyword* with recent papers and accepted projects."""
    paper = Variable("Paper")
    title = Variable("Title")
    year = Variable("Year")
    author = Variable("Author")
    project = Variable("Project")
    programme = Variable("Programme")
    atoms = (
        Atom("pubsearch", (Constant(keyword), paper, title, year)),
        Atom("authors", (paper, author)),
        Atom("projects", (author, project, programme)),
    )
    predicates = (Comparison(year, ">=", Constant(2005), selectivity=0.7),)
    return ConjunctiveQuery(
        name="experts",
        head=(author, project, paper, year),
        atoms=atoms,
        predicates=predicates,
    )


def planted_experts() -> tuple[str, ...]:
    """The ground-truth expert names embedded in the corpus."""
    return _EXPERTS
