"""The news-management domain (Section 6: "We have also applied the
framework to other domains, such as news management ...").

Services:

* ``newssearch(Topic, Article, Headline, Company, Date)`` — a search
  service over a news index, most relevant articles first, chunked,
  with a decay (old/low-relevance articles are not worth paging);
* ``quotes(Company, Date, Change)`` — exact: daily stock movement of a
  company (one tuple per company/date);
* ``profile(Company, Sector, Country)`` — exact company directory,
  accessible by company or by sector.

The showcase query: companies in a given sector that made the news on
days their stock moved sharply.
"""

from __future__ import annotations

from repro.model.atoms import Atom
from repro.model.predicates import Comparison
from repro.model.query import ConjunctiveQuery
from repro.model.schema import ServiceSignature, signature
from repro.model.terms import Constant, Variable
from repro.services.profile import exact_profile, search_profile
from repro.services.registry import ServiceRegistry
from repro.services.table import TableExactService, TableSearchService

NEWS_CHUNK = 10
NEWS_DECAY = 40
NEWS_TAU = 1.9
QUOTES_TAU = 0.7
PROFILE_TAU = 0.6

_COMPANIES = (
    ("Acme", "tech", "us"), ("Bolt", "tech", "de"), ("Crate", "retail", "us"),
    ("Dyno", "energy", "no"), ("Ember", "energy", "us"), ("Flux", "tech", "it"),
    ("Grain", "retail", "fr"), ("Helix", "biotech", "ch"),
    ("Ion", "energy", "uk"), ("Jolt", "tech", "us"),
)
_TOPICS = ("merger", "earnings", "recall", "lawsuit")
_DATES = tuple(f"2008-03-{day:02d}" for day in range(3, 29, 5))


def newssearch_signature() -> ServiceSignature:
    """newssearch{ioooo}(Topic, Article, Headline, Company, Date)."""
    return signature(
        "newssearch",
        ["Topic", "Article", "Headline", "Company", "Date"],
        ["ioooo"],
    )


def quotes_signature() -> ServiceSignature:
    """quotes{iio}(Company, Date, Change)."""
    return signature("quotes", ["Company", "Date", "Change"], ["iio"])


def profile_signature() -> ServiceSignature:
    """profile{ioo,oio}(Company, Sector, Country)."""
    return signature("profile", ["Company", "Sector", "Country"], ["ioo", "oio"])


def _news_rows() -> list[tuple]:
    rows = []
    counter = 0
    for topic_index, topic in enumerate(_TOPICS):
        for rank in range(30):
            counter += 1
            company = _COMPANIES[(rank + topic_index) % len(_COMPANIES)][0]
            date = _DATES[(rank * 2 + topic_index) % len(_DATES)]
            rows.append(
                (
                    topic,
                    f"A{counter:04d}",
                    f"{company} {topic} story {rank + 1}",
                    company,
                    date,
                )
            )
    return rows


def _quote_rows() -> list[tuple]:
    rows = []
    for index, (company, _, _) in enumerate(_COMPANIES):
        for date_index, date in enumerate(_DATES):
            change = ((index * 7 + date_index * 13) % 21) - 6  # -6 .. +14
            rows.append((company, date, change))
    return rows


def _relevance(rows: list[tuple]):
    order = {row[1]: index for index, row in enumerate(rows)}

    def score(row: tuple) -> float:
        # Earlier article ids are more relevant within their topic.
        return -float(order[row[1]])

    return score


def news_registry() -> ServiceRegistry:
    """Registry with the three news-domain services."""
    registry = ServiceRegistry()
    news_rows = _news_rows()
    registry.register(
        TableSearchService(
            newssearch_signature(),
            search_profile(
                chunk_size=NEWS_CHUNK, response_time=NEWS_TAU, decay=NEWS_DECAY
            ),
            news_rows,
            score=_relevance(news_rows),
        )
    )
    registry.register(
        TableExactService(
            quotes_signature(),
            exact_profile(erspi=1.0, response_time=QUOTES_TAU),
            _quote_rows(),
        )
    )
    registry.register(
        TableExactService(
            profile_signature(),
            exact_profile(erspi=1.0, response_time=PROFILE_TAU),
            [(name, sector, country) for name, sector, country in _COMPANIES],
            pattern_profiles={
                "oio": exact_profile(erspi=3.0, response_time=PROFILE_TAU)
            },
        )
    )
    return registry


def market_moving_news_query(
    topic: str = "merger", sector: str = "tech", min_move: int = 5
) -> ConjunctiveQuery:
    """News on *topic* about *sector* companies whose stock moved."""
    article = Variable("Article")
    headline = Variable("Headline")
    company = Variable("Company")
    date = Variable("Date")
    change = Variable("Change")
    country = Variable("Country")
    atoms = (
        Atom("newssearch", (Constant(topic), article, headline, company, date)),
        Atom("quotes", (company, date, change)),
        Atom("profile", (company, Constant(sector), country)),
    )
    predicates = (
        Comparison(change, ">=", Constant(min_move), selectivity=0.3),
    )
    return ConjunctiveQuery(
        name="marketnews",
        head=(company, headline, date, change),
        atoms=atoms,
        predicates=predicates,
    )
