"""The travel services and running-example query (Sections 2.5, 3, 6).

Exposes the four services of Figure 2 over the calibrated synthetic
world, with the Table 1 profiles::

    conf     exact    erspi 20   τ 1.2 s
    weather  exact    erspi 1*   τ 1.5 s   (* 0.05 effective, see below)
    flight   search   chunk 25   τ 9.7 s
    hotel    search   chunk 5    τ 4.9 s   (remote-side caching, as the
                                            paper observes for Bookings)

Selectivity bookkeeping, chosen so that the arithmetic of Example 5.1
and Figure 8 is reproduced exactly:

* the paper folds selection predicates into erspi.  Table 1's 0.05 for
  weather is the erspi *with* the ``Temperature >= 28`` filter; we
  register the raw erspi (1: one weather tuple per city/date) and give
  the temperature predicate an explicit selectivity of 0.05, so the
  annotated product ``ξ_conf · ξ_weather = 20 · 0.05 = 1`` matches
  Figure 8;
* the date-window predicates carry selectivity 1 (the conf profile of
  20 answers per topic already refers to the upcoming window);
* ``FPrice + HPrice < 2000`` carries the estimated selectivity 0.01 —
  "the join's estimated erspi is 0.01" in Example 5.1; it is applied
  at the flight/hotel merge point (plan O) or after the hotel node
  (serial plans).
"""

from __future__ import annotations

from repro.model.atoms import Atom
from repro.model.predicates import BinaryExpression, Comparison
from repro.model.query import ConjunctiveQuery
from repro.model.schema import Schema, ServiceSignature, schema_of, signature
from repro.model.terms import Constant, Variable
from repro.optimizer.patterns import PatternSequence
from repro.plans.builder import Poset
from repro.services.profile import exact_profile, search_profile
from repro.services.registry import ServiceRegistry
from repro.services.table import TableExactService, TableSearchService
from repro.sources.world import TravelWorld, build_world

#: Atom positions in the running-example query body (Figure 3 order).
FLIGHT_ATOM = 0
HOTEL_ATOM = 1
CONF_ATOM = 2
WEATHER_ATOM = 3

#: Table 1 response times (seconds).
CONF_TAU = 1.2
WEATHER_TAU = 1.5
FLIGHT_TAU = 9.7
HOTEL_TAU = 4.9

#: Table 1 chunk sizes.
FLIGHT_CHUNK = 25
HOTEL_CHUNK = 5

#: Profile erspi values (see module docstring for the weather caveat).
CONF_ERSPI = 20.0
CONF_CITY_ERSPI = 2.8  # ~151 events over 54 cities with the ooooi pattern
WEATHER_RAW_ERSPI = 1.0
WEATHER_FILTER_SELECTIVITY = 0.05
PRICE_PREDICATE_SELECTIVITY = 0.01


def conf_signature() -> ServiceSignature:
    """conf{ioooo,ooooi}(Topic, Name, Start, End, City)."""
    return signature(
        "conf",
        ["Topic", "ConfName", "Date", "Date", "City"],
        ["ioooo", "ooooi"],
    )


def weather_signature() -> ServiceSignature:
    """weather{ioi}(City, Temperature, Date)."""
    return signature("weather", ["City", "Temperature", "Date"], ["ioi"])


def flight_signature() -> ServiceSignature:
    """flight{iiiiooo}(From, To, OutDate, RetDate, OutTime, RetTime, Price)."""
    return signature(
        "flight",
        ["City", "City", "Date", "Date", "Time", "Time", "Price"],
        ["iiiiooo"],
    )


def hotel_signature() -> ServiceSignature:
    """hotel{oiiiio,oooooo}(Name, City, Category, CheckIn, CheckOut, Price).

    The second, all-output pattern is the paper's hotel₂ (Example 4.1:
    "hotel₂ only has output fields").
    """
    return signature(
        "hotel",
        ["HotelName", "City", "Category", "Date", "Date", "Price"],
        ["oiiiio", "oooooo"],
    )


def travel_schema() -> Schema:
    """The schema of Figure 2."""
    return schema_of(
        [conf_signature(), weather_signature(), flight_signature(), hotel_signature()]
    )


def travel_registry(world: TravelWorld | None = None) -> ServiceRegistry:
    """Registry with the four services over the calibrated world."""
    world = world or build_world()
    registry = ServiceRegistry()
    registry.register(
        TableExactService(
            conf_signature(),
            exact_profile(erspi=CONF_ERSPI, response_time=CONF_TAU),
            world.conf_rows,
            # The city-driven pattern returns far fewer tuples per call
            # than the topic-driven one (a couple of events per city vs
            # 20 per topic) — erspi is pattern-specific.
            pattern_profiles={
                "ooooi": exact_profile(
                    erspi=CONF_CITY_ERSPI, response_time=CONF_TAU
                )
            },
        )
    )
    registry.register(
        TableExactService(
            weather_signature(),
            exact_profile(erspi=WEATHER_RAW_ERSPI, response_time=WEATHER_TAU),
            world.weather_rows,
        )
    )
    registry.register(
        TableSearchService(
            flight_signature(),
            search_profile(chunk_size=FLIGHT_CHUNK, response_time=FLIGHT_TAU),
            world.flight_rows,
            score=lambda row: -float(row[6]),  # cheapest flights first
        )
    )
    registry.register(
        TableSearchService(
            hotel_signature(),
            search_profile(chunk_size=HOTEL_CHUNK, response_time=HOTEL_TAU),
            world.hotel_rows,
            score=lambda row: -float(row[5]),  # cheapest hotels first
            remote_caching=True,  # the Bookings.com effect (Section 6)
        )
    )
    return registry


def running_example_query() -> ConjunctiveQuery:
    """The query of Figure 3 (atom order as printed in the paper)."""
    city = Variable("City")
    start = Variable("Start")
    end = Variable("End")
    out_time = Variable("OutTime")
    ret_time = Variable("RetTime")
    f_price = Variable("FPrice")
    hotel_name = Variable("Hotel")
    h_price = Variable("HPrice")
    conf_name = Variable("Conf")
    temperature = Variable("Temperature")

    flight_atom = Atom(
        "flight",
        (Constant("Milano"), city, start, end, out_time, ret_time, f_price),
    )
    hotel_atom = Atom(
        "hotel",
        (hotel_name, city, Constant("luxury"), start, end, h_price),
    )
    conf_atom = Atom("conf", (Constant("DB"), conf_name, start, end, city))
    weather_atom = Atom("weather", (city, temperature, start))

    from repro.sources.world import WINDOW_END, WINDOW_START

    predicates = (
        Comparison(start, ">=", Constant(WINDOW_START), selectivity=1.0),
        Comparison(end, "<=", Constant(WINDOW_END), selectivity=1.0),
        Comparison(
            temperature, ">=", Constant(28),
            selectivity=WEATHER_FILTER_SELECTIVITY,
        ),
        Comparison(
            BinaryExpression("+", f_price, h_price),
            "<",
            Constant(2000),
            selectivity=PRICE_PREDICATE_SELECTIVITY,
        ),
    )
    return ConjunctiveQuery(
        name="q",
        head=(
            conf_name, city, hotel_name, f_price, h_price,
            start, end, out_time, ret_time,
        ),
        atoms=(flight_atom, hotel_atom, conf_atom, weather_atom),
        predicates=predicates,
    )


def alpha1_patterns() -> PatternSequence:
    """α1: conf₁ (topic-driven), flight, hotel₁, weather."""
    return (
        flight_signature().pattern("iiiiooo"),
        hotel_signature().pattern("oiiiio"),
        conf_signature().pattern("ioooo"),
        weather_signature().pattern("ioi"),
    )


def alpha4_patterns() -> PatternSequence:
    """α4: conf₂ (city-driven), flight, hotel₂ (all output), weather."""
    return (
        flight_signature().pattern("iiiiooo"),
        hotel_signature().pattern("oooooo"),
        conf_signature().pattern("ooooi"),
        weather_signature().pattern("ioi"),
    )


def poset_serial() -> Poset:
    """Plan S: conf → weather → flight → hotel (Figure 7a)."""
    return Poset(
        n=4,
        pairs=frozenset(
            {
                (CONF_ATOM, WEATHER_ATOM),
                (WEATHER_ATOM, FLIGHT_ATOM),
                (FLIGHT_ATOM, HOTEL_ATOM),
            }
        ),
    )


def poset_parallel() -> Poset:
    """Plan P: conf, then weather/flight/hotel in parallel (Figure 7c)."""
    return Poset(
        n=4,
        pairs=frozenset(
            {
                (CONF_ATOM, WEATHER_ATOM),
                (CONF_ATOM, FLIGHT_ATOM),
                (CONF_ATOM, HOTEL_ATOM),
            }
        ),
    )


def poset_optimal() -> Poset:
    """Plan O: conf → weather → (flight ∥ hotel) (Figures 7d and 8)."""
    return Poset(
        n=4,
        pairs=frozenset(
            {
                (CONF_ATOM, WEATHER_ATOM),
                (WEATHER_ATOM, FLIGHT_ATOM),
                (WEATHER_ATOM, HOTEL_ATOM),
            }
        ),
    )
