"""Simulated deep-Web sources: travel, bioinformatics, bibliography, weekend."""

from repro.sources.news import market_moving_news_query, news_registry
from repro.sources.biblio import biblio_registry, experts_query, planted_experts
from repro.sources.bio import bio_registry, glycolysis_homolog_query
from repro.sources.travel import (
    alpha1_patterns,
    alpha4_patterns,
    poset_optimal,
    poset_parallel,
    poset_serial,
    running_example_query,
    travel_registry,
    travel_schema,
)
from repro.sources.weekend import mahler_weekend_query, weekend_registry
from repro.sources.world import TravelWorld, build_world

__all__ = [
    "TravelWorld",
    "alpha1_patterns",
    "alpha4_patterns",
    "biblio_registry",
    "bio_registry",
    "build_world",
    "experts_query",
    "glycolysis_homolog_query",
    "market_moving_news_query",
    "news_registry",
    "mahler_weekend_query",
    "planted_experts",
    "poset_optimal",
    "poset_parallel",
    "poset_serial",
    "running_example_query",
    "travel_registry",
    "travel_schema",
    "weekend_registry",
]
