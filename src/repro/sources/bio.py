"""The bioinformatics domain (Section 6, last paragraph).

The paper reports applying the framework to protein repositories "to
find evolutionary relationships between human and mouse proteins
including repeated protein domains and involved in the glycolysis
metabolic pathway", using InterPro, UniProt, BLAST, and KEGG.  We model
synthetic equivalents with the same interaction structure:

* ``kegg(Pathway, Protein)`` — exact; proteins of a pathway (proliferative)
  or pathways of a protein (selective);
* ``uniprot(Protein, Organism, Gene)`` — exact; lookup by protein id or
  browse by organism;
* ``blast(Query, Hit, Score)`` — *search* service returning homologs in
  decreasing alignment score, chunked, **with a decay bound**: beyond
  the first few dozen hits, scores are biologically meaningless.  The
  decay makes the registry's default join-method rule pick nested loop
  when blast output is joined in parallel (Section 3.3);
* ``interpro(Protein, Domain, Repeats)`` — exact; domain annotations
  with repeat counts.

The query mirrors the paper's: human glycolysis proteins, their mouse
homologs by BLAST, restricted to homologs with repeated domains.
"""

from __future__ import annotations

from repro.model.atoms import Atom
from repro.model.predicates import Comparison
from repro.model.query import ConjunctiveQuery
from repro.model.schema import ServiceSignature, signature
from repro.model.terms import Constant, Variable
from repro.services.profile import exact_profile, search_profile
from repro.services.registry import ServiceRegistry
from repro.services.table import TableExactService, TableSearchService

#: Number of human/mouse proteins in the synthetic proteome.
PROTEINS_PER_ORGANISM = 60

#: Human proteins participating in glycolysis.
GLYCOLYSIS_SIZE = 12

BLAST_CHUNK = 10
BLAST_DECAY = 30
BLAST_TAU = 12.0
KEGG_TAU = 1.0
UNIPROT_TAU = 0.8
INTERPRO_TAU = 1.4

_DOMAINS = ("kinase", "sh3", "zincfinger", "helicase", "wd40", "ankyrin")


def _human(index: int) -> str:
    return f"HSA{index:03d}"


def _mouse(index: int) -> str:
    return f"MMU{index:03d}"


def kegg_signature() -> ServiceSignature:
    """kegg{io,oi}(Pathway, Protein)."""
    return signature("kegg", ["Pathway", "Protein"], ["io", "oi"])


def uniprot_signature() -> ServiceSignature:
    """uniprot{ioo,oio}(Protein, Organism, Gene)."""
    return signature("uniprot", ["Protein", "Organism", "Gene"], ["ioo", "oio"])


def blast_signature() -> ServiceSignature:
    """blast{ioo}(Query, Hit, Score)."""
    return signature("blast", ["Protein", "Protein", "Score"], ["ioo"])


def interpro_signature() -> ServiceSignature:
    """interpro{ioo}(Protein, Domain, Repeats)."""
    return signature("interpro", ["Protein", "Domain", "Repeats"], ["ioo"])


def _kegg_rows() -> list[tuple]:
    rows = []
    for index in range(GLYCOLYSIS_SIZE):
        rows.append(("glycolysis", _human(index + 1)))
    # Other pathways, so the pathway-driven pattern is proliferative
    # but the protein-driven one is selective.
    for index in range(20):
        rows.append(("tca-cycle", _human(20 + index % 25 + 1)))
    for index in range(15):
        rows.append(("apoptosis", _human(35 + index % 20 + 1)))
    return rows


def _uniprot_rows() -> list[tuple]:
    rows = []
    for index in range(1, PROTEINS_PER_ORGANISM + 1):
        rows.append((_human(index), "human", f"geneH{index:03d}"))
        rows.append((_mouse(index), "mouse", f"geneM{index:03d}"))
    return rows


def _blast_rows() -> list[tuple]:
    """Ranked homologs: each human protein hits several mouse proteins.

    The true ortholog (same index) scores highest; neighbours by index
    score less.  Scores below the decay bound are never served.
    """
    rows = []
    for index in range(1, PROTEINS_PER_ORGANISM + 1):
        query = _human(index)
        for offset in range(0, 8):
            hit_index = (index - 1 + offset) % PROTEINS_PER_ORGANISM + 1
            score = 980 - offset * 90 - (index % 7)
            rows.append((query, _mouse(hit_index), score))
        # Cross-species noise hits with low scores.
        for offset in range(1, 4):
            hit_index = (index + offset * 11) % PROTEINS_PER_ORGANISM + 1
            rows.append((query, _human(hit_index), 300 - offset * 40))
    return rows


def _interpro_rows() -> list[tuple]:
    rows = []
    for index in range(1, PROTEINS_PER_ORGANISM + 1):
        for organism_prefix in (_human, _mouse):
            protein = organism_prefix(index)
            domain = _DOMAINS[index % len(_DOMAINS)]
            repeats = 1 + (index % 4)  # 25% have >= 3 repeats
            rows.append((protein, domain, repeats))
            if index % 3 == 0:
                rows.append((protein, _DOMAINS[(index + 2) % len(_DOMAINS)], 1))
    return rows


def bio_registry() -> ServiceRegistry:
    """Registry with the four bioinformatics services."""
    registry = ServiceRegistry()
    registry.register(
        TableExactService(
            kegg_signature(),
            exact_profile(erspi=12.0, response_time=KEGG_TAU),
            _kegg_rows(),
            pattern_profiles={
                "oi": exact_profile(erspi=1.2, response_time=KEGG_TAU)
            },
        )
    )
    registry.register(
        TableExactService(
            uniprot_signature(),
            exact_profile(erspi=1.0, response_time=UNIPROT_TAU),
            _uniprot_rows(),
            pattern_profiles={
                "oio": exact_profile(erspi=60.0, response_time=UNIPROT_TAU)
            },
        )
    )
    registry.register(
        TableSearchService(
            blast_signature(),
            search_profile(
                chunk_size=BLAST_CHUNK,
                response_time=BLAST_TAU,
                decay=BLAST_DECAY,
            ),
            _blast_rows(),
            score=lambda row: float(row[2]),
        )
    )
    registry.register(
        TableExactService(
            interpro_signature(),
            exact_profile(erspi=1.4, response_time=INTERPRO_TAU),
            _interpro_rows(),
        )
    )
    registry.register_join_selectivity("blast", "interpro", 0.05)
    return registry


def glycolysis_homolog_query() -> ConjunctiveQuery:
    """Human glycolysis proteins with repeated-domain mouse homologs."""
    human = Variable("Human")
    mouse = Variable("Mouse")
    gene = Variable("Gene")
    score = Variable("Score")
    domain = Variable("Domain")
    repeats = Variable("Repeats")
    atoms = (
        Atom("kegg", (Constant("glycolysis"), human)),
        Atom("uniprot", (human, Constant("human"), gene)),
        Atom("blast", (human, mouse, score)),
        Atom("uniprot", (mouse, Constant("mouse"), Variable("MouseGene"))),
        Atom("interpro", (mouse, domain, repeats)),
    )
    predicates = (
        Comparison(score, ">=", Constant(500), selectivity=0.6),
        Comparison(repeats, ">=", Constant(2), selectivity=0.5),
    )
    return ConjunctiveQuery(
        name="homologs",
        head=(human, mouse, domain, score),
        atoms=atoms,
        predicates=predicates,
    )
