"""The calibrated synthetic travel world (Section 6 substitute).

The paper wrapped live sources (conference-service.com, accuweather,
expedia, bookings.com).  We replace them with a deterministic synthetic
world engineered so that the narrative arithmetic of Section 6 holds
exactly:

* ``conf('DB', ...)`` returns **71** tuples over **54** distinct cities
  ("some cities host several events"); co-located events share the
  same dates, so the number of distinct (city, dates) combinations is
  also 54 — which is why the optimal cache reduces weather calls from
  71 to 54;
* **16** of the 71 tuples are in cities with average temperature ≥ 28°C,
  spread over **11** distinct hot cities;
* exactly one hot city (Mombasa) has **no** flights from Milano; the
  flights of the other ten are calibrated so that the 16 weather-passing
  tuples yield **284** flight tuples in total (the number of hotel calls
  of plan S without caching);
* conference tuples are emitted city-interleaved, so consecutive
  duplicates never occur at the weather/flight nodes (the one-call
  cache does not reduce their 71/16 calls, as in Figure 11), while the
  284 flight tuples arrive in per-city blocks (the one-call cache cuts
  hotel calls to 15: one block per weather-passing tuple, minus the
  empty Mombasa block);
* every city has exactly 5 luxury hotels (one full chunk of the hotel
  service).

All values are fixed tables — no randomness — so every experiment is
reproducible bit-for-bit.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

#: Hot cities (average temperature >= 28°C) with the number of 'DB'
#: conferences each hosts.  Totals: 16 tuples over 11 cities.
HOT_CITY_CONFS: dict[str, int] = {
    "Cancun": 3,
    "Phuket": 2,
    "Dubai": 2,
    "Singapore": 2,
    "Miami": 1,
    "Honolulu": 1,
    "Bangkok": 1,
    "Doha": 1,
    "Manila": 1,
    "Casablanca": 1,
    "Mombasa": 1,
}

#: Flights Milano -> hot city; Mombasa deliberately has none.  The
#: weighted sum over conference tuples equals 284 (see module test).
HOT_CITY_FLIGHTS: dict[str, int] = {
    "Cancun": 20,
    "Phuket": 22,
    "Dubai": 21,
    "Singapore": 19,
    "Miami": 17,
    "Honolulu": 18,
    "Bangkok": 16,
    "Doha": 20,
    "Manila": 15,
    "Casablanca": 14,
    "Mombasa": 0,
}

#: Temperate cities.  The first 12 host 2 'DB' conferences, the rest 1:
#: 12 * 2 + 31 = 55 tuples, for a grand total of 71 over 54 cities.
MILD_CITIES: tuple[str, ...] = (
    "Amsterdam", "Athens", "Auckland", "Barcelona", "Beijing", "Berlin",
    "Bern", "Bologna", "Boston", "Bratislava", "Brussels", "Bucharest",
    "Budapest", "Copenhagen", "Dublin", "Edinburgh", "Geneva", "Hamburg",
    "Helsinki", "Krakow", "Lisbon", "Ljubljana", "London", "Lyon",
    "Madrid", "Montreal", "Munich", "Oslo", "Ottawa", "Paris", "Porto",
    "Prague", "Riga", "Rome", "Seattle", "Sofia", "Stockholm", "Tallinn",
    "Toronto", "Vancouver", "Vienna", "Warsaw", "Zurich",
)

#: Number of mild cities hosting two co-located 'DB' events.
MILD_DOUBLE_COUNT = 12

#: Cities with flights from Milano besides the hot ones (for realism in
#: the fully parallel plan, which calls flight for every conf tuple).
#: Amsterdam is a deep route (more fares than one chunk) so service
#: profiling can observe the true chunk size; mild cities never pass
#: the temperature filter, so this does not disturb the calibration.
MILD_CITIES_WITH_FLIGHTS = MILD_CITIES[:5]
MILD_FLIGHTS_PER_CITY = 8
DEEP_ROUTE_CITY = MILD_CITIES[0]
DEEP_ROUTE_FLIGHTS = 32

#: Query window: 'DB' conferences within six months of this date.
WINDOW_START = "2008-04-01"
WINDOW_END = "2008-09-28"

#: Other topics, used to profile the conf service (their mean response
#: size is the erspi the paper reports in Table 1: 20).
OTHER_TOPIC_SIZES: dict[str, int] = {"AI": 25, "IR": 20, "SE": 15, "OS": 20}

#: Luxury hotels per city — exactly one chunk of the hotel service.
LUXURY_HOTELS_PER_CITY = 5
STANDARD_HOTELS_PER_CITY = 4


@dataclass(frozen=True)
class TravelWorld:
    """The four relations backing the travel services."""

    conf_rows: tuple[tuple, ...]
    weather_rows: tuple[tuple, ...]
    flight_rows: tuple[tuple, ...]
    hotel_rows: tuple[tuple, ...]
    hot_cities: tuple[str, ...]
    mild_cities: tuple[str, ...]

    @property
    def all_cities(self) -> tuple[str, ...]:
        """All 54 conference cities."""
        return self.hot_cities + self.mild_cities


def _city_order() -> list[str]:
    """All cities in a fixed, interleaving-friendly order."""
    return sorted(list(HOT_CITY_CONFS) + list(MILD_CITIES))


def city_dates(city: str) -> tuple[str, str]:
    """The (shared) start/end dates of the events hosted by *city*.

    Deterministic spread over the six-month window; co-located events
    share these dates, keeping distinct (city, dates) combinations at
    exactly one per city.
    """
    cities = _city_order()
    index = cities.index(city)
    base = datetime.date(2008, 4, 1)
    start = base + datetime.timedelta(days=(index * 3) % 175)
    end = start + datetime.timedelta(days=3)
    return start.isoformat(), end.isoformat()


def _conf_multiplicities() -> dict[str, int]:
    multiplicities = dict(HOT_CITY_CONFS)
    for position, city in enumerate(MILD_CITIES):
        multiplicities[city] = 2 if position < MILD_DOUBLE_COUNT else 1
    return multiplicities


def _build_conf_rows() -> list[tuple]:
    """'DB' rows city-interleaved (no consecutive duplicate city), plus
    rows for the profiling topics."""
    multiplicities = _conf_multiplicities()
    rows: list[tuple] = []
    remaining = dict(multiplicities)
    cycle = 0
    while any(count > 0 for count in remaining.values()):
        for city in _city_order():
            if remaining[city] <= 0:
                continue
            start, end = city_dates(city)
            name = f"{city} DB Symposium {cycle + 1}"
            rows.append(("DB", name, start, end, city))
            remaining[city] -= 1
        cycle += 1
    for topic, size in OTHER_TOPIC_SIZES.items():
        cities = _city_order()
        for index in range(size):
            city = cities[(index * 7) % len(cities)]
            start, end = city_dates(city)
            rows.append((topic, f"{city} {topic} Workshop {index + 1}", start, end, city))
    return rows


def city_temperature(city: str) -> int:
    """Average temperature of *city*: >= 28 iff the city is hot."""
    cities = _city_order()
    index = cities.index(city)
    if city in HOT_CITY_CONFS:
        return 29 + index % 5
    return 12 + index % 12


def _build_weather_rows(conf_rows: list[tuple]) -> list[tuple]:
    seen: set[tuple[str, str]] = set()
    rows: list[tuple] = []
    for _, _, start, _, city in conf_rows:
        key = (city, start)
        if key in seen:
            continue
        seen.add(key)
        rows.append((city, city_temperature(city), start))
    return rows


def _build_flight_rows() -> list[tuple]:
    rows: list[tuple] = []
    flights_per_city = dict(HOT_CITY_FLIGHTS)
    for city in MILD_CITIES_WITH_FLIGHTS:
        flights_per_city[city] = MILD_FLIGHTS_PER_CITY
    flights_per_city[DEEP_ROUTE_CITY] = DEEP_ROUTE_FLIGHTS
    for city, count in sorted(flights_per_city.items()):
        start, end = city_dates(city)
        for index in range(count):
            out_time = f"{6 + index % 14:02d}:00"
            ret_time = f"{8 + index % 13:02d}:30"
            price = 180 + (index * 37 + len(city) * 11) % 900
            rows.append(("Milano", city, start, end, out_time, ret_time, price))
    return rows


def _build_hotel_rows() -> list[tuple]:
    rows: list[tuple] = []
    for city_index, city in enumerate(_city_order()):
        start, end = city_dates(city)
        for index in range(LUXURY_HOTELS_PER_CITY):
            price = 260 + (index * 83 + city_index * 17) % 640
            rows.append((f"{city} Grand {index + 1}", city, "luxury", start, end, price))
        for index in range(STANDARD_HOTELS_PER_CITY):
            price = 80 + (index * 53 + city_index * 13) % 240
            rows.append((f"{city} Inn {index + 1}", city, "standard", start, end, price))
    return rows


def build_world() -> TravelWorld:
    """Build the deterministic calibrated travel world."""
    conf_rows = _build_conf_rows()
    return TravelWorld(
        conf_rows=tuple(conf_rows),
        weather_rows=tuple(_build_weather_rows(conf_rows)),
        flight_rows=tuple(_build_flight_rows()),
        hotel_rows=tuple(_build_hotel_rows()),
        hot_cities=tuple(sorted(HOT_CITY_CONFS)),
        mild_cities=tuple(sorted(MILD_CITIES)),
    )


def expected_plan_s_flight_tuples() -> int:
    """The calibrated number of flight tuples flowing to hotel in plan S.

    Sum over the 16 weather-passing conference tuples of the number of
    flights to their city — 284, matching Figure 11's no-cache hotel
    calls for the serial plan.
    """
    return sum(
        HOT_CITY_CONFS[city] * HOT_CITY_FLIGHTS[city] for city in HOT_CITY_CONFS
    )
