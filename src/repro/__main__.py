"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``reproduce``
    Regenerate every table and figure of the paper (Section 6) and
    print them next to the published values.

``demo [travel|bio|biblio|weekend]``
    Optimize and execute the showcase query of a built-in domain.

``optimize --domain NAME "q(X) :- ..."``
    Optimize (and optionally execute) an ad-hoc datalog query against a
    built-in domain's services.
"""

from __future__ import annotations

import argparse
import sys

from repro.costs.sum_cost import RequestResponseMetric
from repro.costs.time_cost import ExecutionTimeMetric
from repro.execution.cache import CacheSetting
from repro.execution.engine import ExecutionEngine
from repro.model.parser import parse_query
from repro.optimizer.optimizer import Optimizer, OptimizerConfig
from repro.plans.render import render_ascii

_DOMAINS = {
    "travel": (
        "repro.sources.travel", "travel_registry", "running_example_query"
    ),
    "bio": ("repro.sources.bio", "bio_registry", "glycolysis_homolog_query"),
    "biblio": ("repro.sources.biblio", "biblio_registry", "experts_query"),
    "weekend": (
        "repro.sources.weekend", "weekend_registry", "mahler_weekend_query"
    ),
}

_METRICS = {
    "time": ExecutionTimeMetric,
    "requests": RequestResponseMetric,
}


def _load_domain(name: str):
    import importlib

    module_name, registry_fn, query_fn = _DOMAINS[name]
    module = importlib.import_module(module_name)
    return getattr(module, registry_fn)(), getattr(module, query_fn)()


def _optimize_and_run(registry, query, metric_name: str, k: int,
                      execute: bool) -> int:
    metric = _METRICS[metric_name]()
    optimizer = Optimizer(
        registry, metric,
        OptimizerConfig(k=k, cache_setting=CacheSetting.ONE_CALL),
    )
    best = optimizer.optimize(query)
    print(f"Query: {query}\n")
    print(f"Optimal plan under {metric.name} (cost {best.cost:.1f}):")
    print(render_ascii(best.plan, best.annotation))
    print(f"Search: {best.stats.summary()}")
    if execute:
        engine = ExecutionEngine(registry, cache_setting=CacheSetting.ONE_CALL)
        result = engine.execute(best.plan, head=query.head, k=k)
        print(f"\nTop {k} answers:")
        print(result.table.render(k))
        print(f"\n{result.stats.summary()}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-domain Web query optimizer (VLDB 2008 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("reproduce", help="regenerate every table/figure")

    demo = sub.add_parser("demo", help="run a built-in domain's showcase query")
    demo.add_argument("domain", choices=sorted(_DOMAINS), nargs="?",
                      default="travel")
    demo.add_argument("--metric", choices=sorted(_METRICS), default="time")
    demo.add_argument("-k", type=int, default=10, help="answers wanted")
    demo.add_argument("--no-execute", action="store_true",
                      help="optimize only, skip execution")

    opt = sub.add_parser("optimize", help="optimize an ad-hoc datalog query")
    opt.add_argument("query", help="datalog text, e.g. \"q(X) :- s('a', X).\"")
    opt.add_argument("--domain", choices=sorted(_DOMAINS), default="travel")
    opt.add_argument("--metric", choices=sorted(_METRICS), default="time")
    opt.add_argument("-k", type=int, default=10)
    opt.add_argument("--no-execute", action="store_true")

    args = parser.parse_args(argv)

    if args.command == "reproduce":
        from repro.experiments import run_figure8, run_figure11, run_table1
        from repro.services.profiler import format_profile_table

        print("Table 1:")
        print(format_profile_table(run_table1()))
        print("\nFigure 8:")
        figure8 = run_figure8()
        print(figure8.render())
        print(f"fetching factors: {figure8.fetches}")
        print("\nFigure 11:")
        grid = run_figure11()
        print(grid.render())
        print(f"\ncalls match paper: {grid.all_calls_match_paper}")
        return 0

    if args.command == "demo":
        registry, query = _load_domain(args.domain)
        return _optimize_and_run(
            registry, query, args.metric, args.k, not args.no_execute
        )

    if args.command == "optimize":
        registry, _ = _load_domain(args.domain)
        query = parse_query(args.query)
        return _optimize_and_run(
            registry, query, args.metric, args.k, not args.no_execute
        )

    return 2


if __name__ == "__main__":
    sys.exit(main())
