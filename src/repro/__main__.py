"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``reproduce``
    Regenerate every table and figure of the paper (Section 6) and
    print them next to the published values.

``demo [travel|bio|biblio|biblio-sqlite|biblio-fts|weekend]``
    Optimize and execute the showcase query of a built-in domain
    (the ``biblio-*`` variants serve the bibliographic corpus from
    persistent indexed SQLite / FTS5 backends).

``optimize --domain NAME "q(X) :- ..."``
    Optimize (and optionally execute) an ad-hoc datalog query against a
    built-in domain's services.

``query [--domain NAME] ["q(X) :- ..."]``
    Submit a query through the serving layer (plan cache + shared
    service cache + sessions) and print the JSON response; ``--repeat``
    shows the plan-cache provenance flipping from ``optimized`` to
    ``memory``, ``--plan-cache PATH`` persists plans across processes.

``serve [--domain NAME]``
    Minimal line-oriented server on stdin/stdout: each line is a
    datalog query, ``more <session_id> [n]``, ``stats``, or ``quit``;
    one JSON response is printed per line.

Both serving commands persist plans with ``--plan-cache PATH``: a
``.sqlite``/``.db`` suffix (or ``--plan-cache-backend sqlite``) selects
the concurrent WAL-mode SQLite tier, anything else the JSON file tier;
the service itself is thread-safe either way.
"""

from __future__ import annotations

import argparse
import sys

from repro.costs.sum_cost import RequestResponseMetric
from repro.costs.time_cost import ExecutionTimeMetric
from repro.execution.cache import CacheSetting
from repro.execution.engine import ExecutionEngine
from repro.model.parser import parse_query
from repro.optimizer.optimizer import Optimizer, OptimizerConfig
from repro.plans.render import render_ascii

_DOMAINS = {
    "travel": (
        "repro.sources.travel", "travel_registry", "running_example_query"
    ),
    "bio": ("repro.sources.bio", "bio_registry", "glycolysis_homolog_query"),
    "biblio": ("repro.sources.biblio", "biblio_registry", "experts_query"),
    # The same bibliographic domain served from persistent indexed
    # backends (repro.services.sqlite): B-tree paging / FTS5 BM25.
    "biblio-sqlite": (
        "repro.sources.biblio", "biblio_registry_sqlite", "experts_query"
    ),
    "biblio-fts": (
        "repro.sources.biblio", "biblio_registry_fts5", "experts_query"
    ),
    "weekend": (
        "repro.sources.weekend", "weekend_registry", "mahler_weekend_query"
    ),
}

_METRICS = {
    "time": ExecutionTimeMetric,
    "requests": RequestResponseMetric,
}


def _load_domain(name: str):
    import importlib

    module_name, registry_fn, query_fn = _DOMAINS[name]
    module = importlib.import_module(module_name)
    return getattr(module, registry_fn)(), getattr(module, query_fn)()


def _optimize_and_run(registry, query, metric_name: str, k: int,
                      execute: bool) -> int:
    metric = _METRICS[metric_name]()
    optimizer = Optimizer(
        registry, metric,
        OptimizerConfig(k=k, cache_setting=CacheSetting.ONE_CALL),
    )
    best = optimizer.optimize(query)
    print(f"Query: {query}\n")
    print(f"Optimal plan under {metric.name} (cost {best.cost:.1f}):")
    print(render_ascii(best.plan, best.annotation))
    print(f"Search: {best.stats.summary()}")
    if execute:
        engine = ExecutionEngine(registry, cache_setting=CacheSetting.ONE_CALL)
        result = engine.execute(best.plan, head=query.head, k=k)
        print(f"\nTop {k} answers:")
        print(result.table.render(k))
        print(f"\n{result.stats.summary()}")
    return 0


def _resilience_config(args):
    """A ResilienceConfig from the CLI flags; None when all are off."""
    retries = getattr(args, "retries", 0)
    hedge = getattr(args, "hedge", None)
    partial = getattr(args, "partial_results", False)
    if not retries and hedge is None and not partial:
        return None
    from repro.execution.resilience import (
        HedgePolicy,
        ResilienceConfig,
        RetryPolicy,
    )

    return ResilienceConfig(
        retry=RetryPolicy(attempts=retries + 1) if retries else None,
        hedge=HedgePolicy(threshold=hedge) if hedge is not None else None,
        partial_results=partial,
    )


def _make_query_service(args):
    from repro.serving import AdaptivePolicy, PlanCache, QueryService

    registry, showcase = _load_domain(args.domain)
    plan_cache = PlanCache(
        path=getattr(args, "plan_cache", None),
        backend=getattr(args, "plan_cache_backend", "auto"),
    )
    service = QueryService(
        registry=registry,
        metric=_METRICS[args.metric](),
        k_default=args.k,
        plan_cache=plan_cache,
        resilience=_resilience_config(args),
        row_provenance=getattr(args, "provenance", False),
        adaptive=(
            AdaptivePolicy() if getattr(args, "adaptive", False) else None
        ),
    )
    return service, showcase


def _run_query(args) -> int:
    service, showcase = _make_query_service(args)
    query = parse_query(args.query) if args.query else showcase
    for _ in range(max(1, args.repeat)):
        response = service.submit(query, k=args.k)
        print(response.to_json())
    import json

    print(json.dumps(service.snapshot(), sort_keys=True))
    return 0


def _run_serve(args) -> int:
    import json

    service, showcase = _make_query_service(args)
    for line in sys.stdin:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if line in {"quit", "exit"}:
            break
        try:
            if line == "stats":
                print(json.dumps(service.snapshot(), sort_keys=True))
            elif line.split()[0] == "more":
                parts = line.split()
                if len(parts) < 2:
                    raise ValueError("usage: more <session_id> [n]")
                additional = int(parts[2]) if len(parts) > 2 else None
                print(service.ask_for_more(parts[1], additional).to_json())
            elif line == "demo":
                print(service.submit(showcase, k=args.k).to_json())
            else:
                print(service.submit(line, k=args.k).to_json())
        except Exception as error:  # a bad request must not kill the server
            print(json.dumps({"error": f"{type(error).__name__}: {error}"}))
        sys.stdout.flush()
    print(json.dumps(service.snapshot(), sort_keys=True))
    return 0


def _add_resilience_flags(parser) -> None:
    """The serving commands' resilience flags (query + serve)."""
    parser.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry a transiently failed page pull up to N times "
        "(deterministic seeded backoff charged to virtual time)",
    )
    parser.add_argument(
        "--hedge", type=float, default=None, metavar="SECONDS",
        help="duplicate page pulls slower than this virtual latency; "
        "first sound response wins, the loser is discarded uncounted",
    )
    parser.add_argument(
        "--partial-results", action="store_true",
        help="when retries are exhausted, drop the unresponsive "
        "service block and answer over the rest, attaching a "
        "certificate naming every dropped unit",
    )
    parser.add_argument(
        "--provenance", action="store_true",
        help="attach per-row provenance to every answer: the "
        "(service, input, page, epoch) of each page pull that "
        "contributed to the row (answers themselves are unchanged)",
    )
    parser.add_argument(
        "--adaptive", action="store_true",
        help="mid-flight adaptive serving: per-service circuit "
        "breakers feed observed health back into plan costs, "
        "executions re-plan when a service's latency drifts from its "
        "profile, and exhausted units fall back to registered sibling "
        "services (every substitution recorded on the certificate)",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-domain Web query optimizer (VLDB 2008 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("reproduce", help="regenerate every table/figure")

    demo = sub.add_parser("demo", help="run a built-in domain's showcase query")
    demo.add_argument("domain", choices=sorted(_DOMAINS), nargs="?",
                      default="travel")
    demo.add_argument("--metric", choices=sorted(_METRICS), default="time")
    demo.add_argument("-k", type=int, default=10, help="answers wanted")
    demo.add_argument("--no-execute", action="store_true",
                      help="optimize only, skip execution")

    opt = sub.add_parser("optimize", help="optimize an ad-hoc datalog query")
    opt.add_argument("query", help="datalog text, e.g. \"q(X) :- s('a', X).\"")
    opt.add_argument("--domain", choices=sorted(_DOMAINS), default="travel")
    opt.add_argument("--metric", choices=sorted(_METRICS), default="time")
    opt.add_argument("-k", type=int, default=10)
    opt.add_argument("--no-execute", action="store_true")

    qry = sub.add_parser(
        "query", help="submit one query through the serving layer"
    )
    qry.add_argument("query", nargs="?", default=None,
                     help="datalog text (default: the domain's showcase query)")
    qry.add_argument("--domain", choices=sorted(_DOMAINS), default="travel")
    qry.add_argument("--metric", choices=sorted(_METRICS), default="time")
    qry.add_argument("-k", type=int, default=10)
    qry.add_argument("--repeat", type=int, default=1,
                     help="submit the query N times (shows plan-cache hits)")
    qry.add_argument("--plan-cache", default=None, metavar="PATH",
                     help="persist optimized plans to this file "
                     "(.sqlite/.db suffix selects the SQLite WAL tier)")
    qry.add_argument("--plan-cache-backend", default="auto",
                     choices=("auto", "json", "sqlite"),
                     help="disk tier for --plan-cache (auto: by suffix)")
    _add_resilience_flags(qry)

    srv = sub.add_parser(
        "serve", help="line-oriented query server on stdin/stdout"
    )
    srv.add_argument("--domain", choices=sorted(_DOMAINS), default="travel")
    srv.add_argument("--metric", choices=sorted(_METRICS), default="time")
    srv.add_argument("-k", type=int, default=10, help="default answers per query")
    srv.add_argument("--plan-cache", default=None, metavar="PATH",
                     help="persist optimized plans to this file "
                     "(.sqlite/.db suffix selects the SQLite WAL tier)")
    srv.add_argument("--plan-cache-backend", default="auto",
                     choices=("auto", "json", "sqlite"),
                     help="disk tier for --plan-cache (auto: by suffix)")
    _add_resilience_flags(srv)

    args = parser.parse_args(argv)

    if args.command == "reproduce":
        from repro.experiments import run_figure8, run_figure11, run_table1
        from repro.services.profiler import format_profile_table

        print("Table 1:")
        print(format_profile_table(run_table1()))
        print("\nFigure 8:")
        figure8 = run_figure8()
        print(figure8.render())
        print(f"fetching factors: {figure8.fetches}")
        print("\nFigure 11:")
        grid = run_figure11()
        print(grid.render())
        print(f"\ncalls match paper: {grid.all_calls_match_paper}")
        return 0

    if args.command == "demo":
        registry, query = _load_domain(args.domain)
        return _optimize_and_run(
            registry, query, args.metric, args.k, not args.no_execute
        )

    if args.command == "optimize":
        registry, _ = _load_domain(args.domain)
        query = parse_query(args.query)
        return _optimize_and_run(
            registry, query, args.metric, args.k, not args.no_execute
        )

    if args.command == "query":
        return _run_query(args)

    if args.command == "serve":
        return _run_serve(args)

    return 2


if __name__ == "__main__":
    sys.exit(main())
