"""Normalized query fingerprints and plan-cache keys.

The serving layer amortizes optimization across repeated traffic: two
submissions must land on the same cached plan whenever the optimizer
would provably make the same decisions for both.  That holds when

* the queries are identical up to a *renaming of variables* — the
  optimizer never looks at a variable's name, only at the sharing
  structure it induces (which atoms it links, where it repeats);
* the optimizer's inputs agree: registry content (profiles, join
  methods, selectivities — summarized by
  :meth:`~repro.services.registry.ServiceRegistry.content_epoch`),
  the cost metric, the answer budget ``k``, and the cache setting
  assumed while costing plans.

:func:`canonical_query` renders a query with variables renamed in
order of first occurrence (head first, then body), which makes the
rendering invariant under alpha-renaming while preserving everything
the optimizer can observe: atom order (plan specs address atoms by
body index), constants, predicate structure, and explicit
selectivities.  :func:`query_fingerprint` hashes that rendering, and
:func:`plan_cache_key` combines it with the optimization context into
the single string key the :class:`~repro.serving.plan_cache.PlanCache`
stores under.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.digest import content_digest
from repro.model.predicates import BinaryExpression, Comparison, Expression
from repro.model.query import ConjunctiveQuery
from repro.model.terms import Constant, Term, Variable
from repro.optimizer.optimizer import OptimizerConfig


def canonical_query(query: ConjunctiveQuery) -> str:
    """Alpha-invariant canonical rendering of *query*.

    Variables are renamed ``?0, ?1, ...`` in order of first occurrence
    scanning the head, then the body atoms left to right, then the
    predicates; constants are rendered with ``repr`` so ``'5'`` and
    ``5`` stay distinct.  Atom and predicate order is preserved —
    cached plan specs refer to atoms by body position, so queries that
    differ only in atom order deliberately get different fingerprints.
    """
    naming: dict[Variable, str] = {}

    def rename(term: Term) -> str:
        if isinstance(term, Constant):
            return f"c:{term.value!r}"
        if term not in naming:
            naming[term] = f"?{len(naming)}"
        return naming[term]

    head = ",".join(rename(variable) for variable in query.head)
    atoms = ";".join(
        f"{atom.service}({','.join(rename(term) for term in atom.terms)})"
        for atom in query.atoms
    )
    predicates = ";".join(
        _render_comparison(predicate, rename) for predicate in query.predicates
    )
    return f"head[{head}]body[{atoms}]where[{predicates}]"


def _render_comparison(
    predicate: Comparison, rename: Callable[[Term], str]
) -> str:
    left = _render_expression(predicate.left, rename)
    right = _render_expression(predicate.right, rename)
    # The explicit selectivity participates: it drives the annotated
    # cardinalities, so the same text with a different estimate may
    # legitimately optimize to a different plan.
    return f"{left}{predicate.op}{right}@{predicate.estimated_selectivity()!r}"


def _render_expression(
    expression: Expression, rename: Callable[[Term], str]
) -> str:
    if isinstance(expression, BinaryExpression):
        left = _render_expression(expression.left, rename)
        right = _render_expression(expression.right, rename)
        return f"({left}{expression.op}{right})"
    return rename(expression)


def query_fingerprint(query: ConjunctiveQuery) -> str:
    """Stable hex digest of the canonical rendering of *query*."""
    return content_digest(canonical_query(query))


def optimizer_config_token(config: OptimizerConfig) -> str:
    """Stable token over every search-shaping knob of *config*.

    ``k`` and ``cache_setting`` are excluded — they are explicit key
    components already.  ``memoize`` is excluded too: memoization is
    bit-identical to the unmemoized search by contract, so it cannot
    change which plan a key maps to.  Everything else (fetch
    heuristic, exploration, cogency restriction, pruning, topology
    budget) can legitimately pick a different plan for the same query,
    so two services with different configs must never serve each
    other's cache entries.
    """
    fields = dataclasses.asdict(config)
    for keyed_elsewhere in ("k", "cache_setting", "memoize"):
        fields.pop(keyed_elsewhere)
    return content_digest({name: repr(value) for name, value in fields.items()})


def plan_cache_key(
    fingerprint: str,
    epoch: str,
    metric_name: str,
    k: int,
    cache_setting_value: str,
    config_token: str,
) -> str:
    """The plan-cache key for one (query, optimization context) pair.

    The registry epoch is baked into the key, so entries optimized
    under drifted profiles can never be returned — they simply stop
    being addressed and age out of the LRU tier.  The config token
    does the same for optimizer settings: a cache shared between
    services (or processes) with different search knobs keeps their
    plans apart.
    """
    return "|".join(
        (
            fingerprint,
            epoch,
            metric_name,
            f"k={k}",
            cache_setting_value,
            config_token,
        )
    )
