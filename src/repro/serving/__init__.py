"""The multi-tenant query-serving layer.

Sits above the model/optimizer/execution layers and amortizes their
work across repeated traffic: a persistent two-tier plan cache keyed
by normalized query fingerprints and the registry's content epoch, a
logical service cache shared by every request, and progressive
sessions that resume suspended streams instead of re-executing.  See
``docs/ARCHITECTURE.md`` ("Serving layer") for the cache keys, the
invalidation rule, and the session lifecycle.
"""

from repro.serving.breaker import (
    AdaptivePolicy,
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
)
from repro.serving.fingerprint import (
    canonical_query,
    optimizer_config_token,
    plan_cache_key,
    query_fingerprint,
)
from repro.serving.plan_cache import CachedPlan, PlanCache, PlanCacheStats
from repro.serving.service import QueryResponse, QueryService, ServingStats
from repro.serving.sqlite_cache import SQLiteDiskTier
from repro.serving.sessions import (
    Session,
    SessionError,
    SessionManager,
    SessionStats,
)

__all__ = [
    "AdaptivePolicy",
    "BreakerPolicy",
    "BreakerState",
    "CachedPlan",
    "CircuitBreaker",
    "PlanCache",
    "PlanCacheStats",
    "QueryResponse",
    "QueryService",
    "SQLiteDiskTier",
    "ServingStats",
    "Session",
    "SessionError",
    "SessionManager",
    "SessionStats",
    "canonical_query",
    "optimizer_config_token",
    "plan_cache_key",
    "query_fingerprint",
]
