"""The two-tier persistent plan cache.

Optimized plans are pure functions of the plan-cache key (normalized
query fingerprint + registry content epoch + metric + ``k`` + cache
setting, see :mod:`repro.serving.fingerprint`), so they can be reused
across requests, sessions, and *processes*.  The cache stores the
serializable :class:`~repro.plans.spec.PlanSpec` — the three optimizer
decisions (patterns, precedence, fetches) — plus the plan's estimated
cost, never live plan objects: every hit rebuilds a fresh plan against
the caller's registry, so no two sessions ever share a mutable plan
(fetching factors grow in place during progressive execution).

Two tiers:

* **memory** — an LRU dict bounded by ``capacity``; hits refresh
  recency, stores beyond capacity evict the least recently used entry;
* **disk** — an optional JSON file (``path``) holding every entry ever
  stored.  Lookups that miss memory fall through to disk and promote
  the entry back into the LRU tier, so a restarted server (or a
  sibling process pointed at the same file) starts warm.  Writes
  re-read the file and merge before replacing it, so sequential
  writers never destroy each other's entries; truly *concurrent*
  writers remain last-merge-wins within the race window (a locking or
  sqlite tier is the ROADMAP follow-up for real multi-writer fleets).

Invalidation is by *construction*: the registry epoch is part of the
key, so entries recorded under drifted service profiles are simply
never addressed again.  :meth:`PlanCache.prune` removes them from the
disk file when housekeeping is wanted.

Cost model of the disk tier: every ``store`` rewrites the whole file
(O(entries) per miss) — the deliberate price of per-store durability
at this deployment's scale (tens to hundreds of distinct plan keys).
A fleet caching orders of magnitude more plans wants the ROADMAP's
sqlite/locking follow-up, not a bigger JSON file.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.plans.spec import PlanSpec

#: Marks entries written by this cache format.
_FORMAT_VERSION = 1


@dataclass(frozen=True)
class CachedPlan:
    """One plan-cache hit: the decisions plus where they were found."""

    spec: PlanSpec
    cost: float
    metric: str
    epoch: str
    tier: str  # "memory" | "disk"


@dataclass
class PlanCacheStats:
    """Hit/miss accounting across the cache's lifetime."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    @property
    def hits(self) -> int:
        """Lookups answered from either tier."""
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        """Total lookups seen."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        """JSON-serializable snapshot."""
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class _Entry:
    spec_json: str
    cost: float
    metric: str
    epoch: str

    def to_dict(self) -> dict:
        return {
            "spec": self.spec_json,
            "cost": self.cost,
            "metric": self.metric,
            "epoch": self.epoch,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "_Entry":
        return cls(
            spec_json=data["spec"],
            cost=float(data["cost"]),
            metric=data["metric"],
            epoch=data["epoch"],
        )


@dataclass
class PlanCache:
    """LRU + optional-disk store of optimized plan specifications.

    ``capacity=0`` disables the memory tier entirely (every lookup
    misses unless a disk path is given) — the serving bench uses this
    as its no-plan-cache baseline.
    """

    path: Path | str | None = None
    capacity: int = 128
    stats: PlanCacheStats = field(default_factory=PlanCacheStats)

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {self.capacity}")
        self.path = Path(self.path) if self.path is not None else None
        self._memory: OrderedDict[str, _Entry] = OrderedDict()
        self._disk: dict[str, _Entry] = {}
        if self.path is not None and self.path.exists():
            self._disk = self._load(self.path)

    # -- lookup/store ----------------------------------------------------

    def lookup(self, key: str) -> CachedPlan | None:
        """The cached plan under *key*, or None; promotes disk hits."""
        entry = self._memory.get(key)
        if entry is not None:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            return self._hit(entry, "memory")
        entry = self._disk.get(key)
        if entry is not None:
            self.stats.disk_hits += 1
            self._admit(key, entry)
            return self._hit(entry, "disk")
        self.stats.misses += 1
        return None

    def store(self, key: str, spec: PlanSpec, cost: float, metric: str,
              epoch: str) -> None:
        """Record an optimized plan under *key* in both tiers."""
        entry = _Entry(
            spec_json=spec.to_json(), cost=cost, metric=metric, epoch=epoch
        )
        self.stats.stores += 1
        self._admit(key, entry)
        if self.path is not None:
            self._disk[key] = entry
            self._flush(merge=True)

    def _hit(self, entry: _Entry, tier: str) -> CachedPlan:
        return CachedPlan(
            spec=PlanSpec.from_json(entry.spec_json),
            cost=entry.cost,
            metric=entry.metric,
            epoch=entry.epoch,
            tier=tier,
        )

    def _admit(self, key: str, entry: _Entry) -> None:
        if self.capacity == 0:
            return
        self._memory[key] = entry
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    # -- housekeeping ----------------------------------------------------

    def prune(self, epoch: str) -> int:
        """Drop every entry not recorded under *epoch*; returns count.

        Purely housekeeping: stale entries are unreachable anyway
        because the epoch participates in the key.
        """
        stale_memory = [
            key for key, entry in self._memory.items() if entry.epoch != epoch
        ]
        for key in stale_memory:
            del self._memory[key]
        stale_disk = [
            key for key, entry in self._disk.items() if entry.epoch != epoch
        ]
        for key in stale_disk:
            del self._disk[key]
        if stale_disk and self.path is not None:
            self._flush()
        return len(stale_memory) + len(set(stale_disk) - set(stale_memory))

    def clear(self) -> None:
        """Drop both tiers (and the disk file's entries)."""
        self._memory.clear()
        if self._disk:
            self._disk.clear()
            if self.path is not None:
                self._flush()

    @property
    def memory_entries(self) -> int:
        """Entries currently resident in the LRU tier."""
        return len(self._memory)

    @property
    def disk_entries(self) -> int:
        """Entries currently resident in the disk tier."""
        return len(self._disk)

    # -- disk format -----------------------------------------------------

    def _flush(self, merge: bool = False) -> None:
        """Atomically rewrite the disk file from the disk-tier dict.

        With ``merge``, entries another process persisted since our
        last read are folded in first (our own keys win), so
        sequentially interleaved writers accumulate instead of
        clobbering.  ``prune``/``clear`` flush without merging —
        removal must not resurrect what was just dropped.
        """
        assert self.path is not None
        if merge and self.path.exists():
            for key, entry in self._load(self.path).items():
                self._disk.setdefault(key, entry)
        payload = {
            "version": _FORMAT_VERSION,
            "entries": {
                key: entry.to_dict() for key, entry in self._disk.items()
            },
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        handle, temp_name = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(payload, stream, sort_keys=True)
            os.replace(temp_name, self.path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    @staticmethod
    def _load(path: Path) -> dict[str, _Entry]:
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return {}
        if payload.get("version") != _FORMAT_VERSION:
            return {}
        entries = payload.get("entries", {})
        loaded: dict[str, _Entry] = {}
        for key, data in entries.items():
            try:
                loaded[key] = _Entry.from_dict(data)
            except (KeyError, TypeError, ValueError):
                continue  # skip individually corrupt rows
        return loaded
