"""The two-tier persistent plan cache.

Optimized plans are pure functions of the plan-cache key (normalized
query fingerprint + registry content epoch + metric + ``k`` + cache
setting, see :mod:`repro.serving.fingerprint`), so they can be reused
across requests, sessions, and *processes*.  The cache stores the
serializable :class:`~repro.plans.spec.PlanSpec` — the three optimizer
decisions (patterns, precedence, fetches) — plus the plan's estimated
cost, never live plan objects: every hit rebuilds a fresh plan against
the caller's registry, so no two sessions ever share a mutable plan
(fetching factors grow in place during progressive execution).

Two tiers:

* **memory** — an LRU dict bounded by ``capacity``; hits refresh
  recency, stores beyond capacity evict the least recently used entry;
* **disk** — an optional persistent store (``path``) holding every
  entry ever admitted.  Lookups that miss memory fall through to disk
  and promote the entry back into the LRU tier, so a restarted server
  (or a sibling process pointed at the same path) starts warm.

The disk tier has two interchangeable backends with identical
lookup/store/stats semantics (a seeded differential in
``tests/test_serving.py`` pins them bit-identical):

* ``backend="sqlite"`` — the concurrent default for new deployments:
  a WAL-mode SQLite database (:mod:`repro.serving.sqlite_cache`) safe
  under many threads *and* many processes; epoch pruning is one SQL
  ``DELETE``.  ``migrate_json`` imports an existing JSON-tier file on
  open (existing database rows win), so a fleet can move to SQLite
  without losing its accumulated plans.
* ``backend="json"`` — the original whole-file format, kept as the
  migration/read path and as the differential oracle.  Writes re-read
  the file and merge before replacing it, so *sequential* writers
  never destroy each other's entries; truly concurrent writers remain
  last-merge-wins within the race window — use the SQLite backend for
  real multi-writer fleets.

``backend="auto"`` (the default) picks by path suffix: ``.sqlite`` /
``.sqlite3`` / ``.db`` get SQLite, anything else stays JSON.

All cache state (LRU order, stats counters, tenant quotas) is guarded
by one internal lock, so ``lookup``/``store``/``prune`` are safe to
call from any number of serving threads; per-*key* single-flight (one
optimizer run per concurrent miss) is layered above this lock by
:meth:`repro.serving.service.QueryService._resolve_plan`.

**Per-tenant admission quotas**: ``tenant_quota`` bounds how many
distinct keys any one tenant may admit through :meth:`PlanCache.store`
(callers tag stores with a tenant id — the serving layer uses the
registry epoch, i.e. one quota per registry content version).  A
rejected store is pure cost, never wrongness: the plan simply stays
uncached and the next submission re-optimizes.  Rejections are counted
in ``stats.quota_rejections``.  Quota accounting is per process — a
restart starts fresh, matching its purpose (protecting a shared store
from one runaway tenant flooding it within a serving lifetime).

Invalidation is by *construction*: the registry epoch is part of the
key, so entries recorded under drifted service profiles are simply
never addressed again.  :meth:`PlanCache.prune` removes them from the
disk tier when housekeeping is wanted.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.plans.spec import PlanSpec
from repro.serving.sqlite_cache import PlanRow, SQLiteDiskTier

#: Marks entries written by the JSON disk format.
_FORMAT_VERSION = 1

#: Path suffixes that ``backend="auto"`` routes to the SQLite tier.
_SQLITE_SUFFIXES = {".sqlite", ".sqlite3", ".db"}


@dataclass(frozen=True)
class CachedPlan:
    """One plan-cache hit: the decisions plus where they were found."""

    spec: PlanSpec
    cost: float
    metric: str
    epoch: str
    tier: str  # "memory" | "disk"


@dataclass
class PlanCacheStats:
    """Hit/miss accounting across the cache's lifetime."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    quota_rejections: int = 0

    @property
    def hits(self) -> int:
        """Lookups answered from either tier."""
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        """Total lookups seen."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        """JSON-serializable snapshot."""
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "quota_rejections": self.quota_rejections,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class _Entry:
    spec_json: str
    cost: float
    metric: str
    epoch: str

    def to_dict(self) -> dict:
        return {
            "spec": self.spec_json,
            "cost": self.cost,
            "metric": self.metric,
            "epoch": self.epoch,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "_Entry":
        return cls(
            spec_json=data["spec"],
            cost=float(data["cost"]),
            metric=data["metric"],
            epoch=data["epoch"],
        )


class _JsonDiskTier:
    """The original merge-on-flush JSON file, as a disk-tier backend.

    Kept bit-compatible with the pre-SQLite format so existing cache
    files keep working, and exposed through the same row-tuple
    interface as :class:`~repro.serving.sqlite_cache.SQLiteDiskTier`
    so the two can be compared differentially.
    """

    def __init__(self, path: Path) -> None:
        self.path = path
        self._entries: dict[str, _Entry] = {}
        if path.exists():
            self._entries = _load_json_entries(path)

    def get(self, key: str) -> PlanRow | None:
        entry = self._entries.get(key)
        if entry is None:
            return None
        return (entry.spec_json, entry.cost, entry.metric, entry.epoch)

    def put(self, key: str, spec_json: str, cost: float, metric: str,
            epoch: str) -> None:
        self._entries[key] = _Entry(
            spec_json=spec_json, cost=cost, metric=metric, epoch=epoch
        )
        self._flush(merge=True)

    def prune(self, epoch: str) -> tuple[str, ...]:
        stale = tuple(
            key
            for key, entry in self._entries.items()
            if entry.epoch != epoch
        )
        for key in stale:
            del self._entries[key]
        if stale:
            self._flush()
        return stale

    def clear(self) -> None:
        if self._entries:
            self._entries.clear()
            self._flush()

    def keys(self) -> tuple[str, ...]:
        return tuple(sorted(self._entries))

    def __len__(self) -> int:
        return len(self._entries)

    def close(self) -> None:
        return None

    def _flush(self, merge: bool = False) -> None:
        """Atomically rewrite the file from the entry dict.

        With ``merge``, entries another process persisted since our
        last read are folded in first (our own keys win), so
        sequentially interleaved writers accumulate instead of
        clobbering.  ``prune``/``clear`` flush without merging —
        removal must not resurrect what was just dropped.
        """
        if merge and self.path.exists():
            for key, entry in _load_json_entries(self.path).items():
                self._entries.setdefault(key, entry)
        payload = {
            "version": _FORMAT_VERSION,
            "entries": {
                key: entry.to_dict() for key, entry in self._entries.items()
            },
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        handle, temp_name = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(payload, stream, sort_keys=True)
            os.replace(temp_name, self.path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise


def _load_json_entries(path: Path) -> dict[str, _Entry]:
    """Entries of a JSON-tier file (empty on corrupt/foreign files)."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return {}
    if payload.get("version") != _FORMAT_VERSION:
        return {}
    entries = payload.get("entries", {})
    loaded: dict[str, _Entry] = {}
    for key, data in entries.items():
        try:
            loaded[key] = _Entry.from_dict(data)
        except (KeyError, TypeError, ValueError):
            continue  # skip individually corrupt rows
    return loaded


@dataclass
class PlanCache:
    """LRU + optional-disk store of optimized plan specifications.

    ``capacity=0`` disables the memory tier entirely (every lookup
    misses unless a disk path is given) — the serving bench uses this
    as its no-plan-cache baseline.  See the module docstring for the
    ``backend`` choices, ``tenant_quota``, and the thread-safety
    contract.
    """

    path: Path | str | None = None
    capacity: int = 128
    backend: str = "auto"  # "auto" | "json" | "sqlite"
    busy_timeout_ms: int = 30_000
    tenant_quota: int | None = None
    migrate_json: Path | str | None = None
    stats: PlanCacheStats = field(default_factory=PlanCacheStats)

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {self.capacity}")
        if self.backend not in ("auto", "json", "sqlite"):
            raise ValueError(
                f"backend must be auto|json|sqlite, got {self.backend!r}"
            )
        if self.tenant_quota is not None and self.tenant_quota < 0:
            raise ValueError(
                f"tenant_quota must be >= 0 or None, got {self.tenant_quota}"
            )
        self.path = Path(self.path) if self.path is not None else None
        self._lock = threading.RLock()
        self._memory: OrderedDict[str, _Entry] = OrderedDict()
        self._tenant_keys: dict[str, set[str]] = {}
        self._tier: _JsonDiskTier | SQLiteDiskTier | None = None
        if self.path is not None:
            if self._resolved_backend() == "sqlite":
                self._tier = SQLiteDiskTier(
                    self.path, busy_timeout_ms=self.busy_timeout_ms
                )
                self._migrate_from_json()
            else:
                self._tier = _JsonDiskTier(self.path)

    def _resolved_backend(self) -> str | None:
        """The disk backend actually in use (None without a path)."""
        if self.path is None:
            return None
        if self.backend != "auto":
            return self.backend
        return (
            "sqlite"
            if Path(self.path).suffix.lower() in _SQLITE_SUFFIXES
            else "json"
        )

    @property
    def backend_name(self) -> str | None:
        """The resolved disk backend: "json", "sqlite", or None."""
        return self._resolved_backend()

    def _migrate_from_json(self) -> None:
        """Fold a JSON-tier file's entries into the SQLite database."""
        if self.migrate_json is None:
            return
        source = Path(self.migrate_json)
        if not source.exists():
            return
        assert isinstance(self._tier, SQLiteDiskTier)
        self._tier.seed(
            {
                key: (entry.spec_json, entry.cost, entry.metric, entry.epoch)
                for key, entry in _load_json_entries(source).items()
            }
        )

    # -- lookup/store ----------------------------------------------------

    def lookup(self, key: str) -> CachedPlan | None:
        """The cached plan under *key*, or None; promotes disk hits."""
        with self._lock:
            entry = self._memory.get(key)
            if entry is not None:
                self._memory.move_to_end(key)
                self.stats.memory_hits += 1
                return self._hit(entry, "memory")
            if self._tier is not None:
                row = self._tier.get(key)
                if row is not None:
                    entry = _Entry(*row)
                    self.stats.disk_hits += 1
                    self._admit(key, entry)
                    return self._hit(entry, "disk")
            self.stats.misses += 1
            return None

    def store(self, key: str, spec: PlanSpec, cost: float, metric: str,
              epoch: str, tenant: str | None = None) -> bool:
        """Record an optimized plan under *key* in both tiers.

        Returns False (and admits nothing, in either tier) when
        *tenant* has exhausted its ``tenant_quota`` of distinct keys —
        the caller's plan still executes, it just is not cached.
        """
        entry = _Entry(
            spec_json=spec.to_json(), cost=cost, metric=metric, epoch=epoch
        )
        with self._lock:
            if not self._admit_tenant(tenant, key):
                self.stats.quota_rejections += 1
                return False
            self.stats.stores += 1
            self._admit(key, entry)
            if self._tier is not None:
                self._tier.put(
                    key, entry.spec_json, entry.cost, entry.metric, entry.epoch
                )
            return True

    def _admit_tenant(self, tenant: str | None, key: str) -> bool:
        """Quota check: may *tenant* store (another) distinct key?"""
        if tenant is None or self.tenant_quota is None:
            return True
        keys = self._tenant_keys.setdefault(tenant, set())
        if key in keys:
            return True  # refreshing an admitted key is free
        if len(keys) >= self.tenant_quota:
            return False
        keys.add(key)
        return True

    def _hit(self, entry: _Entry, tier: str) -> CachedPlan:
        return CachedPlan(
            spec=PlanSpec.from_json(entry.spec_json),
            cost=entry.cost,
            metric=entry.metric,
            epoch=entry.epoch,
            tier=tier,
        )

    def _admit(self, key: str, entry: _Entry) -> None:
        if self.capacity == 0:
            return
        self._memory[key] = entry
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    # -- housekeeping ----------------------------------------------------

    def prune(self, epoch: str) -> int:
        """Drop every entry not recorded under *epoch*; returns count.

        Purely housekeeping: stale entries are unreachable anyway
        because the epoch participates in the key.  On the SQLite
        backend this is a single indexed ``DELETE``.
        """
        with self._lock:
            stale_memory = [
                key
                for key, entry in self._memory.items()
                if entry.epoch != epoch
            ]
            for key in stale_memory:
                del self._memory[key]
            stale_disk: tuple[str, ...] = ()
            if self._tier is not None:
                stale_disk = self._tier.prune(epoch)
            return len(stale_memory) + len(
                set(stale_disk) - set(stale_memory)
            )

    def clear(self) -> None:
        """Drop both tiers (and the persistent entries) and quotas."""
        with self._lock:
            self._memory.clear()
            self._tenant_keys.clear()
            if self._tier is not None:
                self._tier.clear()

    def close(self) -> None:
        """Release disk-tier resources (SQLite connections)."""
        with self._lock:
            if self._tier is not None:
                self._tier.close()

    @property
    def memory_entries(self) -> int:
        """Entries currently resident in the LRU tier."""
        with self._lock:
            return len(self._memory)

    @property
    def disk_entries(self) -> int:
        """Entries currently resident in the disk tier."""
        with self._lock:
            return len(self._tier) if self._tier is not None else 0
