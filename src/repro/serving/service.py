"""The multi-tenant query-serving facade.

:class:`QueryService` turns the one-shot optimize-then-execute
pipeline into a server: ``submit(query, k)`` answers with the top-k
rows plus a session id, ``ask_for_more(session_id)`` continues a
suspended session, and repeated traffic is amortized three ways —

* the **plan cache** (:mod:`repro.serving.plan_cache`) skips the
  branch-and-bound search entirely when the normalized query
  fingerprint + registry epoch + (metric, k, cache setting) were seen
  before, in this process or a previous one;
* the **shared service cache** — one
  :class:`~repro.execution.cache.LogicalCache` spanning *all* requests
  and sessions, so a page fetched for one tenant answers every later
  overlapping call for free;
* **progressive sessions** (:mod:`repro.serving.sessions`) — each
  submission leaves a suspended stream behind, so asking for more
  resumes instead of re-optimizing or re-executing.

Responses are plain data (:class:`QueryResponse`,
``to_dict``/``to_json``): projected rows, composed ranks, execution
statistics, and *cache provenance* — whether the plan came from the
optimizer, the memory tier, or the disk tier.

**Equivalence contract**: a plan-cache hit rebuilds the plan from its
stored :class:`~repro.plans.spec.PlanSpec` and executes it against the
shared caches; the produced rows, ranks, and order are bit-identical
to a cold optimize+execute on a fresh service (the hypothesis suite in
``tests/test_serving.py`` enforces this differentially).

**Concurrency contract**: one :class:`QueryService` may be driven by
any number of client threads.  Shared state is guarded piecewise —
the plan cache and its stats behind the cache's internal lock, the
session registry behind the manager's lock, the shared service cache
behind a :class:`~repro.execution.cache.ThreadSafeCache` wrapper, and
the serving counters behind a stats lock — and plan resolution is
**single-flight per key**: concurrent submissions of the same
(query, context) serialize on a per-key mutex held across the whole
lookup → optimize → store critical section, so the optimizer runs at
most once per key per race and hit/miss accounting matches a
sequential replay exactly.  Answers need no such argument: they are a
pure function of (registry content, query, k) — logical caches change
call counts, never tuples — so any interleaving is bit-identical to
the sequential schedule (``tests/test_serving_concurrency.py`` and
the serving bench's worker sweep pin both properties).  The lock
order is plan cache → sessions → service cache; no code path acquires
in the opposite direction, so the layer cannot deadlock (see
``docs/ARCHITECTURE.md``, "Concurrent serving").
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.costs.base import CostMetric
from repro.costs.time_cost import ExecutionTimeMetric
from repro.execution.adaptive import AdaptiveExecutor
from repro.execution.cache import (
    CacheSetting,
    LogicalCache,
    OptimalCache,
    ThreadSafeCache,
    make_cache,
)
from repro.execution.engine import ExecutionMode, ExecutionResult
from repro.execution.parallel import ParallelExecutor
from repro.execution.progressive import ProgressiveExecutor, ProgressiveRound
from repro.execution.resilience import ResilienceConfig
from repro.model.parser import parse_query
from repro.model.query import ConjunctiveQuery
from repro.optimizer.optimizer import Optimizer, OptimizerConfig
from repro.plans.dag import QueryPlan
from repro.plans.spec import PlanSpec
from repro.serving.breaker import AdaptivePolicy, BreakerState, CircuitBreaker
from repro.serving.fingerprint import (
    optimizer_config_token,
    plan_cache_key,
    query_fingerprint,
)
from repro.serving.plan_cache import PlanCache
from repro.serving.sessions import SessionError, SessionManager
from repro.services.registry import AdjustedRegistry, ServiceRegistry


@dataclass(frozen=True)
class QueryResponse:
    """One JSON-serializable answer to ``submit``/``ask_for_more``.

    ``rows`` are the projected head tuples in composed rank order;
    ``rank_keys`` the aggregated rank of each row; ``ranks`` the
    per-row provenance (``(node_id, service rank index)`` pairs).
    ``provenance`` records where the plan came from: ``"optimized"``
    (cache miss, branch-and-bound ran), ``"memory"`` / ``"disk"``
    (plan-cache tiers), or ``"session"`` (a resumed continuation —
    no plan lookup at all).

    ``partial`` is the partial-result certificate of a service running
    with ``ResilienceConfig(partial_results=True)``: which service
    units were dropped by exhausted retries and which blocks produced
    each answer (see
    :class:`~repro.execution.resilience.PartialResultCertificate`).
    ``None`` when partial mode is off; a dict with ``"partial": False``
    and no drops is a completeness witness.

    ``row_provenance`` is the opt-in per-row audit trail
    (``QueryService(row_provenance=True)``): one record list per
    answer row, each record a dict with ``service`` (service name),
    ``input`` (the ``[pattern code, [[position, value], ...]]`` cache
    key the call was made under), ``page`` (the 0-based page index the
    tuple came from), and ``epoch`` (the registry content epoch the
    answer was computed against).  ``None`` when disabled — and the
    key is then omitted from :meth:`to_dict`/:meth:`to_json` entirely,
    so disabled responses are byte-identical to pre-provenance ones.
    """

    session_id: str
    k: int
    columns: tuple[str, ...]
    rows: tuple[tuple, ...]
    rank_keys: tuple[int, ...]
    ranks: tuple[tuple[tuple[str, int], ...], ...]
    complete: bool
    provenance: str
    #: Estimated cost of the served plan; None for session resumes
    #: (no plan was looked up or costed).
    plan_cost: float | None
    metric: str
    fingerprint: str
    epoch: str
    stats: dict
    partial: dict | None = None
    row_provenance: tuple[tuple[dict, ...], ...] | None = None

    def to_dict(self) -> dict:
        """Plain-data rendering (everything JSON-serializable)."""
        rendered = {
            "session_id": self.session_id,
            "k": self.k,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "rank_keys": list(self.rank_keys),
            "ranks": [
                [[node_id, rank] for node_id, rank in row_ranks]
                for row_ranks in self.ranks
            ],
            "complete": self.complete,
            "provenance": self.provenance,
            "plan_cost": self.plan_cost,
            "metric": self.metric,
            "fingerprint": self.fingerprint,
            "epoch": self.epoch,
            "stats": self.stats,
            "partial": self.partial,
        }
        # Omitted (not null) when disabled: the rendering of a
        # provenance-off response must not change by a byte.
        if self.row_provenance is not None:
            rendered["row_provenance"] = [
                [dict(record) for record in row_records]
                for row_records in self.row_provenance
            ]
        return rendered

    def to_json(self) -> str:
        """The response as a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True, default=str)


@dataclass
class ServingStats:
    """Request-level accounting for one :class:`QueryService`.

    Mutated only under the service's stats lock; read freely (every
    field is a single int, and snapshots tolerate being one increment
    behind a concurrent request).
    """

    requests: int = 0
    continuations: int = 0
    optimizer_runs: int = 0
    optimizer_annotate_calls: int = 0
    prefetches: int = 0
    #: Mid-run plan splices performed by adaptive executions.
    replans: int = 0

    def to_dict(self) -> dict:
        """JSON-serializable snapshot."""
        return {
            "requests": self.requests,
            "continuations": self.continuations,
            "optimizer_runs": self.optimizer_runs,
            "optimizer_annotate_calls": self.optimizer_annotate_calls,
            "prefetches": self.prefetches,
            "replans": self.replans,
        }


@dataclass
class QueryService:
    """Serves queries over one registry with shared caches + sessions.

    ``plan_cache`` may be shared between several services (a fleet of
    tenants over different registries): keys embed each registry's
    content epoch, so entries never cross tenants, and per-tenant
    store quotas (``PlanCache(tenant_quota=...)``) keep one tenant
    from flooding the shared store — this service tags its stores
    with ``tenant_id`` (the registry epoch by default).  ``mode``
    defaults to streamed execution so sessions suspend cheaply; any
    mode works (answers are mode-independent by the engine's
    contract).  All public methods are thread-safe (see the module
    docstring for the locking structure).
    """

    registry: ServiceRegistry
    metric: CostMetric = field(default_factory=ExecutionTimeMetric)
    k_default: int = 10
    mode: ExecutionMode = ExecutionMode.STREAMED
    cache_setting: CacheSetting = CacheSetting.OPTIMAL
    plan_cache: PlanCache = field(default_factory=PlanCache)
    sessions: SessionManager = field(default_factory=SessionManager)
    optimizer_config: OptimizerConfig | None = None
    #: One logical cache across all requests; False gives each session
    #: a private cache (the no-sharing baseline).
    share_service_cache: bool = True
    #: Admission control for the shared service cache: at most this
    #: many cached pages, evicted LRU-first (None: unbounded — fine
    #: for experiments, a leak for a long-lived server).  Eviction can
    #: only cost extra remote calls, never change answers.
    service_cache_capacity: int | None = None
    #: Tenant tag for plan-cache store quotas; None uses the registry
    #: content epoch (one quota bucket per registry content version).
    tenant_id: str | None = None
    #: Retry/hedge/partial-results behavior for every execution this
    #: service runs (:mod:`repro.execution.resilience`); None serves
    #: with the historical fail-fast engine, bit-identically.
    resilience: ResilienceConfig | None = None
    #: Opt-in per-row provenance: responses carry, for every answer
    #: row, the ``(service, input key, page, epoch)`` records of the
    #: service pulls that produced it.  Answer rows, ranks, and order
    #: are unchanged either way (provenance is an audit trail the
    #: engine threads through :class:`~repro.execution.results.Row`);
    #: disabled responses render byte-identically to before.
    row_provenance: bool = False
    #: Opt-in mid-flight adaptivity (:mod:`repro.serving.breaker`):
    #: per-service circuit breakers accumulate observed health across
    #: requests and feed adjusted response times back into plan costs,
    #: executions run under an :class:`~repro.execution.adaptive.
    #: AdaptiveExecutor` that re-plans on latency drift, and open
    #: breakers reroute onto registered sibling services.  None keeps
    #: the static serving path, bit-identically.
    adaptive: AdaptivePolicy | None = None
    #: The breaker instance (auto-created when ``adaptive`` is set);
    #: inject one to share breakers across services or to pin a test
    #: clock.
    breaker: CircuitBreaker | None = None
    stats: ServingStats = field(default_factory=ServingStats)

    def __post_init__(self) -> None:
        if self.adaptive is not None and self.breaker is None:
            self.breaker = CircuitBreaker(self.adaptive.breaker)
        # Adaptive serving needs partial-results accounting (the
        # certificate is where substitutions are recorded) and, when
        # requested, sibling fallback on exhausted units.
        if self.adaptive is None:
            self._exec_resilience = self.resilience
        else:
            base = self.resilience or ResilienceConfig()
            self._exec_resilience = replace(
                base,
                partial_results=True,
                sibling_fallback=(
                    base.sibling_fallback or self.adaptive.sibling_fallback
                ),
            )
        inner: LogicalCache | None = (
            make_cache(self.cache_setting, capacity=self.service_cache_capacity)
            if self.share_service_cache
            else None
        )
        # The shared cache is hit by every serving thread (and by
        # ParallelExecutor workers during prefetch), so it is always
        # lock-wrapped; the wrapper is reused as-is by executors that
        # would otherwise wrap it again.
        self._service_cache: LogicalCache | None = (
            ThreadSafeCache(inner) if inner is not None else None
        )
        self._stats_lock = threading.Lock()
        # Single-flight for plan resolution: one mutex per plan-cache
        # key, mirroring ThreadSafeCache.key_lock.  Bounded by the
        # number of distinct keys this service ever resolves.
        self._plan_locks: dict[str, threading.Lock] = {}
        self._plan_locks_guard = threading.Lock()

    # -- the request surface --------------------------------------------

    def submit(
        self, query: ConjunctiveQuery | str, k: int | None = None
    ) -> QueryResponse:
        """Answer the top-``k`` of *query*, opening a session.

        Accepts a parsed :class:`ConjunctiveQuery` or datalog text.
        The plan is taken from the plan cache when the fingerprint and
        optimization context match; otherwise the optimizer runs and
        its decisions are stored for every later submission.
        """
        if isinstance(query, str):
            query = parse_query(query)
        k = self.k_default if k is None else k
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        with self._stats_lock:
            self.stats.requests += 1
        plan, cost, provenance, fingerprint, epoch, annotate_calls = (
            self._resolve_plan(query, k, registry=self._planning_registry())
        )
        executor = self._make_executor(query, plan, k)
        result = executor.run(k)
        self._feed_breaker(executor.rounds, result)
        replans = getattr(executor, "replans", 0)
        if replans:
            with self._stats_lock:
                self.stats.replans += replans
        session = self.sessions.create(
            query=query, executor=executor, delivered=len(result.rows),
            epoch=epoch,
        )
        return self._respond(
            session.session_id, query, result, k, provenance, cost,
            fingerprint, epoch, annotate_calls, executor.rounds,
            replans=replans,
        )

    def ask_for_more(
        self, session_id: str, additional: int | None = None
    ) -> QueryResponse:
        """Continue a session: *additional* more answers (default k).

        Raises :class:`~repro.serving.sessions.SessionError` when the
        session is unknown, expired, or released — the caller then
        re-submits (which is exactly one plan-cache hit away from the
        continuation it lost).  Concurrent resumes of the *same*
        session serialize on the session's lock (the suspended stream
        is single-consumer); different sessions resume in parallel.
        """
        session = self.sessions.get(session_id)
        with session.lock:
            executor = session.executor
            if executor is None:  # released between get() and here
                raise SessionError(
                    f"session {session_id!r} is unknown, expired, or released"
                )
            with self._stats_lock:
                self.stats.requests += 1
                self.stats.continuations += 1
            additional = self.k_default if additional is None else additional
            rounds_before = len(executor.rounds)
            replans_before = getattr(executor, "replans", 0)
            result = executor.more(additional)
            new_rounds = executor.rounds[rounds_before:]
            self._feed_breaker(new_rounds, result)
            replans = getattr(executor, "replans", 0) - replans_before
            if replans:
                with self._stats_lock:
                    self.stats.replans += replans
            session.delivered = len(result.rows)
            query = session.query
            # The epoch pinned at submit time, NOT the registry's
            # current one: the continuation still executes the plan it
            # was created with, so a mid-session registry update must
            # not relabel its answers as computed under the new epoch.
            return self._respond(
                session_id, query, result, session.delivered, "session",
                None, query_fingerprint(query),
                session.epoch, 0,
                new_rounds,
                replans=replans,
            )

    def prefetch(
        self, query: ConjunctiveQuery | str, k: int | None = None,
        workers: int = 4,
    ) -> dict:
        """Warm the shared service cache for *query* on real threads.

        Plans the query exactly as :meth:`submit` would (so the plan
        cache is warmed too) and runs it on a
        :class:`~repro.execution.parallel.ParallelExecutor` against the
        shared service cache, without resetting the remote services'
        own caches — answers of later submits are unaffected (a logical
        cache only changes how often the remote side is called), they
        just start from a hot cache.  No session is opened and no rows
        are returned; the summary dict reports what the warm-up did.

        With ``share_service_cache=False`` there is no shared state to
        warm, so the warm-up **short-circuits after plan resolution**:
        the plan cache still benefits, but nothing is executed and no
        service is called (``"skipped": True`` in the summary).
        """
        if isinstance(query, str):
            query = parse_query(query)
        k = self.k_default if k is None else k
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        with self._stats_lock:
            self.stats.prefetches += 1
        plan, _, provenance, _, _, _ = self._resolve_plan(query, k)
        if self._service_cache is None:
            return {
                "provenance": provenance,
                "shared": False,
                "skipped": True,
                "workers": 0,
                "wall_time_s": 0.0,
                "service_calls": 0,
                "cache_hits": 0,
                "answers_available": 0,
            }
        executor = ParallelExecutor(
            self.registry,
            cache_setting=self.cache_setting,
            workers=workers,
            resilience=self._exec_resilience,
        )
        result = executor.execute(
            plan,
            tuple(query.head),
            k=k,
            reset_remote_caches=False,
            shared_cache=self._service_cache,
        )
        return {
            "provenance": provenance,
            "shared": True,
            "skipped": False,
            "workers": result.stats.parallel_workers,
            "wall_time_s": round(result.stats.wall_time, 6),
            "service_calls": result.stats.total_calls,
            "cache_hits": result.stats.total_cache_hits,
            "answers_available": len(result.rows),
        }

    def release(self, session_id: str) -> bool:
        """Close a session's continuation state; False when unknown."""
        return self.sessions.release(session_id)

    def snapshot(self) -> dict:
        """JSON-serializable state of the whole serving layer."""
        with self._stats_lock:
            serving = self.stats.to_dict()
        state = {
            "serving": serving,
            "plan_cache": self.plan_cache.stats.to_dict(),
            "sessions": {
                "active": len(self.sessions),
                **self.sessions.stats.to_dict(),
            },
        }
        cache = self._service_cache
        if cache is not None:
            # The shared cache is lock-wrapped; report the *inner*
            # cache so wrapping never silently drops the section.
            inner = cache.inner if isinstance(cache, ThreadSafeCache) else cache
            section: dict = {"type": type(inner).__name__}
            if isinstance(inner, OptimalCache):
                section.update(
                    entries=len(inner),
                    capacity=inner.capacity,
                    evictions=inner.evictions,
                )
            state["service_cache"] = section
        if self.breaker is not None:
            with self._stats_lock:
                state["breaker"] = self.breaker.snapshot()
        return state

    # -- internals -------------------------------------------------------

    def _plan_lock(self, key: str) -> threading.Lock:
        """The single-flight mutex for one plan-cache key."""
        with self._plan_locks_guard:
            lock = self._plan_locks.get(key)
            if lock is None:
                lock = self._plan_locks[key] = threading.Lock()
            return lock

    def _resolve_plan(
        self, query: ConjunctiveQuery, k: int, registry=None
    ) -> tuple:
        """Plan *query* through the shared plan cache (optimize on miss).

        Returns ``(plan, cost, provenance, fingerprint, epoch,
        annotate_calls)`` — the request-independent half of
        :meth:`submit`, shared with :meth:`prefetch`.

        ``registry`` defaults to the service's own; the adaptive path
        passes an :class:`~repro.services.registry.AdjustedRegistry`
        view so plans are costed at breaker-observed response times —
        the view's adjusted content epoch keys those plans separately,
        so they never poison the unadjusted epoch's cache entries.

        The per-key mutex is held across the whole lookup → optimize →
        store window, so of N threads racing a cold key exactly one
        optimizes and stores while the other N-1 block and then hit
        the just-stored entry — ``optimizer_runs`` and plan-cache
        hit/miss/store counts match a sequential replay under any
        schedule.  Plan *building* (spec → fresh plan objects) happens
        outside the mutex: it touches no shared mutable state.
        """
        if registry is None:
            registry = self.registry
        fingerprint = query_fingerprint(query)
        epoch = registry.content_epoch()
        config = replace(
            self.optimizer_config or OptimizerConfig(),
            k=k,
            cache_setting=self.cache_setting,
        )
        key = plan_cache_key(
            fingerprint, epoch, self.metric.name, k,
            self.cache_setting.value, optimizer_config_token(config),
        )
        annotate_calls = 0
        plan = None
        with self._plan_lock(key):
            hit = self.plan_cache.lookup(key)
            if hit is not None:
                spec = hit.spec
                cost = hit.cost
                provenance = hit.tier
            else:
                optimized = Optimizer(
                    registry, self.metric, config
                ).optimize(query)
                plan = optimized.plan
                cost = optimized.cost
                provenance = "optimized"
                annotate_calls = optimized.stats.annotate_calls
                with self._stats_lock:
                    self.stats.optimizer_runs += 1
                    self.stats.optimizer_annotate_calls += annotate_calls
                self.plan_cache.store(
                    key, PlanSpec.from_optimized(optimized), cost,
                    self.metric.name, epoch,
                    tenant=self.tenant_id or epoch,
                )
        if plan is None:
            plan = spec.build(query, registry)
        return plan, cost, provenance, fingerprint, epoch, annotate_calls

    # -- adaptivity ------------------------------------------------------

    def _planning_registry(self):
        """The registry view plans are costed against right now.

        The base registry, except when the breaker holds observed
        response-time overrides for currently *open* services — then
        an :class:`AdjustedRegistry` view raising those services'
        costed response times (and folding the overrides into the
        content epoch).
        """
        if self.breaker is None:
            return self.registry
        overrides = self.breaker.response_time_overrides()
        if not overrides:
            return self.registry
        return AdjustedRegistry(self.registry, overrides)

    def _make_executor(self, query: ConjunctiveQuery, plan: QueryPlan, k: int):
        """The per-submission executor: adaptive when configured."""
        if self.adaptive is None:
            return ProgressiveExecutor(
                registry=self.registry,
                plan=plan,
                head=tuple(query.head),
                mode=self.mode,
                cache_setting=self.cache_setting,
                shared_cache=self._service_cache,
                reset_remote=False,
                resilience=self._exec_resilience,
                row_provenance=self.row_provenance,
            )

        def replan(observed: dict) -> QueryPlan | None:
            # Merge breaker knowledge (cross-request) with this run's
            # drift observations, re-resolve through the plan cache
            # under the adjusted view; the adjusted epoch keys the
            # spliced plan separately.
            merged = dict(self.breaker.response_time_overrides())
            merged.update(observed)
            view = AdjustedRegistry(self.registry, merged)
            new_plan, _, _, _, _, _ = self._resolve_plan(
                query, k, registry=view
            )
            return new_plan

        executor = AdaptiveExecutor(
            registry=self.registry,
            plan=plan,
            head=tuple(query.head),
            mode=self.mode,
            cache_setting=self.cache_setting,
            shared_cache=self._service_cache,
            reset_remote=False,
            resilience=self._exec_resilience,
            row_provenance=self.row_provenance,
            drift=self.adaptive.drift,
            replan=replan,
        )
        self._apply_breaker_routing(executor, plan)
        return executor

    def _apply_breaker_routing(
        self, executor: AdaptiveExecutor, plan: QueryPlan
    ) -> None:
        """Reroute breaker-open services onto healthy siblings up front.

        A unit of an open service would otherwise burn a full retry
        budget before sibling fallback kicks in; pre-substituting
        serves it from the sibling from the first fetch.  Recorded on
        the certificate exactly like a failure-driven substitution.
        """
        if not self.adaptive.sibling_fallback:
            return
        for name in self.breaker.open_services():
            codes = sorted(
                {
                    node.pattern.code
                    for node in plan.service_nodes
                    if node.service_name == name and node.pattern is not None
                }
            )
            if not codes:
                continue
            healthy = [
                sibling
                for sibling in self.registry.siblings(name, tuple(codes))
                if self.breaker.state(sibling) is not BreakerState.OPEN
            ]
            if healthy:
                executor.engine.substitute_service(name, healthy[0])

    def _feed_breaker(
        self, rounds: Sequence[ProgressiveRound], result: ExecutionResult
    ) -> None:
        """Fold one request's observed service health into the breaker.

        Per service: total remote fetches and mean fetch latency over
        the request's rounds (compared against the *default-pattern*
        profiled response time — the profile the service registered
        as its statistical norm), plus whether the service failed the
        request — its units dropped by partial results *or* served by
        a sibling (a substitution is a failure of the original, even
        though the answer survived).  Services the request never
        touched are not reported (no traffic proves nothing).
        """
        if self.breaker is None:
            return
        totals: dict[str, tuple[int, float]] = {}
        for r in rounds:
            if r.stats is None:
                continue
            for name, per_service in r.stats.per_service.items():
                fetches, busy = totals.get(name, (0, 0.0))
                totals[name] = (
                    fetches + per_service.fetches,
                    busy + per_service.busy_time,
                )
        unhealthy: set[str] = set()
        certificate = result.certificate
        if certificate is not None:
            unhealthy = set(certificate.dropped_services) | {
                unit.service for unit in certificate.substituted
            }
        with self._stats_lock:
            for name in sorted(set(totals) | unhealthy):
                fetches, busy = totals.get(name, (0, 0.0))
                self.breaker.record(
                    name,
                    fetches=fetches,
                    mean_latency=busy / fetches if fetches else None,
                    expected=self.registry.profile(name).response_time,
                    dropped=name in unhealthy,
                )

    def _respond(
        self,
        session_id: str,
        query: ConjunctiveQuery,
        result: ExecutionResult,
        k: int,
        provenance: str,
        cost: float | None,
        fingerprint: str,
        epoch: str,
        annotate_calls: int,
        rounds: Sequence[ProgressiveRound],
        replans: int = 0,
    ) -> QueryResponse:
        top = result.table.top(k)
        # A request that grew through several progressive rounds did
        # the work of *all* of them — each round's statistics object
        # is fresh, so totals are summed over the request's rounds,
        # not read off the final result alone.
        round_stats = [r.stats for r in rounds if r.stats is not None]
        stats = {
            "service_calls": sum(s.total_calls for s in round_stats),
            "page_fetches": sum(s.total_fetches for s in round_stats),
            "cache_hits": sum(s.total_cache_hits for s in round_stats),
            "tuples_fetched": sum(
                s.total_tuples_fetched for s in round_stats
            ),
            "elapsed_virtual_s": round(
                sum(s.elapsed for s in round_stats), 6
            ),
            "rounds": len(rounds),
            "annotate_calls": annotate_calls,
            "answers_available": len(result.rows),
            # Resilience-layer trace (all 0 when no config is active):
            # wasted work never enters the per-service accounting above.
            "retries": sum(s.retries for s in round_stats),
            "hedged_pulls": sum(s.hedged_pulls for s in round_stats),
            "hedged_wins": sum(s.hedged_wins for s in round_stats),
            "wasted_fetches": sum(s.wasted_fetches for s in round_stats),
            # Adaptivity trace (0 when adaptive serving is off): plan
            # splices this request performed, and units served by a
            # sibling instead of being dropped.
            "replans": replans,
            "substituted_blocks": max(
                (s.substituted_blocks for s in round_stats), default=0
            ),
        }
        certificate = result.certificate
        row_provenance = (
            tuple(self._provenance_records(row, epoch) for row in top)
            if self.row_provenance
            else None
        )
        return QueryResponse(
            session_id=session_id,
            k=k,
            columns=tuple(variable.name for variable in query.head),
            rows=tuple(row.project(query.head) for row in top),
            rank_keys=tuple(row.rank_key() for row in top),
            ranks=tuple(row.ranks for row in top),
            complete=result.table.complete,
            provenance=provenance,
            plan_cost=cost,
            metric=self.metric.name,
            fingerprint=fingerprint,
            epoch=epoch,
            stats=stats,
            partial=certificate.to_dict() if certificate else None,
            row_provenance=row_provenance,
        )

    @staticmethod
    def _provenance_records(row, epoch: str) -> tuple[tuple[tuple, ...], ...]:
        """One answer row's provenance, JSON-ready and epoch-stamped.

        Each engine record is ``(service, (pattern, ((pos, value),
        ...)), page)``; the rendering flattens the input key into
        nested lists and stamps the registry content epoch the answer
        was computed against, giving the
        ``(service, input key, page index, epoch)`` record format.
        Rendered as sorted key/value pair tuples so the frozen
        response dataclass stays hashable; :meth:`QueryResponse.
        to_dict` turns each record back into a plain dict.
        """
        return tuple(
            (
                ("epoch", epoch),
                (
                    "input",
                    (pattern, tuple((pos, value) for pos, value in bound)),
                ),
                ("page", page),
                ("service", service),
            )
            for service, (pattern, bound), page in row.provenance
        )
