"""SQLite-backed disk tier for the plan cache (WAL mode).

The JSON disk tier rewrites the whole file on every store and merges
on flush, which makes *sequential* sibling writers safe but leaves
truly concurrent writers last-merge-wins within the race window.  This
tier replaces the file rewrite with a real database so N serving
threads (or N processes pointed at the same path) can read and write
plans concurrently:

* ``journal_mode=WAL`` — readers never block the single writer and
  vice versa; exactly what a read-mostly plan cache wants (every
  warm request is a read, only optimizer misses write);
* ``synchronous=NORMAL`` — fsync on WAL checkpoints instead of every
  commit: a lost plan costs one re-optimization, never correctness,
  so durability is traded for store latency deliberately;
* ``busy_timeout`` — concurrent writers queue on SQLite's write lock
  instead of failing with ``database is locked``;
* **per-thread connections** — sqlite3 connections are not safely
  shareable across threads mid-transaction, so each thread lazily
  opens its own connection against the same file (kept in a
  :class:`threading.local`); WAL makes this cheap.

Epoch pruning is a single ``DELETE`` statement rather than a
load-filter-rewrite of the whole store.

The tier speaks plain ``(spec_json, cost, metric, epoch)`` row tuples
so :mod:`repro.serving.plan_cache` can drive the JSON and SQLite
backends through one interface and differential tests can compare
them bit-for-bit.
"""

from __future__ import annotations

import sqlite3
import threading
from pathlib import Path

#: ``PRAGMA user_version`` stamped on databases this tier creates.
_SCHEMA_VERSION = 1

#: One row per cached plan; the key embeds fingerprint + epoch +
#: optimization context (see ``repro.serving.fingerprint``), so
#: ``key`` alone is the primary key and ``epoch`` is denormalized
#: purely to make pruning a single indexed DELETE.
_SCHEMA = """
CREATE TABLE IF NOT EXISTS plans (
    key    TEXT PRIMARY KEY,
    spec   TEXT NOT NULL,
    cost   REAL NOT NULL,
    metric TEXT NOT NULL,
    epoch  TEXT NOT NULL
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS plans_by_epoch ON plans(epoch);
"""

#: A plan-cache disk row: (spec_json, cost, metric, epoch).
PlanRow = tuple[str, float, str, str]


class SQLiteDiskTier:
    """WAL-mode SQLite store of plan-cache entries, one row per key.

    Thread-safe by construction: every mutating statement is a single
    autocommit SQL statement, reads and writes go through per-thread
    connections, and cross-connection contention is absorbed by the
    busy timeout.  A corrupt or foreign file is discarded and
    recreated empty — the same "never let a bad cache file take the
    server down" stance as the JSON tier.
    """

    def __init__(self, path: Path | str, busy_timeout_ms: int = 30_000) -> None:
        if busy_timeout_ms < 0:
            raise ValueError(
                f"busy_timeout_ms must be >= 0, got {busy_timeout_ms}"
            )
        self.path = Path(path)
        self.busy_timeout_ms = busy_timeout_ms
        self._local = threading.local()
        self._connections: list[sqlite3.Connection] = []
        self._registry_lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._connection()
        except sqlite3.DatabaseError:
            self._discard_damaged_file()
            self._connection()

    # -- connections -----------------------------------------------------

    def _connection(self) -> sqlite3.Connection:
        """This thread's connection, opened (and schema'd) on demand."""
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            return connection
        # isolation_level=None puts the connection in autocommit mode:
        # each statement is its own transaction, so a store is atomic
        # and never holds the write lock across Python code.
        connection = sqlite3.connect(
            self.path,
            timeout=self.busy_timeout_ms / 1000.0,
            isolation_level=None,
            check_same_thread=False,  # used per-thread; closed centrally
        )
        try:
            connection.execute(f"PRAGMA busy_timeout={int(self.busy_timeout_ms)}")
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
            version = connection.execute("PRAGMA user_version").fetchone()[0]
            if version not in (0, _SCHEMA_VERSION):
                raise sqlite3.DatabaseError(
                    f"unknown plan-cache schema version {version}"
                )
            connection.executescript(_SCHEMA)
            if version == 0:
                connection.execute(f"PRAGMA user_version={_SCHEMA_VERSION}")
        except BaseException:
            connection.close()
            raise
        self._local.connection = connection
        with self._registry_lock:
            self._connections.append(connection)
        return connection

    def _discard_damaged_file(self) -> None:
        """Drop a corrupt/foreign database (and its WAL sidecars)."""
        self._local.connection = None
        with self._registry_lock:
            for connection in self._connections:
                try:
                    connection.close()
                except sqlite3.Error:
                    pass
            self._connections.clear()
        for suffix in ("", "-wal", "-shm"):
            try:
                Path(f"{self.path}{suffix}").unlink()
            except OSError:
                pass

    # -- the tier interface ----------------------------------------------

    def get(self, key: str) -> PlanRow | None:
        """The stored row under *key*, or None."""
        row = self._connection().execute(
            "SELECT spec, cost, metric, epoch FROM plans WHERE key = ?",
            (key,),
        ).fetchone()
        if row is None:
            return None
        return (row[0], float(row[1]), row[2], row[3])

    def put(self, key: str, spec_json: str, cost: float, metric: str,
            epoch: str) -> None:
        """Insert or overwrite the row under *key* (one atomic statement)."""
        self._connection().execute(
            "INSERT INTO plans(key, spec, cost, metric, epoch)"
            " VALUES (?, ?, ?, ?, ?)"
            " ON CONFLICT(key) DO UPDATE SET"
            " spec=excluded.spec, cost=excluded.cost,"
            " metric=excluded.metric, epoch=excluded.epoch",
            (key, spec_json, cost, metric, epoch),
        )

    def seed(self, rows: dict[str, PlanRow]) -> int:
        """Import *rows* without overwriting existing keys; returns count.

        The migration path from a JSON-tier file: entries already in
        the database win (they may be newer than the file being
        imported), everything else is folded in within one
        transaction.
        """
        if not rows:
            return 0
        connection = self._connection()
        before = len(self)
        connection.execute("BEGIN IMMEDIATE")
        try:
            connection.executemany(
                "INSERT OR IGNORE INTO plans(key, spec, cost, metric, epoch)"
                " VALUES (?, ?, ?, ?, ?)",
                [
                    (key, spec, cost, metric, epoch)
                    for key, (spec, cost, metric, epoch) in rows.items()
                ],
            )
            connection.execute("COMMIT")
        except BaseException:
            connection.execute("ROLLBACK")
            raise
        return len(self) - before

    def prune(self, epoch: str) -> tuple[str, ...]:
        """Delete every row not stored under *epoch*; returns their keys."""
        connection = self._connection()
        stale = tuple(
            row[0]
            for row in connection.execute(
                "SELECT key FROM plans WHERE epoch != ?", (epoch,)
            )
        )
        if stale:
            connection.execute("DELETE FROM plans WHERE epoch != ?", (epoch,))
        return stale

    def clear(self) -> None:
        """Delete every row."""
        self._connection().execute("DELETE FROM plans")

    def keys(self) -> tuple[str, ...]:
        """Every stored key, sorted (for tests and differentials)."""
        return tuple(
            row[0]
            for row in self._connection().execute(
                "SELECT key FROM plans ORDER BY key"
            )
        )

    def __len__(self) -> int:
        return self._connection().execute(
            "SELECT COUNT(*) FROM plans"
        ).fetchone()[0]

    def close(self) -> None:
        """Checkpoint the WAL and close every connection ever opened."""
        try:
            self._connection().execute("PRAGMA wal_checkpoint(TRUNCATE)")
        except sqlite3.Error:
            pass
        self._local.connection = None
        with self._registry_lock:
            for connection in self._connections:
                try:
                    connection.close()
                except sqlite3.Error:
                    pass
            self._connections.clear()
