"""Progressive sessions: suspended streams held between requests.

A submission answers with its top-k *and* leaves a continuation
behind: the :class:`~repro.execution.progressive.ProgressiveExecutor`
(holding the suspended :class:`~repro.execution.joins.JoinStream` and
its lazy service cursors) can produce more answers without
re-optimizing or re-executing.  The :class:`SessionManager` is the
server-side registry of those continuations.

Continuations pin cursor state (fetched pages, suspended walks), so
they cannot be kept forever; the manager bounds them two ways:

* **capacity** — at most ``capacity`` live sessions; creating one more
  evicts the least recently *touched* session first;
* **TTL** — a session untouched for longer than ``ttl`` seconds is
  expired lazily (on any create/get/sweep).

Releases are deterministic: :meth:`Session.close` drops the executor
reference immediately (no finalizer involvement), so the suspended
stream, its cursors, and their fetched pages become collectable the
moment the session ends, and a closed session can never resume.  The
clock is injectable, so tests drive TTL expiry without sleeping.

**Thread safety.**  The manager's registry (the session dict, the id
counter, the lifecycle stats) is guarded by one internal lock, so
create/get/release/sweep can race freely across serving threads.  The
*continuation itself* is not shareable: a ``ProgressiveExecutor``
resume mutates cursor state, so each :class:`Session` carries its own
``lock`` and the serving layer holds it across a resume — two
``ask_for_more`` calls on the same session serialize, while resumes of
different sessions proceed in parallel.  A release that races with an
in-flight resume linearizes after it: the resume completes on its
local executor reference, and the session is gone afterwards.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.execution.progressive import ProgressiveExecutor
from repro.model.query import ConjunctiveQuery


class SessionError(KeyError):
    """Raised for unknown, expired, or released session ids."""


@dataclass
class SessionStats:
    """Lifecycle accounting across the manager's lifetime."""

    created: int = 0
    expired: int = 0
    evicted: int = 0
    released: int = 0

    def to_dict(self) -> dict:
        """JSON-serializable snapshot."""
        return {
            "created": self.created,
            "expired": self.expired,
            "evicted": self.evicted,
            "released": self.released,
        }


@dataclass
class Session:
    """One suspended progressive query with its continuation state."""

    session_id: str
    query: ConjunctiveQuery
    executor: ProgressiveExecutor | None
    created_at: float
    touched_at: float
    delivered: int = 0
    #: The registry content epoch the session's plan was resolved
    #: under.  Resumed responses are stamped with *this* epoch, not the
    #: registry's current one: the continuation keeps executing the
    #: plan (and the suspended stream) of submit time, so a mid-session
    #: registry update must not relabel its answers as fresh.
    epoch: str = ""
    #: Serializes resumes of this one continuation (see module doc).
    lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @property
    def closed(self) -> bool:
        """True once the continuation state has been released."""
        return self.executor is None

    def close(self) -> None:
        """Release the continuation state (stream, cursors, cache refs)."""
        self.executor = None


@dataclass
class SessionManager:
    """Holds live sessions with TTL + capacity eviction."""

    capacity: int = 64
    ttl: float | None = 600.0
    clock: Callable[[], float] = time.monotonic
    stats: SessionStats = field(default_factory=SessionStats)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        if self.ttl is not None and self.ttl <= 0:
            raise ValueError(f"ttl must be positive, got {self.ttl}")
        self._sessions: dict[str, Session] = {}
        self._counter = 0
        # Re-entrant: create/get call sweep/active_ids internally.
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    @property
    def active_ids(self) -> tuple[str, ...]:
        """Ids of live sessions, least recently touched first."""
        with self._lock:
            ordered = sorted(
                self._sessions.values(),
                key=lambda s: (s.touched_at, s.session_id),
            )
            return tuple(session.session_id for session in ordered)

    def create(
        self, query: ConjunctiveQuery, executor: ProgressiveExecutor,
        delivered: int = 0, epoch: str = "",
    ) -> Session:
        """Register a new session, evicting to stay within capacity."""
        with self._lock:
            self.sweep()
            while len(self._sessions) >= self.capacity:
                oldest = self.active_ids[0]
                self._sessions.pop(oldest).close()
                self.stats.evicted += 1
            self._counter += 1
            now = self.clock()
            session = Session(
                session_id=f"s{self._counter:06d}",
                query=query,
                executor=executor,
                created_at=now,
                touched_at=now,
                delivered=delivered,
                epoch=epoch,
            )
            self._sessions[session.session_id] = session
            self.stats.created += 1
            return session

    def get(self, session_id: str) -> Session:
        """The live session *session_id*, touched; raises when gone."""
        with self._lock:
            self.sweep()
            session = self._sessions.get(session_id)
            if session is None:
                raise SessionError(
                    f"session {session_id!r} is unknown, expired, or released"
                )
            session.touched_at = self.clock()
            return session

    def release(self, session_id: str) -> bool:
        """Explicitly close and drop a session; False when unknown."""
        with self._lock:
            session = self._sessions.pop(session_id, None)
            if session is None:
                return False
            session.close()
            self.stats.released += 1
            return True

    def sweep(self) -> tuple[str, ...]:
        """Expire every session idle beyond the TTL; returns their ids."""
        with self._lock:
            if self.ttl is None:
                return ()
            deadline = self.clock() - self.ttl
            expired = [
                session_id
                for session_id, session in self._sessions.items()
                if session.touched_at <= deadline
            ]
            for session_id in expired:
                self._sessions.pop(session_id).close()
                self.stats.expired += 1
            return tuple(expired)
