"""Per-service circuit breakers: cross-request health for the server.

The execution layer's resilience (:mod:`repro.execution.resilience`)
is per-run: every execution rediscovers a sick service by burning its
own retry budget against it.  A long-lived :class:`~repro.serving.
service.QueryService` can do better — it sees the *same* services
across many requests, so observed call/fetch/retry health accumulated
here feeds back into planning before the next request pays the price.

Classic three-state machine, per service:

* **closed** — healthy; requests flow normally.  Each unhealthy
  request (the service's units were dropped, or its mean fetch
  latency ran beyond ``latency_factor`` × its profiled response time
  over at least ``min_fetches`` fetches) increments a consecutive-
  failure count; reaching ``failure_threshold`` opens the breaker.
* **open** — the service is presumed sick.  The serving layer costs
  plans against its *observed* response time (via
  :class:`~repro.services.registry.AdjustedRegistry`) and, when an
  equivalent sibling is registered, reroutes the service's units onto
  the sibling from the first fetch.  After ``cooldown`` (virtual or
  wall seconds — the clock is injectable) the breaker half-opens.
* **half-open** — one probe's worth of trust: the cost overrides are
  lifted so the next request exercises the service at face value; a
  healthy request closes the breaker, an unhealthy one re-opens it
  (and restarts the cooldown).

The breaker never *blocks* a request — this layer trades cost, not
availability: an open breaker changes plan costs and routing, and
every effect is visible in the response (certificate substitutions,
the adjusted content epoch) rather than silently applied.

Thread safety: state transitions are wardened by the serving layer's
stats lock (one breaker per service object, fed after each request);
the breaker itself is plain data.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from repro.execution.resilience import DriftPolicy


class BreakerState(Enum):
    """Health state of one service's breaker."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerPolicy:
    """When a service's breaker opens, and for how long.

    ``failure_threshold`` consecutive unhealthy requests open the
    breaker; a request is unhealthy when the service's units were
    dropped by partial results, or its mean observed fetch latency
    exceeded ``latency_factor`` times its profiled response time over
    at least ``min_fetches`` fetches.  ``cooldown`` (seconds on the
    injected clock) is how long an open breaker waits before granting
    a half-open probe.
    """

    failure_threshold: int = 2
    latency_factor: float = 3.0
    min_fetches: int = 3
    cooldown: float = 30.0


@dataclass(frozen=True)
class AdaptivePolicy:
    """Bundle of every adaptivity knob the serving layer exposes.

    ``drift`` governs mid-run re-planning (the
    :class:`~repro.execution.adaptive.AdaptiveExecutor`), ``breaker``
    the cross-request circuit breaker, and ``sibling_fallback``
    whether exhausted or breaker-open services are served by
    registered equivalents (recorded on the certificate).
    """

    drift: DriftPolicy = field(default_factory=DriftPolicy)
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    sibling_fallback: bool = True


class CircuitBreaker:
    """Per-service three-state breaker with injectable clock."""

    def __init__(
        self,
        policy: BreakerPolicy | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy if policy is not None else BreakerPolicy()
        self._clock = clock
        #: Consecutive unhealthy requests per service (closed state).
        self._failures: dict[str, int] = {}
        #: When each open breaker opened (absent = closed).
        self._opened_at: dict[str, float] = {}
        #: Open breakers that already granted their half-open probe.
        self._half_open: set[str] = set()
        #: Last meaningful observed mean fetch latency per service.
        self._latency: dict[str, float] = {}

    # -- state ----------------------------------------------------------

    def state(self, service: str) -> BreakerState:
        """The breaker state, transitioning open → half-open lazily."""
        opened_at = self._opened_at.get(service)
        if opened_at is None:
            return BreakerState.CLOSED
        if service in self._half_open:
            return BreakerState.HALF_OPEN
        if self._clock() - opened_at >= self.policy.cooldown:
            self._half_open.add(service)
            return BreakerState.HALF_OPEN
        return BreakerState.OPEN

    def open_services(self) -> tuple[str, ...]:
        """Services whose breaker is open right now (not half-open)."""
        return tuple(
            sorted(
                service
                for service in list(self._opened_at)
                if self.state(service) is BreakerState.OPEN
            )
        )

    def response_time_overrides(self) -> dict[str, float]:
        """Observed response times to cost open services at.

        Only **open** breakers contribute: a half-open probe must run
        the service at face value (or the probe never happens), and a
        closed breaker has nothing to correct.
        """
        return {
            service: self._latency[service]
            for service in list(self._opened_at)
            if self.state(service) is BreakerState.OPEN
            and service in self._latency
        }

    # -- feeding --------------------------------------------------------

    def record(
        self,
        service: str,
        *,
        fetches: int = 0,
        mean_latency: float | None = None,
        expected: float = 0.0,
        dropped: bool = False,
    ) -> None:
        """Feed one request's observed health for *service*.

        ``fetches``/``mean_latency`` summarize the request's remote
        traffic to the service, ``expected`` is the profiled response
        time it was costed at, ``dropped`` whether partial results
        demoted any of its units.  A request with no signal at all
        (no fetches, nothing dropped) leaves the breaker untouched —
        a service the plan never used proves nothing.
        """
        meaningful_latency = (
            mean_latency is not None
            and fetches >= self.policy.min_fetches
        )
        if meaningful_latency:
            self._latency[service] = mean_latency
        slow = (
            meaningful_latency
            and expected > 0
            and mean_latency > self.policy.latency_factor * expected
        )
        if dropped or slow:
            self._trip(service)
        elif fetches > 0:
            self._recover(service)

    def _trip(self, service: str) -> None:
        current = self.state(service)
        if current is BreakerState.HALF_OPEN:
            # Failed probe: re-open and restart the cooldown.
            self._opened_at[service] = self._clock()
            self._half_open.discard(service)
            return
        if current is BreakerState.OPEN:
            return
        count = self._failures.get(service, 0) + 1
        self._failures[service] = count
        if count >= self.policy.failure_threshold:
            self._opened_at[service] = self._clock()
            self._half_open.discard(service)

    def _recover(self, service: str) -> None:
        self._failures.pop(service, None)
        if self.state(service) is BreakerState.HALF_OPEN:
            # Healthy probe: close fully and forget the episode.
            self._opened_at.pop(service, None)
            self._half_open.discard(service)
            self._latency.pop(service, None)

    # -- reporting ------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serializable view of every non-closed breaker."""
        tracked = set(self._opened_at) | set(self._failures)
        return {
            service: {
                "state": self.state(service).value,
                "consecutive_failures": self._failures.get(service, 0),
                "observed_response_time": self._latency.get(service),
            }
            for service in sorted(tracked)
        }
