"""Baselines: exhaustive oracle and the WSMS predecessor ([16])."""

from repro.baselines.exhaustive import exhaustive_optimize
from repro.baselines.wsms import (
    WsmsPlan,
    greedy_selectivity_order,
    wsms_optimize,
    wsms_poset,
)

__all__ = [
    "WsmsPlan",
    "exhaustive_optimize",
    "greedy_selectivity_order",
    "wsms_optimize",
    "wsms_poset",
]
