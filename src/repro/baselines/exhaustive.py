"""Exhaustive plan enumeration: the optimality oracle for the B&B.

Enumerates *every* permissible pattern sequence, *every* callable
topology, and performs the full dominance-pruned fetch exploration for
each, with no pruning of partial constructions.  On small queries this
establishes the true optimum, which the branch-and-bound optimizer must
match while exploring (weakly) fewer states — the property checked by
the ablation benchmarks.
"""

from __future__ import annotations

from repro.costs.base import CostMetric
from repro.execution.cache import CacheSetting
from repro.model.query import ConjunctiveQuery
from repro.optimizer.branch_and_bound import SearchStats
from repro.optimizer.fetches import FetchContext, exhaustive_assignment
from repro.optimizer.optimizer import OptimizedPlan
from repro.optimizer.patterns import permissible_sequences
from repro.optimizer.topology import TopologyEnumerator
from repro.plans.annotate import annotate
from repro.plans.builder import PlanBuilder
from repro.plans.dag import PlanError
from repro.services.registry import ServiceRegistry


def exhaustive_optimize(
    query: ConjunctiveQuery,
    registry: ServiceRegistry,
    metric: CostMetric,
    k: int = 10,
    cache_setting: CacheSetting = CacheSetting.ONE_CALL,
) -> OptimizedPlan:
    """Return the globally optimal plan by brute force."""
    schema = registry.schema()
    query.validate_against(schema)
    sequences = permissible_sequences(query, schema)
    if not sequences:
        raise PlanError("no permissible sequence of access patterns")
    stats = SearchStats()
    builder = PlanBuilder(query, registry)
    # Same policy as the branch-and-bound optimizer: plans that cannot
    # reach k answers do less work and would otherwise win on cost, so
    # they only serve as a fallback.
    best: OptimizedPlan | None = None
    fallback: OptimizedPlan | None = None
    for patterns in sequences:
        stats.pattern_sequences_considered += 1
        enumerator = TopologyEnumerator(query, patterns)
        for poset in enumerator.all_posets():
            stats.topology_states_explored += 1
            try:
                plan = builder.build(patterns, poset)
            except PlanError:
                continue
            context = FetchContext(plan, metric, cache_setting)
            fetch_result = exhaustive_assignment(context, k)
            stats.fetch_evaluations += 1
            stats.plans_completed += 1
            context.apply(fetch_result.fetches)
            annotation = annotate(plan, cache_setting)
            cost = metric.cost(plan, annotation)
            candidate = OptimizedPlan(
                plan=plan,
                annotation=annotation,
                cost=cost,
                metric_name=metric.name,
                patterns=patterns,
                poset=poset,
                fetches=dict(fetch_result.fetches),
                expected_answers=fetch_result.output_size,
                stats=stats,
            )
            if fetch_result.feasible:
                if best is None or cost < best.cost:
                    stats.incumbent_updates += 1
                    best = candidate
            elif fallback is None or cost < fallback.cost:
                fallback = candidate
    chosen = best if best is not None else fallback
    if chosen is None:
        raise PlanError("no executable plan found")
    return chosen
