"""The WSMS baseline of Srivastava et al. (VLDB 2006, ref. [16]).

The Web Service Management System optimizer is the direct predecessor
of the paper.  Its model is strictly simpler:

* all services are *exact* (no ranking) and *bulk* (no chunking);
* plans are *pipelined*: data flows through an arrangement of services
  and the relevant measure is the **bottleneck cost metric** — the
  per-tuple processing rate of the slowest service;
* every input attribute of a service is fed by exactly one other
  service or by the user's input.

For selective, access-unconstrained services, their main theorem shows
the optimal arrangement orders services by increasing
``cost-adjusted selectivity``; in the presence of access limitations
(our setting) we retain their greedy chain ordered by increasing erspi,
which the paper cites as optimal "in absence of access limitations"
(Section 4.2.1), plus a small exhaustive variant over chains.

The baseline deliberately ignores chunking and ranking: benchmarks use
it to show what the paper's contribution adds for search services.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

from repro.costs.time_cost import BottleneckMetric
from repro.execution.cache import CacheSetting
from repro.model.query import ConjunctiveQuery
from repro.optimizer.patterns import PatternSequence, permissible_sequences
from repro.optimizer.topology import atom_callable_after
from repro.plans.annotate import PlanAnnotation, annotate
from repro.plans.builder import PlanBuilder, Poset, chain_poset
from repro.plans.dag import PlanError, QueryPlan
from repro.services.registry import ServiceRegistry


@dataclass(frozen=True)
class WsmsPlan:
    """A pipelined chain plan chosen by the WSMS baseline."""

    plan: QueryPlan
    annotation: PlanAnnotation
    cost: float
    order: tuple[int, ...]
    patterns: PatternSequence


def _chain_orders(
    query: ConjunctiveQuery, patterns: PatternSequence
) -> list[tuple[int, ...]]:
    """All callable total orders of the atoms (chains)."""
    n = len(query.atoms)
    valid = []
    for order in permutations(range(n)):
        prefix: set[int] = set()
        feasible = True
        for index in order:
            if not atom_callable_after(query, patterns, index, frozenset(prefix)):
                feasible = False
                break
            prefix.add(index)
        if feasible:
            valid.append(order)
    return valid


def greedy_selectivity_order(
    query: ConjunctiveQuery,
    patterns: PatternSequence,
    registry: ServiceRegistry,
) -> tuple[int, ...]:
    """Chain by increasing erspi among callable atoms (WSMS greedy)."""
    n = len(query.atoms)
    order: list[int] = []
    remaining = set(range(n))
    while remaining:
        callable_now = [
            i for i in sorted(remaining)
            if atom_callable_after(query, patterns, i, frozenset(order))
        ]
        if not callable_now:
            raise PlanError("pattern sequence is not permissible")
        chosen = min(
            callable_now,
            key=lambda i: (
                registry.profile(query.atoms[i].service, patterns[i].code).erspi,
                i,
            ),
        )
        order.append(chosen)
        remaining.discard(chosen)
    return tuple(order)


def wsms_optimize(
    query: ConjunctiveQuery,
    registry: ServiceRegistry,
    cache_setting: CacheSetting = CacheSetting.NO_CACHE,
    exhaustive_chains: bool = True,
) -> WsmsPlan:
    """Pick the best pipelined chain under the bottleneck metric.

    ``exhaustive_chains=False`` keeps only the greedy erspi ordering
    (the configuration whose optimality [16] proves in the
    unconstrained case); otherwise all callable chains are compared.
    """
    schema = registry.schema()
    query.validate_against(schema)
    metric = BottleneckMetric()
    builder = PlanBuilder(query, registry)
    best: WsmsPlan | None = None
    for patterns in permissible_sequences(query, schema):
        if exhaustive_chains:
            orders = _chain_orders(query, patterns)
        else:
            orders = [greedy_selectivity_order(query, patterns, registry)]
        for order in orders:
            poset = chain_poset(len(query.atoms), order)
            try:
                plan = builder.build(patterns, poset)
            except PlanError:
                continue
            annotation = annotate(plan, cache_setting)
            cost = metric.cost(plan, annotation)
            if best is None or cost < best.cost:
                best = WsmsPlan(
                    plan=plan,
                    annotation=annotation,
                    cost=cost,
                    order=order,
                    patterns=patterns,
                )
    if best is None:
        raise PlanError("WSMS baseline found no executable chain")
    return best


def wsms_poset(query: ConjunctiveQuery, order: tuple[int, ...]) -> Poset:
    """The chain poset for a WSMS ordering (exposed for benchmarks)."""
    return chain_poset(len(query.atoms), order)
