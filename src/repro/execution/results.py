"""Result rows and ranking composition.

Rows flowing through a plan carry a *binding* of query variables to
values plus, for every search-service node traversed, the rank index
(0-based) the contributing tuple had in that service's result list.
The final answer list is presented in a *composed* global ranking that
is a good composition of the partial rankings: rows are ordered by the
sum of their per-service rank indexes (ties broken by arrival order,
which itself is consistent with the partial orders thanks to the
rank-aware join strategies).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.model.terms import Variable

#: One per-row provenance record: ``(service name, input key, page)``
#: — which service invocation (with which bound inputs) and which page
#: of its chunked output contributed a tuple to the row.  The input
#: key is the engine's ``(pattern code, ((position, value), ...))``
#: cache/accounting key, so a record names exactly one logical-cache
#: unit and one :class:`PartialResultCertificate` block.
ProvenanceRecord = tuple[str, tuple, int]


@dataclass(frozen=True, slots=True)
class Row:
    """One tuple of bindings with ranking provenance.

    ``slots=True`` shrinks the per-row footprint and speeds attribute
    access — rows are the unit of work of every hot loop, and the
    engine's high-volume paths additionally carry them as slot-indexed
    value tuples (see ``repro.execution.slots``) between node
    boundaries.

    ``provenance`` holds one :data:`ProvenanceRecord` per contributing
    service page pull, in contribution order.  It is populated only
    when the engine runs with ``row_provenance=True``; the default
    stays the empty tuple everywhere, so disabled executions build
    byte-identical rows to the historical ones.  Provenance never
    participates in :meth:`rank_key`, equality of bindings, or any
    join/ordering decision — it is an audit trail riding along.
    """

    bindings: Mapping[Variable, object]
    ranks: tuple[tuple[str, int], ...] = ()
    provenance: tuple[ProvenanceRecord, ...] = ()

    def value(self, variable: Variable) -> object:
        """The value bound to *variable*."""
        return self.bindings[variable]

    def rank_key(self) -> int:
        """Aggregated rank: the sum of per-service rank indexes."""
        return sum(rank for _, rank in self.ranks)

    def with_rank(self, node_id: str, rank: int) -> "Row":
        """Copy of the row with one more rank annotation."""
        return Row(
            bindings=self.bindings,
            ranks=self.ranks + ((node_id, rank),),
            provenance=self.provenance,
        )

    def with_provenance(self, record: ProvenanceRecord) -> "Row":
        """Copy of the row with one more provenance record."""
        return Row(
            bindings=self.bindings,
            ranks=self.ranks,
            provenance=self.provenance + (record,),
        )

    def merged_with(self, other: "Row") -> "Row | None":
        """Natural-join merge: None when shared variables disagree.

        Conflicts are detected before anything is copied, and when the
        other row adds no new variables (branches recombining after a
        fork bind the same set) this row's mapping is reused as-is.
        """
        mine = self.bindings
        fresh: dict | None = None
        for variable, value in other.bindings.items():
            if variable in mine:
                if mine[variable] != value:
                    return None
            elif fresh is None:
                fresh = {variable: value}
            else:
                fresh[variable] = value
        if fresh is None:
            return Row(
                bindings=mine,
                ranks=self.ranks + other.ranks,
                provenance=self.provenance + other.provenance,
            )
        return Row(
            bindings={**mine, **fresh},
            ranks=self.ranks + other.ranks,
            provenance=self.provenance + other.provenance,
        )

    def project(self, head: Sequence[Variable]) -> tuple:
        """The output tuple for the query head."""
        return tuple(self.bindings[v] for v in head)


def compose_ranking(rows: Sequence[Row], k: int | None = None) -> list[Row]:
    """Order *rows* by aggregated rank (stable on ties).

    **Total order contract** (shared with the streamed top-k pipeline,
    :class:`~repro.execution.joins.JoinStream`): rows are ordered by
    the key ``(rank_key, arrival index)``, where the arrival index is
    the row's position in *rows* — i.e. ties in the aggregated rank are
    broken by arrival order, which itself is consistent with the
    partial orders thanks to the rank-aware join strategies.  Both the
    full-sort and the heap path below, and ``JoinStream.top``, realize
    exactly this order, which is what makes the streamed pipeline
    bit-identical to the full-scan oracle.

    The composed ranking is consistent with each service's partial
    order: a row that improves in every partial rank cannot be placed
    after one it dominates.

    When *k* is known, only the top-k rows are materialized via a heap
    selection over explicitly ``(rank_key, arrival)``-decorated rows
    (equivalent to sorting and truncating), which skips the full sort
    on large answer sets: O(n log k) instead of O(n log n), never a
    different result.  ``compose_ranking`` over a full-scan execution
    is the *oracle* every optimized path (hashed, streamed, lazily
    fetched) is differentially tested against.
    """
    if k is not None and 0 <= k < len(rows):
        decorated = heapq.nsmallest(
            k,
            ((row.rank_key(), index) for index, row in enumerate(rows)),
        )
        return [rows[index] for _, index in decorated]
    return sorted(rows, key=Row.rank_key)


@dataclass
class ResultTable:
    """The final answers of a query execution.

    ``complete`` is the partial-result flag of the streamed pipeline:
    ``True`` when the table holds *every* answer the plan can produce
    with its current fetches (the default for full materialization),
    ``False`` when a streamed top-k execution suspended early and the
    table only holds the proven top-k head — asking for more resumes
    the suspended stream instead of re-executing.
    """

    head: tuple[Variable, ...]
    rows: list[Row] = field(default_factory=list)
    complete: bool = True

    def __len__(self) -> int:
        return len(self.rows)

    def top(self, k: int) -> list[Row]:
        """The first *k* answers in composed rank order."""
        return self.rows[:k]

    def tuples(self, k: int | None = None) -> list[tuple]:
        """Projected head tuples, optionally truncated to *k*."""
        rows = self.rows if k is None else self.rows[:k]
        return [row.project(self.head) for row in rows]

    def render(self, k: int | None = None) -> str:
        """A simple text table of the answers (Figure 10 analogue)."""
        names = [v.name for v in self.head]
        body = [
            [str(value) for value in row] for row in self.tuples(k)
        ]
        widths = [
            max([len(names[i])] + [len(line[i]) for line in body])
            for i in range(len(names))
        ]
        header = "  ".join(name.ljust(widths[i]) for i, name in enumerate(names))
        separator = "-" * len(header)
        lines = [header, separator]
        for line in body:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
        return "\n".join(lines)
