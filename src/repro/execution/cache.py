"""Logical caching of service calls (Section 5.1).

Three settings are modeled:

* **no cache** — every call is repeated;
* **one-call cache** — the engine remembers the *last* call to each
  service (its input parameter setting and the pages fetched for it),
  which suffices to avoid re-issuing an immediate "second call" with
  exactly the same input parameters: blocks of uniform tuples flow
  contiguously through the plan, so consecutive duplicates are common;
* **optimal cache** — the engine remembers parameter settings and
  results of *all* calls, so each service is invoked once per distinct
  input combination.

A cached entry is keyed by ``(service, input_key)`` and stores one
result per fetched page, because a chunked service is re-fetched page
by page for the same input setting.

**Admission control.**  Within one experiment the optimal cache's
unbounded growth is the point (each call happens once); a *serving*
process, though, keeps one logical cache alive across every tenant
and request, where unbounded growth is a leak.  :class:`OptimalCache`
therefore takes an optional ``capacity`` — a bound on the number of
cached pages, evicted least-recently-used first.  Eviction is *pure
cost*: a logical cache can only ever change how often the remote side
is called, never which tuples flow (the remote services are
deterministic per ``(input, page)``), so answers are identical under
any capacity — the regression suite pins this.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from collections import OrderedDict
from enum import Enum
from typing import Hashable


class CacheSetting(Enum):
    """The three logical-cache settings of the paper."""

    NO_CACHE = "no-cache"
    ONE_CALL = "one-call"
    OPTIMAL = "optimal"


#: Identifies an input parameter setting: (pattern code, sorted input items).
InputKey = Hashable


class LogicalCache(ABC):
    """Per-execution cache of service invocation results."""

    @abstractmethod
    def lookup(self, service: str, input_key: InputKey, page: int) -> object | None:
        """Cached result for (service, input setting, page), or None."""

    @abstractmethod
    def store(
        self, service: str, input_key: InputKey, page: int, value: object
    ) -> None:
        """Record the result of an invocation."""

    @abstractmethod
    def clear(self) -> None:
        """Drop all cached entries."""


class NoCache(LogicalCache):
    """Every call is repeated: lookups always miss."""

    def lookup(self, service: str, input_key: InputKey, page: int) -> object | None:
        return None

    def store(
        self, service: str, input_key: InputKey, page: int, value: object
    ) -> None:
        return None

    def clear(self) -> None:
        return None


class OneCallCache(LogicalCache):
    """Remembers only the most recent input setting per service.

    All pages fetched for that setting stay available until a call with
    a different setting arrives, which evicts the entry.  This captures
    consecutive duplicate invocations, which occur frequently because
    tuples originating from a proliferative service are retrieved (and
    forwarded) contiguously in blocks.
    """

    def __init__(self) -> None:
        self._last_key: dict[str, InputKey] = {}
        self._pages: dict[str, dict[int, object]] = {}

    def lookup(self, service: str, input_key: InputKey, page: int) -> object | None:
        if self._last_key.get(service) != input_key:
            return None
        return self._pages.get(service, {}).get(page)

    def store(
        self, service: str, input_key: InputKey, page: int, value: object
    ) -> None:
        if self._last_key.get(service) != input_key:
            self._last_key[service] = input_key
            self._pages[service] = {}
        self._pages[service][page] = value

    def clear(self) -> None:
        self._last_key.clear()
        self._pages.clear()


class OptimalCache(LogicalCache):
    """Remembers every call: one invocation per distinct input and page.

    ``capacity`` bounds the number of cached *pages* (the admission
    control a long-lived serving process needs); ``None`` keeps the
    paper's unbounded behavior.  Eviction is least-recently-used:
    lookups refresh recency, stores evict the coldest entries once the
    bound is exceeded.  ``evictions`` counts entries dropped — a
    monitoring hook, not part of any equivalence contract.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self._capacity = capacity
        self._memo: OrderedDict[tuple[str, InputKey, int], object] = (
            OrderedDict()
        )
        self.evictions = 0

    @property
    def capacity(self) -> int | None:
        """The admission bound (None: unbounded)."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._memo)

    def lookup(self, service: str, input_key: InputKey, page: int) -> object | None:
        key = (service, input_key, page)
        value = self._memo.get(key)
        if value is not None and self._capacity is not None:
            self._memo.move_to_end(key)
        return value

    def store(
        self, service: str, input_key: InputKey, page: int, value: object
    ) -> None:
        key = (service, input_key, page)
        self._memo[key] = value
        if self._capacity is None:
            return
        self._memo.move_to_end(key)
        while len(self._memo) > self._capacity:
            self._memo.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._memo.clear()


class ThreadSafeCache(LogicalCache):
    """Lock-guarded view over another :class:`LogicalCache`.

    Wraps every ``lookup``/``store``/``clear`` in one re-entrant lock,
    making the inner cache's bookkeeping (LRU reordering, eviction
    counters, one-call key swaps) safe under concurrent access by a
    :class:`~repro.execution.parallel.ParallelExecutor`'s workers.

    Guarding individual operations is not enough for *call counting*:
    two workers resolving the same input setting concurrently would
    both miss, both invoke the remote service, and double-count the
    call.  :meth:`key_lock` hands out one mutex per ``(service,
    input_key)`` — a worker holds it across its whole lookup → invoke →
    store page loop, so each distinct input setting is resolved by
    exactly one worker at a time and call/hit counts match sequential
    execution.
    """

    def __init__(self, inner: LogicalCache) -> None:
        self._inner = inner
        self._lock = threading.RLock()
        self._key_locks: dict[tuple[str, InputKey], threading.Lock] = {}

    @property
    def inner(self) -> LogicalCache:
        """The wrapped cache (for capacity/eviction introspection)."""
        return self._inner

    def lookup(self, service: str, input_key: InputKey, page: int) -> object | None:
        with self._lock:
            return self._inner.lookup(service, input_key, page)

    def store(
        self, service: str, input_key: InputKey, page: int, value: object
    ) -> None:
        with self._lock:
            self._inner.store(service, input_key, page, value)

    def clear(self) -> None:
        with self._lock:
            self._inner.clear()
            self._key_locks.clear()

    def key_lock(self, service: str, input_key: InputKey) -> threading.Lock:
        """The single-flight mutex for one input parameter setting."""
        with self._lock:
            key = (service, input_key)
            lock = self._key_locks.get(key)
            if lock is None:
                lock = self._key_locks[key] = threading.Lock()
            return lock


def make_cache(
    setting: CacheSetting, capacity: int | None = None
) -> LogicalCache:
    """Instantiate the cache implementation for *setting*.

    ``capacity`` applies admission control to the optimal cache (see
    :class:`OptimalCache`); the no-cache and one-call settings are
    inherently bounded, so it is ignored there.
    """
    if setting is CacheSetting.NO_CACHE:
        return NoCache()
    if setting is CacheSetting.ONE_CALL:
        return OneCallCache()
    return OptimalCache(capacity=capacity)
