"""Slot-indexed row representation for the execution hot paths.

The engine's inner loops — the per-cell merge of the join strategies,
the per-tuple output binding of service nodes — historically worked on
:class:`~repro.execution.results.Row` bindings, i.e. per-row dicts.
Every visited candidate cell paid a dict merge (hash lookups, copies)
even when the cell was immediately discarded, and every predicate
evaluation re-resolved its variables by hashing.

This module resolves variables to **slot indices once per node** and
lets the hot loops run on fixed-width value tuples instead:

* :class:`SlotLayout` — an ordered variable set with a variable → slot
  index; encodes homogeneous rows into value tuples and decodes tuples
  back into :class:`Row` bindings at the result boundary;
* :class:`SlotJoinPlan` — the natural-join merge between two layouts,
  precomputed into shared-slot conflict pairs and right-only slot
  picks, so a candidate cell costs a few tuple indexings instead of a
  dict merge;
* :func:`compile_comparison` / :func:`compile_predicates` — predicates
  compiled into closures over value tuples, replicating
  :meth:`~repro.model.predicates.Comparison.holds` exactly (including
  the :class:`~repro.model.predicates.PredicateError` raised when a
  comparison hits non-comparable values).

**Equivalence contract.**  Slot execution is a *pure representation
change*: every consumer (hashed join, join stream, engine service
nodes) derives the layout from the rows it actually holds and falls
back to the dict-row path whenever the rows are heterogeneous, a
binding value is missing, or a predicate mentions a variable outside
the layout — so results are bit-identical (rows, ranks, emission
order) to the dict path by construction, which
``tests/test_slots.py`` checks differentially.  Within the engine all
node outputs are homogeneous (a node binds the same variable set into
every row it emits), so the fallback only fires for hand-built
heterogeneous inputs.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.execution.results import Row
from repro.model.predicates import (
    _ARITH,
    _OPERATORS,
    BinaryExpression,
    Comparison,
    Expression,
    PredicateError,
)
from repro.model.terms import Constant, Variable

#: A compiled expression/predicate evaluates against one value tuple.
SlotExpression = Callable[[tuple], object]
SlotPredicate = Callable[[tuple], bool]


class SlotLayout:
    """An ordered variable set with variable → slot index resolution.

    The layout of a node is derived once (from its first row, or from
    its term structure) and shared by every row the node emits; rows
    then travel as plain value tuples aligned with ``variables``.
    """

    __slots__ = ("variables", "index")

    def __init__(self, variables: Sequence[Variable]) -> None:
        self.variables = tuple(variables)
        self.index = {v: i for i, v in enumerate(self.variables)}

    @classmethod
    def for_row(cls, row: Row) -> "SlotLayout":
        """The layout implied by one row's bindings (insertion order)."""
        return cls(tuple(row.bindings.keys()))

    def encode(self, row: Row) -> tuple | None:
        """*row* as a value tuple, or None when it does not fit.

        A row fits only when it binds *exactly* the layout's variables;
        anything else (extra, missing, different set) signals a
        heterogeneous input and the caller must fall back to dict rows.
        """
        bindings = row.bindings
        if len(bindings) != len(self.variables):
            return None
        try:
            return tuple(bindings[v] for v in self.variables)
        except KeyError:
            return None

    def encode_rows(self, rows: Sequence[Row]) -> list[tuple] | None:
        """All of *rows* as value tuples, or None when any fails."""
        encoded: list[tuple] = []
        for row in rows:
            values = self.encode(row)
            if values is None:
                return None
            encoded.append(values)
        return encoded

    def decode(
        self,
        values: tuple,
        ranks: tuple[tuple[str, int], ...] = (),
        provenance: tuple = (),
    ) -> Row:
        """A :class:`Row` over this layout (the result boundary)."""
        return Row(
            bindings=dict(zip(self.variables, values)),
            ranks=ranks,
            provenance=provenance,
        )

    def __len__(self) -> int:
        return len(self.variables)

    def __repr__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"<SlotLayout [{names}]>"


def layout_for_rows(rows: Sequence[Row]) -> SlotLayout | None:
    """The shared layout of *rows*, or None when they are heterogeneous.

    Derived from the first row; the check that every row fits happens
    during :meth:`SlotLayout.encode_rows` (callers encode right after),
    so this only rejects the trivially-empty case.
    """
    if not rows:
        return None
    return SlotLayout.for_row(rows[0])


class SlotJoinPlan:
    """Precomputed natural-join merge between two slot layouts.

    ``shared`` holds the ``(left slot, right slot)`` pairs that must
    agree for the cell to survive (the natural-join condition);
    ``right_extra`` the right slots appended to the left tuple on a
    successful merge.  ``merged`` is the output layout: the left
    variables followed by the right-only variables in right order —
    the same variable set ``Row.merged_with`` produces.
    """

    __slots__ = ("left", "right", "shared", "right_extra", "merged")

    def __init__(self, left: SlotLayout, right: SlotLayout) -> None:
        self.left = left
        self.right = right
        shared: list[tuple[int, int]] = []
        extra: list[int] = []
        for j, variable in enumerate(right.variables):
            i = left.index.get(variable)
            if i is None:
                extra.append(j)
            else:
                shared.append((i, j))
        self.shared = tuple(shared)
        self.right_extra = tuple(extra)
        self.merged = SlotLayout(
            left.variables + tuple(right.variables[j] for j in extra)
        )

    def merge(self, left_values: tuple, right_values: tuple) -> tuple | None:
        """Merged value tuple, or None when shared slots disagree."""
        for i, j in self.shared:
            if left_values[i] != right_values[j]:
                return None
        if not self.right_extra:
            return left_values
        return left_values + tuple(right_values[j] for j in self.right_extra)


def compile_expression(
    expression: Expression, layout: SlotLayout
) -> SlotExpression | None:
    """*expression* as a closure over value tuples; None if uncompilable.

    Returns None when the expression mentions a variable outside the
    layout — the dict path then reproduces the exact unbound-variable
    :class:`PredicateError` on evaluation.  Arithmetic ``TypeError``s
    propagate raw, exactly as :func:`~repro.model.predicates.
    evaluate_expression` lets them.
    """
    if isinstance(expression, Constant):
        value = expression.value
        return lambda values: value
    if isinstance(expression, Variable):
        slot = layout.index.get(expression)
        if slot is None:
            return None
        return lambda values: values[slot]
    if isinstance(expression, BinaryExpression):
        left = compile_expression(expression.left, layout)
        right = compile_expression(expression.right, layout)
        if left is None or right is None:
            return None
        operation = _ARITH[expression.op]
        return lambda values: operation(left(values), right(values))
    return None


def compile_comparison(
    predicate: Comparison, layout: SlotLayout
) -> SlotPredicate | None:
    """*predicate* as a closure over value tuples; None if uncompilable.

    The closure replicates :meth:`Comparison.holds` bit for bit,
    including the :class:`PredicateError` message raised when the two
    operand values cannot be compared.
    """
    left = compile_expression(predicate.left, layout)
    right = compile_expression(predicate.right, layout)
    if left is None or right is None:
        return None
    operation = _OPERATORS[predicate.op]
    operator_name = predicate.op

    def holds(values: tuple) -> bool:
        left_value = left(values)
        right_value = right(values)
        try:
            return bool(operation(left_value, right_value))
        except TypeError as exc:
            raise PredicateError(
                f"cannot compare {left_value!r} {operator_name} "
                f"{right_value!r}: {exc}"
            ) from exc

    return holds


def compile_predicates(
    predicates: Sequence[Comparison], layout: SlotLayout
) -> list[SlotPredicate] | None:
    """Compile all of *predicates*, or None when any is uncompilable.

    All-or-nothing: a single uncompilable predicate sends the caller to
    the dict path wholesale, so evaluation-order side effects (which
    predicate raises first) stay identical.
    """
    compiled: list[SlotPredicate] = []
    for predicate in predicates:
        holds = compile_comparison(predicate, layout)
        if holds is None:
            return None
        compiled.append(holds)
    return compiled
