"""Resilient page pulls: retry/backoff, hedging, honest partial results.

The paper's cost model optimizes over remote services that in any real
deployment fail, stall, and straggle.  The fault-injection kit
(:mod:`repro.testing.faults`) proves failures *surface* cleanly; this
module makes the engine *survive* them, in three independently
switchable layers wired into both page-pull seams (the eager page loop
of ``ExecutionEngine._run_service_node`` and the lazy
``_LazyServicePageSource.fetch``):

* **Retry with backoff** (:class:`RetryPolicy`) — a transient page
  failure (:class:`~repro.services.base.TransientServiceError`,
  ``ConnectionError``, ``TimeoutError``) is re-invoked up to a per-
  service attempt cap, with seeded *deterministic* exponential backoff
  charged to virtual time (services never sleep, so neither does the
  retry loop: the backoff delay is folded into the winning fetch's
  reported latency).  A per-call ``deadline`` bounds the cumulative
  backoff a single page pull may accumulate.  **Determinism argument**:
  every quantity involved — the attempt sequence, the backoff delays
  (hashed from ``(seed, service, input key, attempt)``), the final
  outcome — is a pure function of the policy and the service's own
  (seeded) behavior, never of wall-clock time or scheduling.

* **Hedging** (:class:`HedgePolicy`) — a page pull whose reported
  latency exceeds the straggler threshold is duplicated onto a small
  shared thread pool (the same fan-out discipline as the PR 6
  ``ParallelExecutor``); the first *sound* response wins by virtual
  latency and the loser is discarded without touching the logical
  cache or its accounting.  **Accounting argument**: both the primary
  and the duplicate are raw ``service.invoke`` calls below the cache
  layer — only the winner is stored and recorded via ``record_fetch``,
  so calls/fetches/cache-hit counters are bit-identical to an unhedged
  run; the duplicate is traced solely by the ``hedged_pulls`` /
  ``hedged_wins`` / ``wasted_fetches`` counters.  (On a remote-caching
  service the duplicate may be answered by the remote's own cache and
  win with the fast repeat latency — *virtual time* may legitimately
  improve; tuples never change for a deterministic remote.)

* **Partial results** (``partial_results=True``) — when retries are
  exhausted, the failing unit (one ``(service, input setting)`` block)
  is *demoted* instead of aborting the query: the engine masks the
  unit and re-runs the walk (the logical cache makes restarts cheap),
  returning top-k over the responsive blocks plus a
  :class:`PartialResultCertificate` naming every dropped unit and
  attributing each returned answer to the service blocks that produced
  it.  **Honesty argument**: demotion-by-masking makes the partial
  answer *exactly* the top-k of the plan over the registry with the
  dropped units excluded up front — the oracle the differential suite
  replays — so answers are never silently dropped: either a unit is in
  the certificate, or its data was fully considered.
"""

from __future__ import annotations

import hashlib
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Mapping

from repro.services.base import InvocationResult, TransientServiceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.execution.results import Row
    from repro.execution.stats import ExecutionStats
    from repro.plans.dag import QueryPlan
    from repro.services.profile import ServiceProfile

#: Exception types the retry layer treats as transient.  Anything else
#: (schema violations, programming errors) propagates immediately.
TRANSIENT_ERRORS = (TransientServiceError, ConnectionError, TimeoutError)


class UnresponsiveService(RuntimeError):
    """One ``(service, input setting)`` unit exhausted its retry budget.

    Raised by :func:`resilient_fetch` only in partial-results mode; the
    engine catches it, demotes the unit, and re-runs the walk with the
    unit masked.  Outside partial mode the *original* transient error
    propagates instead, preserving historical fail-fast behavior.
    """

    def __init__(
        self,
        service: str,
        input_key: tuple,
        page: int,
        attempts: int,
        cause: BaseException,
    ) -> None:
        super().__init__(
            f"{service} unresponsive for {input_key!r} "
            f"(page {page}, {attempts} attempts): {cause}"
        )
        self.service = service
        self.input_key = input_key
        self.page = page
        self.attempts = attempts
        self.cause = cause

    @property
    def unit(self) -> tuple[str, tuple]:
        """The demotion key: ``(service name, input key)``."""
        return (self.service, self.input_key)


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic retry/backoff for transient page failures.

    ``attempts`` is the total invocation budget per page pull (1 means
    no retry); ``per_service`` overrides it for named services.
    Backoff for re-attempt *n* (1-based) is
    ``min(max_delay, base_delay * multiplier**(n-1))`` scaled by a
    seeded jitter in ``[1-jitter, 1+jitter]`` — a pure function of
    ``(seed, service, input key, n)``, so retried executions are
    bit-reproducible.  ``deadline`` bounds the cumulative backoff one
    page pull may accumulate: a retry whose delay would exceed it is
    not taken (the pull fails as if the attempt cap were reached).
    All delays are *virtual* seconds, folded into the winning fetch's
    reported latency — nothing ever sleeps.
    """

    attempts: int = 3
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.1
    seed: int = 0
    deadline: float | None = None
    per_service: Mapping[str, int] = field(default_factory=dict)

    def attempts_for(self, service: str) -> int:
        """The attempt cap for *service* (>= 1)."""
        return max(1, self.per_service.get(service, self.attempts))

    def backoff(self, service: str, input_key: tuple, attempt: int) -> float:
        """Virtual delay before re-attempt *attempt* (1-based)."""
        delay = min(
            self.max_delay, self.base_delay * self.multiplier ** (attempt - 1)
        )
        if not self.jitter:
            return delay
        key = repr((self.seed, service, input_key, attempt))
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        draw = int.from_bytes(digest[:8], "big") / 2.0**64
        return delay * (1.0 - self.jitter + 2.0 * self.jitter * draw)


@dataclass(frozen=True)
class HedgePolicy:
    """Duplicate straggler page pulls; first sound response wins.

    A pull whose reported latency exceeds ``threshold`` (virtual
    seconds) is re-issued up to ``max_hedges`` times on the shared
    hedge pool; the response with the smallest virtual latency wins
    (the primary on ties), every loser is discarded uncounted.
    """

    threshold: float = 4.0
    max_hedges: int = 1


@dataclass(frozen=True)
class ResilienceConfig:
    """Which resilience layers are active for an engine.

    All fields default to off; a config with every layer off is
    behaviorally identical to running without one (the bit-identity
    contract the differential suite pins).

    ``sibling_fallback`` (requires ``partial_results``) reroutes a unit
    whose retries are exhausted onto an equivalent registered service
    (:meth:`~repro.services.registry.ServiceRegistry.siblings`) before
    demoting it: the answer keeps the unit's data as served by the
    sibling, and the certificate's ``substituted`` section names every
    rerouted unit — honesty is preserved because a substitution is
    *recorded*, never silent.
    """

    retry: RetryPolicy | None = None
    hedge: HedgePolicy | None = None
    partial_results: bool = False
    sibling_fallback: bool = False


# -- drift detection --------------------------------------------------------


@dataclass(frozen=True)
class DriftPolicy:
    """When observed service behavior diverges enough to re-plan.

    A service has *drifted* when the mean observed latency of its
    remote fetches in one execution exceeds ``latency_factor`` times
    the ``response_time`` of the profile its plan node was costed
    with, after at least ``min_fetches`` observations (one slow page
    is a straggler — hedging's job; a consistently slow service is a
    mis-costed plan — re-planning's job).  ``max_replans`` bounds how
    many times one adaptive execution may re-plan before it stops
    monitoring and finishes with whatever plan it has.
    ``substitute_siblings`` additionally reroutes the drifted
    service's units onto an equivalent registered sibling (when one
    exists) in the spliced plan, so the remaining pages are pulled at
    the sibling's healthy latency; the substitution is recorded on the
    partial certificate exactly like a failure-driven fallback.
    """

    latency_factor: float = 3.0
    min_fetches: int = 3
    max_replans: int = 3
    substitute_siblings: bool = True


class PlanDrift(RuntimeError):
    """A service's observed latency left the profile it was costed at.

    Control-flow exception raised by :class:`DriftMonitor` out of the
    engine's fetch seams; the :class:`~repro.execution.adaptive.
    AdaptiveExecutor` catches it, re-optimizes against the observed
    response times, and splices the replacement plan mid-run.  The
    seam that raised it attaches the execution's partial
    :class:`~repro.execution.stats.ExecutionStats` as ``stats`` so the
    aborted attempt's work stays accounted.
    """

    def __init__(
        self, service: str, observed: float, expected: float, fetches: int
    ) -> None:
        super().__init__(
            f"{service} drifted: mean latency {observed:.2f}s over "
            f"{fetches} fetches vs costed response time {expected:.2f}s"
        )
        self.service = service
        self.observed = observed
        self.expected = expected
        self.fetches = fetches
        self.stats: "ExecutionStats | None" = None


class DriftMonitor:
    """Per-execution observer of remote fetch latency vs. plan cost.

    The engine calls :meth:`observe` after every *remote* page fetch
    (cache hits tell nothing about the service).  The monitor never
    touches the execution's statistics, so a run whose observations
    stay under the threshold is bit-identical to an unmonitored run —
    the zero-drift half of the adaptive differential contract.

    ``adapted`` names services whose drift was already absorbed by a
    re-plan (their costed profile *is* the observed one now); they are
    exempt, or every spliced plan would immediately re-trip on the
    same slow service.  Substituted units report under the sibling's
    name with no plan-node profile of their own, so they are never
    observed either.
    """

    def __init__(
        self, policy: DriftPolicy, adapted: frozenset[str] = frozenset()
    ) -> None:
        self.policy = policy
        self.adapted = set(adapted)
        self._counts: dict[str, int] = {}
        self._totals: dict[str, float] = {}

    def observe(
        self, service: str, profile: "ServiceProfile | None", latency: float
    ) -> None:
        """Record one remote fetch; raise :class:`PlanDrift` on divergence."""
        if service in self.adapted or profile is None:
            return
        expected = profile.response_time
        if expected <= 0:
            return
        count = self._counts.get(service, 0) + 1
        total = self._totals.get(service, 0.0) + latency
        self._counts[service] = count
        self._totals[service] = total
        if count < self.policy.min_fetches:
            return
        mean = total / count
        if mean > self.policy.latency_factor * expected:
            raise PlanDrift(service, mean, expected, count)

    def observed_response_times(self) -> dict[str, float]:
        """Mean observed latency per service (for re-costing)."""
        return {
            name: self._totals[name] / count
            for name, count in self._counts.items()
            if count
        }


_HEDGE_POOL: ThreadPoolExecutor | None = None
_HEDGE_POOL_LOCK = threading.Lock()


def _hedge_pool() -> ThreadPoolExecutor:
    """The process-wide pool hedged duplicates run on (lazily built).

    Mirrors the ``ParallelExecutor`` fan-out pool: small, shared, and
    daemonic enough that leaving it alive for the process lifetime is
    cheap (four idle threads).
    """
    global _HEDGE_POOL
    with _HEDGE_POOL_LOCK:
        if _HEDGE_POOL is None:
            _HEDGE_POOL = ThreadPoolExecutor(
                max_workers=4, thread_name_prefix="hedge"
            )
        return _HEDGE_POOL


def resilient_fetch(
    config: ResilienceConfig,
    service: str,
    input_key: tuple,
    page: int,
    invoke: Callable[[], InvocationResult],
    stats: "ExecutionStats",
) -> InvocationResult:
    """One page pull under *config*: retry, hedge, demote.

    ``invoke`` performs one raw remote invocation (no cache lookup, no
    accounting — both seams keep those outside, so only the winning
    response is ever stored or counted).  Returns the winning
    :class:`InvocationResult`, with accumulated backoff folded into
    its reported latency.  Raises :class:`UnresponsiveService` when
    retries are exhausted in partial-results mode, the final transient
    error otherwise.
    """
    retry = config.retry
    cap = retry.attempts_for(service) if retry is not None else 1
    attempt = 0
    overhead = 0.0  # virtual: backoff charged to the winning fetch
    while True:
        try:
            result = invoke()
        except TRANSIENT_ERRORS as error:
            stats.wasted_fetches += 1
            attempt += 1
            exhausted = attempt >= cap
            delay = 0.0
            if not exhausted:
                assert retry is not None
                delay = retry.backoff(service, input_key, attempt)
                if (
                    retry.deadline is not None
                    and overhead + delay > retry.deadline
                ):
                    exhausted = True
            if exhausted:
                if config.partial_results:
                    raise UnresponsiveService(
                        service, input_key, page, attempt, error
                    ) from error
                raise
            stats.retries += 1
            stats.retry_backoff += delay
            overhead += delay
            continue
        result = _maybe_hedge(config, result, invoke, stats)
        if overhead:
            result = replace(result, latency=result.latency + overhead)
        return result


def _maybe_hedge(
    config: ResilienceConfig,
    primary: InvocationResult,
    invoke: Callable[[], InvocationResult],
    stats: "ExecutionStats",
) -> InvocationResult:
    """Duplicate a straggling pull; return the winning response."""
    hedge = config.hedge
    if hedge is None or primary.latency <= hedge.threshold:
        return primary
    winner = primary
    for _ in range(max(1, hedge.max_hedges)):
        stats.hedged_pulls += 1
        future = _hedge_pool().submit(invoke)
        try:
            backup = future.result()
        except TRANSIENT_ERRORS:
            stats.wasted_fetches += 1  # the duplicate itself failed
            continue
        if backup.latency < winner.latency:
            stats.hedged_wins += 1
            winner = backup
        stats.wasted_fetches += 1  # exactly one of the pair is discarded
        if winner.latency <= hedge.threshold:
            break  # no longer a straggler: stop duplicating
    return winner


class RetryingPageSource:
    """Retry wrapper for a :class:`~repro.execution.lazy.PageSource`.

    For page sources whose ``fetch`` is *idempotent and accounting-
    free* (test sources, replayed traces), this lifts the retry layer
    to the page-source seam so a bare
    :class:`~repro.execution.lazy.LazyServiceCursor` survives
    transient fetch failures.  The engine's own cache-backed source
    embeds :func:`resilient_fetch` *inside* its fetch instead (below
    the cache lookup/store), so hedged or retried duplicates can never
    double-store a page or double-count a call.
    """

    def __init__(
        self,
        source,
        config: ResilienceConfig,
        stats: "ExecutionStats",
        service: str = "<page-source>",
        input_key: tuple = (),
    ) -> None:
        self._source = source
        self._config = config
        self._stats = stats
        self._service = service
        self._input_key = input_key

    @property
    def budget(self) -> int:
        return self._source.budget

    def swap_stats(self, stats: object) -> None:
        # Rebind both: the wrapped source's accounting *and* this
        # wrapper's own retry/wasted-fetch counters must land on the
        # new epoch's statistics, or a resumed round's retries would be
        # charged to the round that created the source.
        self._source.swap_stats(stats)
        self._stats = stats

    def fetch(self, page: int):
        retry = self._config.retry
        cap = retry.attempts_for(self._service) if retry is not None else 1
        attempt = 0
        while True:
            try:
                return self._source.fetch(page)
            except TRANSIENT_ERRORS as error:
                self._stats.wasted_fetches += 1
                attempt += 1
                if attempt >= cap:
                    if self._config.partial_results:
                        raise UnresponsiveService(
                            self._service, self._input_key, page, attempt,
                            error,
                        ) from error
                    raise
                assert retry is not None
                self._stats.retries += 1
                self._stats.retry_backoff += retry.backoff(
                    self._service, self._input_key, attempt
                )


# -- partial-result certificates -------------------------------------------


def unit_token(service: str, input_key: tuple) -> str:
    """Canonical rendering of one ``(service, input setting)`` unit.

    Input items are sorted so the token is independent of the engine's
    position-iteration order; used both for dropped units and for
    per-answer attribution, so the two cross-reference exactly.
    """
    pattern_code, items = input_key
    return f"{service}[{pattern_code} {sorted(items)!r}]"


@dataclass(frozen=True)
class DroppedUnit:
    """One demoted block: a service input setting that never answered."""

    service: str
    input_key: tuple
    page: int
    attempts: int
    reason: str

    @property
    def unit(self) -> tuple[str, tuple]:
        return (self.service, self.input_key)

    @property
    def token(self) -> str:
        return unit_token(self.service, self.input_key)

    def to_dict(self) -> dict:
        return {
            "service": self.service,
            "unit": self.token,
            "page": self.page,
            "attempts": self.attempts,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class SubstitutedUnit:
    """One rerouted block: a unit served by an equivalent sibling.

    The unit's own service was unresponsive (or drifted far from its
    costed profile), and ``replacement`` — a registered service with
    the same signature domains and profile kind — answered its input
    setting instead.  Unlike a :class:`DroppedUnit` the unit's data
    *is* in the answer, just from the sibling; recording it keeps the
    certificate honest about which remote actually served each block.
    """

    service: str
    input_key: tuple
    replacement: str

    @property
    def unit(self) -> tuple[str, tuple]:
        return (self.service, self.input_key)

    @property
    def token(self) -> str:
        return unit_token(self.service, self.input_key)

    def to_dict(self) -> dict:
        return {
            "service": self.service,
            "unit": self.token,
            "replacement": self.replacement,
        }


@dataclass(frozen=True)
class PartialResultCertificate:
    """What a partial-results execution dropped, and what remains.

    ``dropped`` lists every demoted unit (empty for a fault-free run —
    the certificate is then a *completeness* witness).
    ``dropped_services`` names each service with at least one dropped
    block; such a service may still appear in answers through its
    *other*, responsive blocks — ``answer_units`` (one tuple of unit
    tokens per returned answer, in answer order) shows exactly which
    blocks produced each row, and by construction never intersects
    ``dropped``.  ``substituted`` lists every unit rerouted onto an
    equivalent sibling service (empty unless sibling fallback or
    adaptive substitution actually fired, so fault-free renderings are
    unchanged in content); a substituted unit's answers attribute to
    the *replacement* service's token in ``answer_units``.
    """

    dropped: tuple[DroppedUnit, ...]
    responsive_services: tuple[str, ...]
    dropped_services: tuple[str, ...]
    answer_units: tuple[tuple[str, ...], ...]
    substituted: tuple[SubstitutedUnit, ...] = ()

    @property
    def is_partial(self) -> bool:
        """True when at least one unit was dropped."""
        return bool(self.dropped)

    def to_dict(self) -> dict:
        return {
            "partial": self.is_partial,
            "dropped": [unit.to_dict() for unit in self.dropped],
            "responsive_services": list(self.responsive_services),
            "dropped_services": list(self.dropped_services),
            "answer_units": [list(units) for units in self.answer_units],
            "substituted": [unit.to_dict() for unit in self.substituted],
        }


def _answer_units(
    plan: "QueryPlan",
    row: "Row",
    substituted: Mapping[tuple[str, tuple], str] = {},
) -> tuple[str, ...]:
    """The unit tokens of the blocks that produced one answer row.

    Every answer satisfies every service atom of the plan, and the
    input setting of each service node *for this answer* is recoverable
    from the answer's own bindings (constants resolve directly, bound
    variables from the row) — so attribution needs no execution-time
    bookkeeping at all.  A unit rerouted onto a sibling attributes to
    the *replacement* service's token: the answer really came from it.
    """
    tokens = []
    for node in plan.service_nodes:
        assert node.atom is not None and node.pattern is not None
        items = []
        for position in node.pattern.input_positions:
            term = node.atom.term_at(position)
            value = getattr(term, "value", None)
            if value is None:
                value = row.bindings.get(term)
            items.append((position, value))
        input_key = (node.pattern.code, tuple(items))
        serving = node.service_name
        if substituted:
            serving = substituted.get((serving, input_key), serving)
        tokens.append(unit_token(serving, input_key))
    return tuple(sorted(tokens))


def build_certificate(
    plan: "QueryPlan",
    rows: "list[Row]",
    demoted: Mapping[tuple[str, tuple], UnresponsiveService],
    substituted: Mapping[tuple[str, tuple], str] = {},
) -> PartialResultCertificate:
    """The partial-result certificate for one finished execution."""
    plan_services = sorted(
        {node.service_name for node in plan.service_nodes}
    )
    dropped = tuple(
        DroppedUnit(
            service=failure.service,
            input_key=failure.input_key,
            page=failure.page,
            attempts=failure.attempts,
            reason=str(failure.cause),
        )
        for (service, _), failure in sorted(
            demoted.items(), key=lambda item: repr(item[0])
        )
        if service in plan_services
    )
    dropped_services = sorted({unit.service for unit in dropped})
    responsive = tuple(
        name for name in plan_services if name not in dropped_services
    )
    substitutions = tuple(
        SubstitutedUnit(
            service=service, input_key=input_key, replacement=replacement
        )
        for (service, input_key), replacement in sorted(
            substituted.items(), key=lambda item: repr(item[0])
        )
        if service in plan_services
    )
    return PartialResultCertificate(
        dropped=dropped,
        responsive_services=responsive,
        dropped_services=tuple(dropped_services),
        answer_units=tuple(
            _answer_units(plan, row, substituted) for row in rows
        ),
        substituted=substitutions,
    )
