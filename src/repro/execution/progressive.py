"""Progressive execution: "ask for more" (Section 2.2).

"We also assume that a plan execution can be continued, by producing
more answers.  A user can either be satisfied with the first k answers,
or ask for more results of the same query ..."

The :class:`ProgressiveExecutor` runs a plan with its current fetching
factors and, when the user asks for more than it produced, grows the
factors of the chunked services (doubling, bounded by decay caps) and
re-executes.  Rounds share an **optimal logical cache**, so every call
already issued in an earlier round is answered locally — continuing a
query only pays for the *new* fetches, exactly as a resumed execution
would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.execution.cache import CacheSetting, make_cache
from repro.execution.engine import ExecutionEngine, ExecutionMode, ExecutionResult
from repro.model.terms import Variable
from repro.plans.dag import QueryPlan
from repro.services.registry import ServiceRegistry


@dataclass
class ProgressiveRound:
    """Bookkeeping for one execution round."""

    fetches: dict[int, int]
    answers: int
    new_calls: int
    elapsed: float


@dataclass
class ProgressiveExecutor:
    """Re-executes a plan with growing fetch factors until satisfied.

    The logical cache persists across rounds (optimal caching), so a
    continuation never repeats a call already made.
    """

    registry: ServiceRegistry
    plan: QueryPlan
    head: tuple[Variable, ...] = ()
    mode: ExecutionMode = ExecutionMode.PARALLEL
    max_rounds: int = 8
    rounds: list[ProgressiveRound] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._engine = ExecutionEngine(
            self.registry, cache_setting=CacheSetting.OPTIMAL, mode=self.mode
        )
        # One shared cache across all rounds: continuations are free
        # where they overlap with what was already fetched.
        self._shared_cache = make_cache(CacheSetting.OPTIMAL)
        self._last_result: ExecutionResult | None = None

    def fetch_vector(self) -> dict[int, int]:
        """Current fetching factors of the chunked nodes."""
        return {
            node.atom_index: node.fetches
            for node in self.plan.chunked_service_nodes
        }

    def _grow_fetches(self) -> bool:
        """Double every chunked factor, respecting decay caps.

        Returns False when no factor can grow any further.
        """
        grew = False
        for node in self.plan.chunked_service_nodes:
            assert node.profile is not None
            cap = node.profile.max_fetches()
            target = node.fetches * 2
            if cap is not None:
                target = min(target, cap)
            if target > node.fetches:
                node.fetches = target
                grew = True
        return grew

    def run(self, k: int) -> ExecutionResult:
        """Produce at least *k* answers, growing fetches as needed.

        Stops early when every factor is capped (k may be unreachable,
        as the paper notes for services with small decay bounds).
        """
        result = self._execute_round()
        while len(result.rows) < k and len(self.rounds) < self.max_rounds:
            if not self._grow_fetches():
                break  # every factor capped by its decay bound
            previous_answers = len(result.rows)
            result = self._execute_round()
            latest = self.rounds[-1]
            if latest.new_calls == 0 and latest.answers == previous_answers:
                break  # the services are exhausted: no more data exists
        self._last_result = result
        return result

    def more(self, additional: int) -> ExecutionResult:
        """Continue the query: ask for *additional* more answers."""
        already = len(self._last_result.rows) if self._last_result else 0
        return self.run(already + additional)

    def _execute_round(self) -> ExecutionResult:
        calls_before = self._total_calls()
        result = self._engine.execute(
            self.plan,
            head=self.head,
            reset_remote_caches=not self.rounds,
            shared_cache=self._shared_cache,
        )
        self.rounds.append(
            ProgressiveRound(
                fetches=self.fetch_vector(),
                answers=len(result.rows),
                new_calls=result.stats.total_calls,
                elapsed=result.elapsed,
            )
        )
        del calls_before
        return result

    def _total_calls(self) -> int:
        return sum(r.new_calls for r in self.rounds)
