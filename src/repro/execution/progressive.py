"""Progressive execution: "ask for more" (Section 2.2).

"We also assume that a plan execution can be continued, by producing
more answers.  A user can either be satisfied with the first k answers,
or ask for more results of the same query ..."

The :class:`ProgressiveExecutor` runs a plan with its current fetching
factors and, when the user asks for more than it produced, grows the
factors of the chunked services (doubling, bounded by decay caps) and
re-executes.  Rounds share one logical cache (optimal by default), so
every call already issued in an earlier round is answered locally —
continuing a query only pays for the *new* fetches, exactly as a
resumed execution would.

Under ``ExecutionMode.STREAMED`` the continuation is cheaper still:
each round leaves behind a suspended
:class:`~repro.execution.joins.JoinStream` over the final join's
inputs, and asking for more first *resumes* that stream — walking
further into the candidate plane.  Over eagerly materialized inputs a
resume issues **no service call at all**, under any cache setting.
Over lazily fetched inputs (single- and multi-feed service nodes, see
:mod:`repro.execution.lazy`) the resumed walk may *grow cursor demand*:
it pulls further pages within the round's fetch budget — for a
multi-feed input, from the per-feed block whose rank floor is lowest,
leaving blocks the certificate already clears untouched — still far
cheaper than re-executing, recorded honestly on the resumed round's
statistics, and stored in the shared logical cache so any later
re-execution finds them for free.  Only when the suspended stream
exhausts its budgeted plane without reaching the requested k does the
executor fall back to growing fetches and re-executing (where the
shared logical cache again absorbs every already-fetched page).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.execution.cache import CacheSetting, LogicalCache, make_cache
from repro.execution.engine import ExecutionEngine, ExecutionMode, ExecutionResult
from repro.execution.resilience import (
    DriftMonitor,
    PlanDrift,
    ResilienceConfig,
    UnresponsiveService,
)
from repro.execution.results import ResultTable
from repro.execution.stats import ExecutionStats
from repro.model.terms import Variable
from repro.plans.dag import QueryPlan
from repro.services.registry import ServiceRegistry


@dataclass
class ProgressiveRound:
    """Bookkeeping for one execution round.

    ``resumed`` marks rounds served by resuming the previous round's
    suspended stream instead of re-executing the plan.  With eagerly
    materialized join inputs such rounds issue zero service calls and
    zero fetches; with lazily fetched inputs ``new_calls`` records the
    budgeted pages the grown cursor demand actually pulled (0 while
    the walk stays within already-fetched pages).

    ``stats`` is the round's full :class:`ExecutionStats` — kept so a
    caller that grew through several rounds can report the *total*
    work of a request (each round's statistics object is fresh; the
    final result alone would undercount every earlier round).
    """

    fetches: dict[int, int]
    answers: int
    new_calls: int
    elapsed: float
    resumed: bool = False
    stats: ExecutionStats | None = None


@dataclass
class ProgressiveExecutor:
    """Re-executes a plan with growing fetch factors until satisfied.

    **Contract**: :meth:`run` (and :meth:`more`) always returns the
    exact top answers of the plan under its *current* fetch state —
    bit-identical to a from-scratch full execution followed by
    ``compose_ranking`` — no matter how the rounds were served (fresh
    execution, stream resume, or fetch growth).

    **Cost behavior**: the logical cache persists across rounds
    (``cache_setting``, optimal by default), so a continuation never
    repeats a call already made.  With ``mode=ExecutionMode.STREAMED``
    continuations resume the suspended top-k stream first — free over
    already-fetched inputs, at most a few budgeted page fetches over
    lazily fetched ones — and only re-execute (with doubled fetch
    factors) when the stream's budgeted plane cannot prove the larger
    top-k.  ``lazy_streaming=False`` restores eager materialization
    inside streamed rounds.
    """

    registry: ServiceRegistry
    plan: QueryPlan
    head: tuple[Variable, ...] = ()
    mode: ExecutionMode = ExecutionMode.PARALLEL
    cache_setting: CacheSetting = CacheSetting.OPTIMAL
    #: Bounds the *executing* rounds (those that run the plan); resumed
    #: stream rounds are nearly free and never count against it.
    max_rounds: int = 8
    lazy_streaming: bool = True
    #: An externally owned logical cache to run against (the serving
    #: layer hands every session the same cache, so one tenant's
    #: fetches answer another tenant's overlapping calls); when None a
    #: private per-executor cache is created as before.
    shared_cache: LogicalCache | None = None
    #: Whether the first round may clear the remote servers' own
    #: caches.  Experiments want True (independence); a long-lived
    #: server wants False (sessions arrive into a warm world).
    reset_remote: bool = True
    #: Retry/hedge/partial-results behavior of every page pull
    #: (:mod:`repro.execution.resilience`); demotions persist across
    #: rounds on the engine's mask, so a continuation never re-awaits
    #: a block already proven unresponsive.
    resilience: ResilienceConfig | None = None
    #: Opt-in per-row ``(service, input key, page)`` audit records
    #: (:data:`~repro.execution.results.ProvenanceRecord`); provenance
    #: rides inside :class:`~repro.execution.results.Row`, so resumed
    #: stream rounds carry it automatically.
    row_provenance: bool = False
    #: Observes remote fetch latencies against the plan's costed
    #: profiles and raises :class:`PlanDrift` on divergence — installed
    #: by the adaptive layer, None (structurally inert) otherwise.
    drift_monitor: DriftMonitor | None = None
    rounds: list[ProgressiveRound] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._engine = ExecutionEngine(
            self.registry,
            cache_setting=self.cache_setting,
            mode=self.mode,
            lazy_streaming=self.lazy_streaming,
            resilience=self.resilience,
            row_provenance=self.row_provenance,
            drift_monitor=self.drift_monitor,
        )
        # One shared cache across all rounds: continuations are free
        # where they overlap with what was already fetched.
        self._shared_cache = (
            self.shared_cache
            if self.shared_cache is not None
            else make_cache(self.cache_setting)
        )
        self._last_result: ExecutionResult | None = None

    @property
    def engine(self) -> ExecutionEngine:
        """The underlying engine (the adaptive layer reroutes on it)."""
        return self._engine

    def fetch_vector(self) -> dict[int, int]:
        """Current fetching factors of the chunked nodes."""
        return {
            node.atom_index: node.fetches
            for node in self.plan.chunked_service_nodes
        }

    def _grow_fetches(self) -> bool:
        """Double every chunked factor, respecting decay caps.

        Returns False when no factor can grow any further.
        """
        grew = False
        for node in self.plan.chunked_service_nodes:
            assert node.profile is not None
            cap = node.profile.max_fetches()
            target = node.fetches * 2
            if cap is not None:
                target = min(target, cap)
            if target > node.fetches:
                node.fetches = target
                grew = True
        return grew

    def run(self, k: int) -> ExecutionResult:
        """Produce at least *k* answers, growing fetches as needed.

        Stops early when every factor is capped (k may be unreachable,
        as the paper notes for services with small decay bounds), or
        when a growth round processes no new raw tuples while the
        answer count stays put — the services are exhausted.  The
        exhaustion signal is ``tuples_processed`` (cache-independent),
        *not* the remote-call count: an executor running against a
        pre-warmed shared cache (the serving layer) issues zero remote
        calls while still uncovering new data, and must keep growing
        exactly as a cold executor would.
        """
        result = self._resume_stream(k)
        if result is None:
            result = self._execute_round(k)
            baseline_processed = result.stats.tuples_processed
        else:
            # A resume-served round must still arm the exhaustion
            # break, or the first growth round after it always burns
            # one extra re-execution against exhausted services.
            baseline_processed = self._resumed_baseline()
        while len(result.rows) < k and self._executed_rounds() < self.max_rounds:
            if not self._grow_fetches():
                break  # every factor capped by its decay bound
            previous_answers = len(result.rows)
            result = self._execute_round(k)
            processed = result.stats.tuples_processed
            latest = self.rounds[-1]
            if (
                baseline_processed is not None
                and processed <= baseline_processed
                and latest.answers == previous_answers
            ):
                break  # the services are exhausted: no more data exists
            baseline_processed = processed
        self._last_result = result
        return result

    def more(self, additional: int) -> ExecutionResult:
        """Continue the query: ask for *additional* more answers."""
        already = len(self._last_result.rows) if self._last_result else 0
        return self.run(already + additional)

    def _resume_stream(self, k: int) -> ExecutionResult | None:
        """Serve *k* by resuming the suspended stream, if possible.

        Walks the previous round's :class:`JoinStream` further into
        the candidate plane.  Over already-fetched inputs no service is
        ever called; over lazily fetched inputs the grown demand may
        pull further budgeted pages — the stream's accounting is
        rebound to this round's fresh statistics first, so those
        fetches are recorded here and never mutate the counters of the
        round that created the stream.  Returns None only when there
        is no suspended stream.  When the stream exhausts its plane
        below *k*, the drained answers still become this round's
        result (re-executing with unchanged fetches would only
        recompute them), and ``run`` proceeds directly to fetch growth.
        """
        last = self._last_result
        if last is None or last.stream is None:
            return None
        stream = last.stream
        stats = ExecutionStats()
        stream.rebind_stats(stats)
        fetched_before = stream.lazy_tuples_fetched
        saved_before = stream.lazy_pages_saved
        try:
            rows = stream.top(k)
        except UnresponsiveService as failure:
            # A lazily fetched block died mid-resume (partial mode).
            # The suspended stream cannot retract what it already
            # placed, so reroute-or-demote the unit on the engine's
            # persistent state, drop the poisoned stream, and let
            # ``run`` fall back to a fresh execution — which serves the
            # block from its sibling (or masks it) and re-serves
            # everything else from the shared cache.
            self._engine.handle_unresponsive(failure)
            self._last_result = None
            return None
        except PlanDrift as drift:
            # Latency drift observed mid-resume: hand the adaptive
            # layer this round's partial accounting (the aborted work
            # happened and must stay counted) along with the signal.
            if drift.stats is None:
                drift.stats = stats
            raise
        stats.streamed_cells_visited = stream.cells_visited
        stats.early_exit_cells_skipped = stream.cells_skipped
        stats.lazy_tuples_fetched = stream.lazy_tuples_fetched - fetched_before
        # Delta, exactly like the tuples counter above: the stream's
        # ``lazy_pages_saved`` is cumulative, and earlier rounds already
        # reported their share — a resumed round only reports the
        # *change* its own pulls caused (<= 0 when the grown demand
        # fetched pages an earlier round had counted as saved), so the
        # per-round values sum to the stream's true current total.
        stats.lazy_calls_saved = stream.lazy_pages_saved - saved_before
        stats.lazy_blocks = stream.lazy_blocks
        stats.lazy_blocks_untouched = stream.lazy_blocks_untouched
        # Virtual time of the resume: the lazy cursors sit on parallel
        # branches, so the round takes as long as its busiest service
        # (0.0 for the common all-from-fetched-pages resume).
        stats.elapsed = max(
            (s.busy_time for s in stats.per_service.values()), default=0.0
        )
        table = ResultTable(
            head=tuple(self.head),
            rows=rows,
            complete=stream.is_complete(rows),
        )
        result = ExecutionResult(
            table=table,
            stats=stats,
            elapsed=stats.elapsed,
            k=k,
            node_output_sizes={},
            stream=stream,
            certificate=self._engine.certificate_for(self.plan, rows),
        )
        self.rounds.append(
            ProgressiveRound(
                fetches=self.fetch_vector(),
                answers=len(rows),
                new_calls=stats.total_calls,
                elapsed=stats.elapsed,
                resumed=True,
                stats=stats,
            )
        )
        return result

    def _execute_round(self, k: int | None = None) -> ExecutionResult:
        result = self._engine.execute(
            self.plan,
            head=self.head,
            k=k,
            reset_remote_caches=self.reset_remote and not self.rounds,
            shared_cache=self._shared_cache,
        )
        self.rounds.append(
            ProgressiveRound(
                fetches=self.fetch_vector(),
                answers=len(result.rows),
                new_calls=result.stats.total_calls,
                elapsed=result.elapsed,
                stats=result.stats,
            )
        )
        return result

    def _resumed_baseline(self) -> int | None:
        """The exhaustion baseline after a resume-served round.

        A fresh execution's ``tuples_processed`` covers every page the
        walk demands, cached or not; the equivalent figure once a
        stream resume served the round is the *last executed* round's
        count plus every later resume's incremental pulls (resumed
        rounds record only the pages they newly demanded, so the sum
        never double-counts).  None when no round ever executed the
        plan — then there is nothing to compare a growth round against.
        """
        baseline: int | None = None
        for r in self.rounds:
            if r.stats is None:
                continue
            if not r.resumed:
                baseline = r.stats.tuples_processed
            elif baseline is not None:
                baseline += r.stats.tuples_processed
        return baseline

    def _executed_rounds(self) -> int:
        """Rounds that actually ran the plan (resumed rounds are free)."""
        return sum(1 for r in self.rounds if not r.resumed)

    def _total_calls(self) -> int:
        return sum(r.new_calls for r in self.rounds)
