"""Execution engine: caches, rank-aware joins, dataflow, statistics."""

from repro.execution.cache import (
    CacheSetting,
    LogicalCache,
    NoCache,
    OneCallCache,
    OptimalCache,
    make_cache,
)
from repro.execution.engine import (
    ExecutionEngine,
    ExecutionError,
    ExecutionMode,
    ExecutionResult,
    execute_plan,
)
from repro.execution.joins import (
    JoinStream,
    execute_join,
    execute_join_hashed,
    execute_join_streamed,
    is_order_rank_consistent,
    join_order,
    merge_scan_order,
    nested_loop_order,
)
from repro.execution.lazy import (
    FetchedPage,
    LazyServiceCursor,
    ListPageSource,
    MaterializedCursor,
    MultiFeedCursor,
    RowCursor,
)
from repro.execution.progressive import ProgressiveExecutor, ProgressiveRound
from repro.execution.results import ResultTable, Row, compose_ranking
from repro.execution.stats import ExecutionStats, ServiceCallStats

__all__ = [
    "CacheSetting",
    "ExecutionEngine",
    "ExecutionError",
    "ExecutionMode",
    "ExecutionResult",
    "ExecutionStats",
    "FetchedPage",
    "JoinStream",
    "LazyServiceCursor",
    "ListPageSource",
    "LogicalCache",
    "MaterializedCursor",
    "MultiFeedCursor",
    "NoCache",
    "OneCallCache",
    "OptimalCache",
    "ProgressiveExecutor",
    "RowCursor",
    "ProgressiveRound",
    "ResultTable",
    "Row",
    "ServiceCallStats",
    "compose_ranking",
    "execute_join",
    "execute_join_hashed",
    "execute_join_streamed",
    "execute_plan",
    "is_order_rank_consistent",
    "join_order",
    "make_cache",
    "merge_scan_order",
    "nested_loop_order",
]
