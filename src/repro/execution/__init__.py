"""Execution engine: caches, rank-aware joins, dataflow, statistics."""

from repro.execution.cache import (
    CacheSetting,
    LogicalCache,
    NoCache,
    OneCallCache,
    OptimalCache,
    ThreadSafeCache,
    make_cache,
)
from repro.execution.engine import (
    ExecutionEngine,
    ExecutionError,
    ExecutionMode,
    ExecutionResult,
    execute_plan,
)
from repro.execution.joins import (
    JoinStream,
    execute_join,
    execute_join_hashed,
    execute_join_streamed,
    is_order_rank_consistent,
    join_order,
    merge_scan_order,
    nested_loop_order,
)
from repro.execution.lazy import (
    FetchedPage,
    LazyServiceCursor,
    ListPageSource,
    MaterializedCursor,
    MultiFeedCursor,
    RowCursor,
)
from repro.execution.parallel import ParallelExecutor
from repro.execution.progressive import ProgressiveExecutor, ProgressiveRound
from repro.execution.results import ResultTable, Row, compose_ranking
from repro.execution.slots import (
    SlotJoinPlan,
    SlotLayout,
    compile_comparison,
    compile_expression,
    compile_predicates,
    layout_for_rows,
)
from repro.execution.stats import ExecutionStats, ServiceCallStats

__all__ = [
    "CacheSetting",
    "ExecutionEngine",
    "ExecutionError",
    "ExecutionMode",
    "ExecutionResult",
    "ExecutionStats",
    "FetchedPage",
    "JoinStream",
    "LazyServiceCursor",
    "ListPageSource",
    "LogicalCache",
    "MaterializedCursor",
    "MultiFeedCursor",
    "NoCache",
    "OneCallCache",
    "OptimalCache",
    "ParallelExecutor",
    "ProgressiveExecutor",
    "RowCursor",
    "ProgressiveRound",
    "ResultTable",
    "Row",
    "ServiceCallStats",
    "SlotJoinPlan",
    "SlotLayout",
    "ThreadSafeCache",
    "compile_comparison",
    "compile_expression",
    "compile_predicates",
    "compose_ranking",
    "execute_join",
    "execute_join_hashed",
    "execute_join_streamed",
    "execute_plan",
    "is_order_rank_consistent",
    "join_order",
    "layout_for_rows",
    "make_cache",
    "merge_scan_order",
    "nested_loop_order",
]
