"""Execution statistics: service calls, cache hits, and timings.

These counters regenerate the measurements of Figure 11: the number of
calls issued to each service under the various plans and cache
settings, and the total (virtual) execution time.

Terminology: a **call** is one input parameter setting submitted to the
remote service (what the paper's charts count); a **fetch** is one
remote page request — a chunked call with fetching factor ``F``
performs up to ``F`` fetches.  Calls fully absorbed by the logical
cache are counted as ``cache_hits`` and never reach the remote side.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ServiceCallStats:
    """Counters for one service within one execution.

    ``tuples_fetched`` counts the raw tuples received from the remote
    side (before binding and filtering) — the quantity lazy fetching
    reduces, and what the lazy bench compares against eager streaming.
    """

    calls: int = 0
    fetches: int = 0
    cache_hits: int = 0
    remote_cache_hits: int = 0
    busy_time: float = 0.0
    tuples_fetched: int = 0

    def record_fetch(
        self, latency: float, from_remote_cache: bool, tuples: int = 0
    ) -> None:
        """Account one remote page fetch returning *tuples* raw tuples."""
        self.fetches += 1
        self.busy_time += latency
        self.tuples_fetched += tuples
        if from_remote_cache:
            self.remote_cache_hits += 1


@dataclass
class ExecutionStats:
    """Per-service counters plus global totals for one execution.

    ``streamed_cells_visited`` / ``early_exit_cells_skipped`` trace the
    streamed top-k pipeline: how many candidate-plane cells the final
    join actually visited and how many it proved unable to enter the
    top-k without visiting them.  Both stay 0 for full-scan executions
    (and ``early_exit_cells_skipped`` is 0 whenever ``k`` covers the
    fetched plane, as proving a full-plane top-k complete requires
    visiting every cell).

    ``streamed_fallback`` disambiguates those zeros: it is True when a
    ``STREAMED`` execution with a ``k`` budget found no streamable
    final join (service-terminal plans) and fell back to full
    materialization — the zeros then mean "nothing was streamed", not
    "the stream visited nothing".  Benches must check it instead of
    logging the counters as if a stream had run.

    ``lazy_tuples_fetched`` / ``lazy_calls_saved`` trace demand-driven
    service fetching: raw tuples pulled through lazy input cursors,
    and budgeted page fetches those cursors never issued (the remote
    work early exit saved — an upper bound when a service would have
    run dry mid-budget, exact otherwise).  Both stay 0 when no input
    was fetched lazily.  On a resumed progressive round both counters
    are *deltas* against the suspended stream's cumulative totals — a
    resume that pulls pages an earlier round counted as saved reports
    a negative ``lazy_calls_saved`` — so summing either counter over a
    session's rounds always yields the stream's true current total.

    ``lazy_blocks`` / ``lazy_blocks_untouched`` are the per-block view
    of the same saving: a lazy cursor owns one budgeted block per feed
    tuple (one for single-feed nodes, many for multi-feed nodes of
    serial plans), and an *untouched* block never issued a single page
    fetch — its entire budget is remote work saved.
    """

    per_service: dict[str, ServiceCallStats] = field(default_factory=dict)
    elapsed: float = 0.0
    streamed_cells_visited: int = 0
    early_exit_cells_skipped: int = 0
    streamed_fallback: bool = False
    lazy_tuples_fetched: int = 0
    lazy_calls_saved: int = 0
    lazy_blocks: int = 0
    lazy_blocks_untouched: int = 0
    #: Raw tuples that flowed through the logical-cache layer this
    #: execution, whether served from the cache or fetched remotely.
    #: Unlike ``tuples_fetched`` this is *cache-independent*: two
    #: executions of the same plan with the same fetch state process
    #: the same tuples no matter how warm their caches are — which is
    #: what lets progressive fetch growth detect data exhaustion
    #: without misreading cache-absorbed rounds as "no more data".
    tuples_processed: int = 0
    #: Real (wall-clock) seconds spent by a :class:`ParallelExecutor`
    #: run and the worker count it used; both stay 0 for the virtual
    #: -time engine, whose ``elapsed`` is model time, not wall time.
    wall_time: float = 0.0
    parallel_workers: int = 0
    #: Resilience-layer counters (:mod:`repro.execution.resilience`);
    #: all stay 0 when no resilience config is active — the bit-
    #: identity contract.  ``retries`` counts re-attempts taken after
    #: a transient page failure, ``retry_backoff`` the virtual seconds
    #: of backoff those re-attempts charged, ``hedged_pulls`` /
    #: ``hedged_wins`` the straggler duplicates issued and the ones
    #: that beat their primary, ``wasted_fetches`` every remote round
    #: trip whose response was discarded (failed attempts + the losing
    #: half of each hedged pair) — deliberately *not* part of the
    #: per-service ``fetches``, which keep counting only the winning
    #: responses so fault-free accounting differentials stay exact.
    #: ``demoted_blocks`` is the number of units a partial-results run
    #: dropped (``len(certificate.dropped)``).
    retries: int = 0
    retry_backoff: float = 0.0
    hedged_pulls: int = 0
    hedged_wins: int = 0
    wasted_fetches: int = 0
    demoted_blocks: int = 0
    #: Units a partial-results run rerouted onto a sibling service
    #: instead of dropping (``len(certificate.substituted)``).
    substituted_blocks: int = 0

    def service(self, name: str) -> ServiceCallStats:
        """The (auto-created) counters for service *name*."""
        if name not in self.per_service:
            self.per_service[name] = ServiceCallStats()
        return self.per_service[name]

    def calls(self, name: str) -> int:
        """Number of calls issued to service *name*."""
        return self.service(name).calls

    @property
    def total_calls(self) -> int:
        """Calls across all services."""
        return sum(s.calls for s in self.per_service.values())

    @property
    def total_fetches(self) -> int:
        """Remote page fetches across all services."""
        return sum(s.fetches for s in self.per_service.values())

    @property
    def total_cache_hits(self) -> int:
        """Logical-cache hits across all services."""
        return sum(s.cache_hits for s in self.per_service.values())

    @property
    def total_tuples_fetched(self) -> int:
        """Raw tuples received from remote services, across all services."""
        return sum(s.tuples_fetched for s in self.per_service.values())

    def summary(self) -> str:
        """Readable multi-line rendering."""
        lines = [f"elapsed: {self.elapsed:.1f}s  calls: {self.total_calls}"]
        if self.streamed_fallback:
            lines.append(
                "  streamed: no streamable final join "
                "(service-terminal plan, full materialization)"
            )
        elif self.streamed_cells_visited or self.early_exit_cells_skipped:
            lines.append(
                f"  streamed: cells_visited={self.streamed_cells_visited}"
                f" early_exit_cells_skipped={self.early_exit_cells_skipped}"
            )
        if self.lazy_tuples_fetched or self.lazy_calls_saved:
            lines.append(
                f"  lazy: tuples_fetched={self.lazy_tuples_fetched}"
                f" calls_saved={self.lazy_calls_saved}"
            )
        if self.lazy_blocks:
            lines.append(
                f"  lazy blocks: {self.lazy_blocks}"
                f" untouched={self.lazy_blocks_untouched}"
            )
        if self.parallel_workers:
            lines.append(
                f"  parallel: workers={self.parallel_workers}"
                f" wall={self.wall_time:.2f}s"
            )
        if self.retries or self.hedged_pulls or self.wasted_fetches:
            lines.append(
                f"  resilience: retries={self.retries}"
                f" backoff={self.retry_backoff:.1f}s"
                f" hedged={self.hedged_pulls}"
                f" hedged_wins={self.hedged_wins}"
                f" wasted_fetches={self.wasted_fetches}"
            )
        if self.demoted_blocks or self.substituted_blocks:
            lines.append(
                f"  partial: demoted_blocks={self.demoted_blocks}"
                f" substituted_blocks={self.substituted_blocks}"
            )
        for name in sorted(self.per_service):
            stats = self.per_service[name]
            lines.append(
                f"  {name:<10} calls={stats.calls:<5} fetches={stats.fetches:<5}"
                f" cache_hits={stats.cache_hits:<5}"
                f" remote_hits={stats.remote_cache_hits:<5}"
                f" busy={stats.busy_time:.1f}s"
            )
        return "\n".join(lines)
