"""Rank-preserving parallel join strategies (Section 3.3, Figure 5).

Representing the items returned by the two joined services on two
Cartesian axes, each point of the plane is a candidate join result.
The two strategies scan this space in different orders:

* **nested loop (NL)** — used when one service is highly selective and
  yields its top tuples within few fetches: all its tuples are
  retrieved first (the outer side), then the plane is scanned
  column-by-column as the other service's tuples become available;
* **merge-scan (MS)** — used when there is no a priori distinction:
  both services are fetched in parallel and the plane is traversed
  "diagonally", visiting cell ``(i, j)`` in order of increasing
  ``i + j``.

Both traversals emit pairs in a global order *consistent with the
partial orders* of the two inputs: if pair ``(i, j)`` componentwise
dominates ``(i', j')`` (``i <= i'``, ``j <= j'``, at least one strict),
it is emitted first.  This is the property tested by the hypothesis
suite.

:func:`execute_join` scans the full plane and is kept as the reference
oracle; :func:`execute_join_hashed` partitions the plane by the
shared-variable key first (only same-key cells can join) and visits
the surviving cells in the same global rank order, so the engine pays
per *matching* pair instead of per cell.

:class:`JoinStream` is the streaming early-exit pipeline on top of the
same visit orders: it walks the plane lazily, stage by stage, and
suspends as soon as a certificate proves that no unvisited cell can
still enter the requested top-k — making the cost of a top-k answer
proportional to ``k`` rather than to ``n × m``.  Its output is
bit-identical (rows, ranks, and order) to
``compose_ranking(execute_join(...), k)``.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable, Iterator, Sequence

from repro.execution.lazy import MaterializedCursor, RowCursor
from repro.execution.results import Row
from repro.execution.slots import (
    SlotJoinPlan,
    SlotLayout,
    compile_predicates,
    layout_for_rows,
)
from repro.model.predicates import Comparison
from repro.model.terms import Variable
from repro.services.registry import JoinMethod


def stage_count(method: JoinMethod, n_left: int, n_right: int) -> int:
    """Number of stages of *method*'s visit order (NL rows, MS diagonals)."""
    if n_left == 0 or n_right == 0:
        return 0
    if method is JoinMethod.NESTED_LOOP:
        return n_left
    return n_left + n_right - 1


def stage_cells(
    method: JoinMethod, n_left: int, n_right: int, stage: int
) -> Iterator[tuple[int, int]]:
    """Cells of one stage of *method*'s visit order, in emission order.

    A stage is a row of the NL plane or a diagonal (constant ``i + j``)
    of the MS plane.  This is the single source of truth for the cell
    order: the full-plane generators below and the streamed
    :class:`JoinStream` both walk stages through it, which is what
    keeps their emission orders identical by construction.
    """
    if method is JoinMethod.NESTED_LOOP:
        return ((stage, j) for j in range(n_right))
    start = max(0, stage - n_right + 1)
    stop = min(stage, n_left - 1)
    return ((i, stage - i) for i in range(start, stop + 1))


def nested_loop_order(n_left: int, n_right: int) -> Iterator[tuple[int, int]]:
    """Cell visit order of the NL strategy (outer = left/selective side)."""
    for stage in range(stage_count(JoinMethod.NESTED_LOOP, n_left, n_right)):
        yield from stage_cells(JoinMethod.NESTED_LOOP, n_left, n_right, stage)


def merge_scan_order(n_left: int, n_right: int) -> Iterator[tuple[int, int]]:
    """Cell visit order of the MS strategy: diagonals of equal i + j."""
    for stage in range(stage_count(JoinMethod.MERGE_SCAN, n_left, n_right)):
        yield from stage_cells(JoinMethod.MERGE_SCAN, n_left, n_right, stage)


def join_order(
    method: JoinMethod, n_left: int, n_right: int
) -> Iterator[tuple[int, int]]:
    """Cell visit order for *method*."""
    if n_left == 0 or n_right == 0:
        return iter(())
    if method is JoinMethod.NESTED_LOOP:
        return nested_loop_order(n_left, n_right)
    return merge_scan_order(n_left, n_right)


def is_order_rank_consistent(order: Sequence[tuple[int, int]]) -> bool:
    """Check the domination property of a visit order.

    True iff whenever cell ``a`` componentwise dominates cell ``b``
    (``a <= b`` in both coordinates, one strictly), ``a`` appears
    before ``b``.

    Runs one ``O(n log n)`` staircase sweep instead of comparing all
    cell pairs: cells are visited in emission order while a Pareto
    frontier of the maximal cells seen so far is maintained, sorted by
    ascending ``i`` (hence strictly descending ``j``).  A violation is
    exactly a new cell lying weakly below-left of an already-emitted
    one, which only the frontier can witness.
    """
    position = {cell: index for index, cell in enumerate(order)}
    xs: list[int] = []  # frontier i-coordinates, ascending
    ys: list[int] = []  # matching j-coordinates, strictly descending
    for i, j in sorted(position, key=position.__getitem__):
        # The frontier cell with the smallest i' >= i carries the
        # largest j' among all emitted cells with i' >= i.
        lo, hi = 0, len(xs)
        while lo < hi:
            mid = (lo + hi) // 2
            if xs[mid] < i:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(xs) and ys[lo] >= j:
            # Some earlier distinct cell is >= (i, j) componentwise:
            # the new cell dominates it yet is emitted later.
            return False
        # Frontier cells covered by the new one ((i', j') <= (i, j))
        # form a contiguous run ending just before the insertion point.
        start, end = 0, lo
        while start < end:
            mid = (start + end) // 2
            if ys[mid] <= j:
                end = mid
            else:
                start = mid + 1
        del xs[start:lo]
        del ys[start:lo]
        xs.insert(start, i)
        ys.insert(start, j)
    return True


def execute_join(
    method: JoinMethod,
    left: Sequence[Row],
    right: Sequence[Row],
    predicates: Sequence[Comparison] = (),
) -> list[Row]:
    """Join two row streams with a rank-preserving strategy.

    The join condition is the *natural join* on the variables shared
    by the two rows' bindings (which recombines branches forked from a
    common upstream tuple) plus the supplied comparison *predicates*
    evaluated on the merged binding.  Output order follows the
    strategy's traversal of the candidate plane, hence is consistent
    with both input orders.
    """
    output: list[Row] = []
    for i, j in join_order(method, len(left), len(right)):
        merged = left[i].merged_with(right[j])
        if merged is None:
            continue
        if all(p.holds(merged.bindings) for p in predicates):
            output.append(merged)
    return output


def _shared_key_variables(
    left: Sequence[Row], right: Sequence[Row]
) -> tuple[Variable, ...]:
    """Variables bound in *every* row of both inputs, deterministically.

    Only such variables can partition the plane: a row lacking a
    variable would have to appear in every bucket.  Variables bound on
    one side only never cause a merge conflict, so ignoring them is
    safe — the per-pair merge still checks the full bindings.
    """

    def common(rows: Iterable[Row]) -> set[Variable]:
        iterator = iter(rows)
        shared = set(next(iterator).bindings.keys())
        for row in iterator:
            if not shared:
                break
            shared &= row.bindings.keys()
        return shared

    return tuple(sorted(common(left) & common(right), key=lambda v: v.name))


def execute_join_hashed(
    method: JoinMethod,
    left: Sequence[Row],
    right: Sequence[Row],
    predicates: Sequence[Comparison] = (),
    slot_rows: bool = True,
) -> list[Row]:
    """Hash-accelerated :func:`execute_join` with identical results.

    Instead of scanning the whole ``n × m`` candidate plane, both sides
    are bucketed once by their shared-variable key; only cells whose
    key values agree on both axes can survive the natural-join merge,
    so all other cells are skipped without being visited.  The
    surviving cells are then traversed in the strategy's global rank
    order (NL: lexicographic ``(i, j)``; MS: diagonal ``(i + j, i)``) —
    the exact relative order :func:`join_order` would visit them in —
    which preserves the documented domination property across buckets,
    not just inside each one.

    ``slot_rows`` enables the slot-indexed fast path
    (:mod:`repro.execution.slots`): when both sides are homogeneous and
    every predicate compiles against the merged layout, bucketing and
    the surviving-cell loop run on fixed-width value tuples instead of
    per-row dict merges — results identical, a representation change
    only.  ``False`` forces the dict-row loop (the bench's "before"
    ablation and the differential suite's oracle).

    Falls back to the reference scan when no variable is shared by all
    rows of both sides, or when a binding value is unhashable.  The
    reference :func:`execute_join` is kept unchanged as the oracle for
    the hypothesis suite.
    """
    if not left or not right:
        return []
    if slot_rows:
        output = _hashed_join_slot_path(method, left, right, predicates)
        if output is not None:
            return output
    key_variables = _shared_key_variables(left, right)
    if not key_variables:
        return execute_join(method, left, right, predicates)
    try:
        right_buckets: dict[tuple, list[int]] = {}
        for j, row in enumerate(right):
            key = tuple(row.bindings[v] for v in key_variables)
            right_buckets.setdefault(key, []).append(j)
        cells: list[tuple[int, int]] = []
        for i, row in enumerate(left):
            key = tuple(row.bindings[v] for v in key_variables)
            matches = right_buckets.get(key)
            if matches:
                cells.extend((i, j) for j in matches)
    except TypeError:  # unhashable binding value: cannot bucket
        return execute_join(method, left, right, predicates)
    if method is not JoinMethod.NESTED_LOOP:
        cells.sort(key=lambda cell: (cell[0] + cell[1], cell[0]))
    output = []
    for i, j in cells:
        merged = left[i].merged_with(right[j])
        if merged is None:
            continue
        if all(p.holds(merged.bindings) for p in predicates):
            output.append(merged)
    return output


def _hashed_join_slot_path(
    method: JoinMethod,
    left: Sequence[Row],
    right: Sequence[Row],
    predicates: Sequence[Comparison],
) -> list[Row] | None:
    """Slot-indexed hashed join; None sends the caller to the dict path.

    Requires homogeneous sides (every row binds its side's layout) and
    predicates that compile against the merged layout.  Key variables
    are the two layouts' intersection sorted by name — identical to
    :func:`_shared_key_variables` on homogeneous inputs — so bucket
    keys, surviving cells, and visit order match the dict path exactly;
    an empty intersection or an unhashable key defers to the caller,
    which reproduces the documented full-scan fallback.
    """
    left_layout = layout_for_rows(left)
    right_layout = layout_for_rows(right)
    if left_layout is None or right_layout is None:
        return None
    shared_names = set(left_layout.index) & set(right_layout.index)
    if not shared_names:
        return None  # dict path falls back to the reference scan
    left_values = left_layout.encode_rows(left)
    right_values = right_layout.encode_rows(right)
    if left_values is None or right_values is None:
        return None
    plan = SlotJoinPlan(left_layout, right_layout)
    compiled = compile_predicates(predicates, plan.merged)
    if compiled is None:
        return None
    key_variables = sorted(shared_names, key=lambda v: v.name)
    left_key = [left_layout.index[v] for v in key_variables]
    right_key = [right_layout.index[v] for v in key_variables]
    try:
        right_buckets: dict[tuple, list[int]] = {}
        for j, values in enumerate(right_values):
            key = tuple(values[slot] for slot in right_key)
            right_buckets.setdefault(key, []).append(j)
        cells: list[tuple[int, int]] = []
        for i, values in enumerate(left_values):
            key = tuple(values[slot] for slot in left_key)
            matches = right_buckets.get(key)
            if matches:
                cells.extend((i, j) for j in matches)
    except TypeError:  # unhashable binding value: cannot bucket
        return None
    if method is not JoinMethod.NESTED_LOOP:
        cells.sort(key=lambda cell: (cell[0] + cell[1], cell[0]))
    merge = plan.merge
    merged_variables = plan.merged.variables
    output: list[Row] = []
    for i, j in cells:
        merged = merge(left_values[i], right_values[j])
        if merged is None:
            continue
        if all(holds(merged) for holds in compiled):
            output.append(
                Row(
                    bindings=dict(zip(merged_variables, merged)),
                    ranks=left[i].ranks + right[j].ranks,
                    provenance=left[i].provenance + right[j].provenance,
                )
            )
    return output


class _StreamSlotState:
    """Slot-path state of a :class:`JoinStream` (see ``execution.slots``).

    Holds the join plan and compiled predicates plus *mirrors* of the
    two cursors' fetched rows as encoded value tuples; :meth:`sync`
    grows the mirrors incrementally as the lazy cursors pull more rows,
    so each row is encoded exactly once over the stream's lifetime.
    """

    __slots__ = ("plan", "predicates", "residual", "left_values", "right_values")

    def __init__(
        self,
        plan: SlotJoinPlan,
        predicates: list,
        residual: list,
    ) -> None:
        self.plan = plan
        self.predicates = predicates
        self.residual = residual
        self.left_values: list[tuple] = []
        self.right_values: list[tuple] = []

    def sync(self, left_rows: Sequence[Row], right_rows: Sequence[Row]) -> bool:
        """Grow the mirrors to *left_rows*/*right_rows*; False on misfit."""
        for mirror, layout, rows in (
            (self.left_values, self.plan.left, left_rows),
            (self.right_values, self.plan.right, right_rows),
        ):
            for row in rows[len(mirror):]:
                values = layout.encode(row)
                if values is None:
                    return False
                mirror.append(values)
        return True


class JoinStream:
    """Streaming early-exit top-k execution of a rank-preserving join.

    The stream walks the strategy's candidate plane lazily, one *stage*
    at a time — a row of the NL plane, a diagonal of the MS plane — in
    exactly the order :func:`join_order` would visit the cells, keeping
    every surviving merged row as a candidate.  After each stage it
    compares the composed rank of the current k-th best candidate with
    a **certificate**: a lower bound on the composed rank of every
    cell not yet visited, derived from suffix minima of the two inputs'
    aggregated rank keys (a cell ``(i, j)`` merges ``left[i]`` and
    ``right[j]``, so its composed rank is exactly
    ``left[i].rank_key() + right[j].rank_key()``).  Once the bound is
    no smaller than the k-th candidate's rank the walk suspends: an
    unvisited cell can at best *tie*, and ties are broken by emission
    order (see :func:`~repro.execution.results.compose_ranking`), which
    every unvisited cell loses against every collected candidate.

    **Lazy inputs.**  Either input may be a
    :class:`~repro.execution.lazy.RowCursor` instead of a materialized
    sequence; plain sequences are wrapped in a
    :class:`~repro.execution.lazy.MaterializedCursor`.  The walk then
    *pulls* rows on demand — an MS diagonal ``s`` needs only the first
    ``s + 1`` rows of each side, an NL row stage needs one more outer
    row (plus the full inner side) — and the certificate bounds the
    cells over never-fetched rows through the cursors'
    :meth:`~repro.execution.lazy.RowCursor.suffix_min`: a single-feed
    service input is bounded by its rank floor, a multi-feed input
    (:class:`~repro.execution.lazy.MultiFeedCursor`) by the min over
    its per-feed blocks' floors and buffered ranks; cursors that
    observe a rank regression fall back to a full fetch of the
    offending block.  Early exit therefore saves *remote page
    fetches*, not just join work, while the emitted rows stay exactly
    the oracle's.

    Hence :meth:`top` is bit-identical — same rows, same ranks, same
    order — to filtering ``execute_join(method, left, right,
    predicates)`` over the fully-fetched inputs by
    *residual_predicates* and then applying ``compose_ranking(..., k)``
    (filter first, then compose: the same order the engine's output
    node applies them in), while visiting only a prefix of the plane.
    The stream is **resumable**: calling :meth:`top` again with a
    larger ``k`` continues the suspended walk from the first unvisited
    stage, re-using every candidate already collected — no cell is
    ever visited twice (resuming over lazy inputs may pull further
    budgeted pages).  ``cells_visited`` / ``cells_skipped`` expose the
    early-exit bookkeeping for the execution statistics.
    """

    def __init__(
        self,
        method: JoinMethod,
        left: Sequence[Row] | RowCursor,
        right: Sequence[Row] | RowCursor,
        predicates: Sequence[Comparison] = (),
        residual_predicates: Sequence[Comparison] = (),
        slot_rows: bool = True,
    ) -> None:
        self._method = method
        self._left = left if isinstance(left, RowCursor) else MaterializedCursor(left)
        self._right = (
            right if isinstance(right, RowCursor) else MaterializedCursor(right)
        )
        self._predicates = tuple(predicates)
        self._residual = tuple(residual_predicates)
        self._stage = 0
        #: (composed rank, arrival index, row) — arrival indexes are the
        #: candidate's position in the full-scan emission order, making
        #: tuple comparison the documented (rank, arrival) tie order.
        self._candidates: list[tuple[int, int, Row]] = []
        self._join_rows_emitted = 0
        self.cells_visited = 0
        #: Slot fast path (``repro.execution.slots``): lazily built the
        #: first time both sides hold a row, and abandoned permanently
        #: (``_slot_failed``) on heterogeneous rows or uncompilable
        #: predicates — the dict-row loop below is the behavior oracle.
        self._slot: _StreamSlotState | None = None
        self._slot_failed = not slot_rows

    # -- bookkeeping ---------------------------------------------------------

    @property
    def method(self) -> JoinMethod:
        """The join strategy whose visit order is being streamed."""
        return self._method

    @property
    def plane_cells(self) -> int:
        """Cells of the currently *fetched* candidate plane.

        For materialized inputs this is the full ``n × m`` plane; for
        lazy inputs it counts only fetched rows — cells over rows that
        were never pulled are accounted as saved remote work by the
        lazy-fetch statistics, not as skipped cells.
        """
        return len(self._left.rows) * len(self._right.rows)

    @property
    def cells_skipped(self) -> int:
        """Fetched-plane cells proven unable to enter the top-k without
        being visited."""
        return self.plane_cells - self.cells_visited

    @property
    def exhausted(self) -> bool:
        """True when every cell of the (fully fetched) plane was visited."""
        left, right = self._left, self._right
        if left.exhausted and not left.rows:
            return True
        if right.exhausted and not right.rows:
            return True
        if not (left.exhausted and right.exhausted):
            return False
        return self._stage >= stage_count(
            self._method, len(left.rows), len(right.rows)
        )

    @property
    def candidate_count(self) -> int:
        """Candidates collected so far (post join + residual predicates)."""
        return len(self._candidates)

    @property
    def lazy_tuples_fetched(self) -> int:
        """Raw service tuples pulled through lazy input cursors so far."""
        return sum(
            getattr(cursor, "tuples_fetched", 0)
            for cursor in (self._left, self._right)
        )

    @property
    def lazy_pages_saved(self) -> int:
        """Budgeted page fetches still unissued right now.

        A point-in-time snapshot that only shrinks as resumes pull
        further pages — re-read it after each :meth:`top` call for the
        current figure.
        """
        total = 0
        for cursor in (self._left, self._right):
            saved = getattr(cursor, "pages_saved", None)
            if saved is not None:
                total += saved()
        return total

    @property
    def lazy_blocks(self) -> int:
        """Per-feed blocks behind the stream's lazy input cursors."""
        return sum(
            getattr(cursor, "block_count", 0)
            for cursor in (self._left, self._right)
        )

    @property
    def lazy_blocks_untouched(self) -> int:
        """Lazy blocks that have not issued a single page fetch yet."""
        return sum(
            getattr(cursor, "blocks_untouched", 0)
            for cursor in (self._left, self._right)
        )

    def rebind_stats(self, stats: object) -> None:
        """Point lazy input accounting at *stats* (resumed rounds).

        Fetches demanded after an execution returned (a progressive
        "ask for more" resuming the suspended stream) must be recorded
        on the resuming round's statistics, not silently mutate the
        round that created the stream.  No-op for materialized inputs.
        """
        self._left.swap_stats(stats)
        self._right.swap_stats(stats)

    @property
    def join_rows_emitted(self) -> int:
        """Rows past the join predicates (before any residual filter)."""
        return self._join_rows_emitted

    def is_complete(self, rows: Sequence[Row]) -> bool:
        """True when *rows* (a :meth:`top` result) is *every* answer the
        current plane can produce: the walk exhausted and the top-k
        truncation dropped nothing.  This is the single definition of
        the ``ResultTable.complete`` flag for streamed executions."""
        return self.exhausted and len(rows) == self.candidate_count

    # -- the walk ------------------------------------------------------------

    def _advance_stage(self) -> None:
        """Visit every cell of the next stage, collecting candidates.

        Demands exactly the rows the stage can touch: one more outer
        row for NL (plus the whole inner side, which every NL stage
        scans), one more row *per side* for an MS diagonal.  After the
        demand, the known lengths determine the stage's exact cell set:
        an unexhausted cursor holds at least ``stage + 1`` rows, so the
        boundary formulas of :func:`stage_cells` apply unchanged.
        """
        stage = self._stage
        left, right = self._left, self._right
        left.ensure(stage + 1)
        if self._method is JoinMethod.NESTED_LOOP:
            right.ensure_all()
        else:
            right.ensure(stage + 1)
        n, m = len(left.rows), len(right.rows)
        if self._method is JoinMethod.NESTED_LOOP:
            cells: Iterable[tuple[int, int]] = (
                ((stage, j) for j in range(m)) if stage < n else ()
            )
        else:
            start = max(0, stage - m + 1)
            stop = min(stage, n - 1)
            cells = ((i, stage - i) for i in range(start, stop + 1))
        left_rows, right_rows = left.rows, right.rows
        left_ranks, right_ranks = left.ranks, right.ranks
        slot = self._slot_state()
        if slot is not None:
            left_values, right_values = slot.left_values, slot.right_values
            merge = slot.plan.merge
            merged_variables = slot.plan.merged.variables
            for i, j in cells:
                self.cells_visited += 1
                merged = merge(left_values[i], right_values[j])
                if merged is None:
                    continue
                if not all(holds(merged) for holds in slot.predicates):
                    continue
                self._join_rows_emitted += 1
                if not all(holds(merged) for holds in slot.residual):
                    continue
                rank = left_ranks[i] + right_ranks[j]
                row = Row(
                    bindings=dict(zip(merged_variables, merged)),
                    ranks=left_rows[i].ranks + right_rows[j].ranks,
                    provenance=(
                        left_rows[i].provenance + right_rows[j].provenance
                    ),
                )
                self._candidates.append((rank, len(self._candidates), row))
            self._stage += 1
            return
        for i, j in cells:
            self.cells_visited += 1
            merged = left_rows[i].merged_with(right_rows[j])
            if merged is None:
                continue
            if not all(p.holds(merged.bindings) for p in self._predicates):
                continue
            self._join_rows_emitted += 1
            if not all(p.holds(merged.bindings) for p in self._residual):
                continue
            rank = left_ranks[i] + right_ranks[j]
            self._candidates.append((rank, len(self._candidates), merged))
        self._stage += 1

    def _slot_state(self) -> "_StreamSlotState | None":
        """The live slot state, building or syncing it; None on fallback.

        Built the first time both sides hold a row (layouts come from
        the first rows); on every stage the encoded-value mirrors are
        grown to match the cursors' fetched rows.  Any failure — a row
        that does not fit its side's layout, a predicate mentioning a
        variable outside the merged layout — abandons the slot path for
        the stream's remaining lifetime, so the dict loop (which raises
        the documented errors itself) takes over mid-walk without
        revisiting any cell.
        """
        if self._slot_failed:
            return None
        slot = self._slot
        if slot is None:
            left_rows, right_rows = self._left.rows, self._right.rows
            if not left_rows or not right_rows:
                return None  # nothing to visit yet; retry next stage
            left_layout = layout_for_rows(left_rows)
            right_layout = layout_for_rows(right_rows)
            plan = SlotJoinPlan(left_layout, right_layout)
            predicates = compile_predicates(self._predicates, plan.merged)
            residual = compile_predicates(self._residual, plan.merged)
            if predicates is None or residual is None:
                self._slot_failed = True
                return None
            slot = self._slot = _StreamSlotState(plan, predicates, residual)
        if not slot.sync(self._left.rows, self._right.rows):
            self._slot_failed = True
            self._slot = None
            return None
        return slot

    def _remaining_lower_bound(self) -> float:
        """Lower bound on the composed rank of every unvisited cell.

        NL (row stages): all cells of rows ``>= stage`` are unvisited,
        so the bound is ``min(left ranks from stage) + min(right
        ranks)``.  MS (diagonal stages): the unvisited region is
        ``i + j >= stage``; rows ``i >= stage`` may pair with any
        column (one suffix lookup), rows ``i < stage`` only with
        columns ``j >= stage - i`` (one suffix lookup each).  Cursor
        ``suffix_min`` bounds never-fetched rows through their rank
        floor, so the bound stays sound for partially fetched lazy
        inputs: every fetched index below ``stage`` is covered by the
        per-row loop (the previous stage's demand guarantees the
        fetched prefix reaches ``min(stage, n)``), and everything
        beyond the fetched prefix is covered by a floor term.
        """
        if self.exhausted:
            return math.inf
        left, right = self._left, self._right
        stage = self._stage
        if self._method is JoinMethod.NESTED_LOOP:
            return left.suffix_min(stage) + right.suffix_min(0)
        n_known, m_known = len(left.rows), len(right.rows)
        best = math.inf
        if not left.exhausted or stage < n_known:
            best = left.suffix_min(stage) + right.suffix_min(0)
        start = max(0, stage - m_known + 1) if right.exhausted else 0
        left_ranks = left.ranks
        for i in range(start, min(stage, n_known)):
            bound = left_ranks[i] + right.suffix_min(stage - i)
            if bound < best:
                best = bound
        return best

    def top(self, k: int | None = None) -> list[Row]:
        """The top-*k* composed rows; resumes the suspended walk.

        **Contract**: the returned rows, their ranks, and their order
        are bit-identical to ``compose_ranking(full_join_rows, k)``
        where ``full_join_rows`` is the residual-filtered full-plane
        join over the *fully fetched* inputs — regardless of how much
        of the plane was actually visited or fetched.  ``None`` (or a
        negative ``k``, mirroring
        :func:`~repro.execution.results.compose_ranking`) drains the
        whole plane and returns every row in composed order.

        **Cost**: visits ``O(k)`` stages on rank-monotone inputs
        instead of the ``n × m`` plane, and over lazy cursors pulls
        only the pages those stages demand — so a small ``k`` costs a
        handful of remote fetches.  The certificate check keeps an
        incremental bounded max-heap of the current k best ``(rank,
        arrival)`` keys (rebuilt once per call, O(log k) per new
        candidate), so a late-firing exit costs one heap update per
        candidate rather than a rescan of the whole candidate list
        after every stage.
        """
        if k is not None and k < 0:
            k = None
        if k is None:
            while not self.exhausted:
                self._advance_stage()
            return [row for _, _, row in sorted(self._candidates)]
        # Max-heap (negated keys) of the k smallest (rank, arrival).
        worst_first = [
            (-rank, -arrival)
            for rank, arrival, _ in heapq.nsmallest(k, self._candidates)
        ]
        heapq.heapify(worst_first)
        while not self.exhausted and not self._certified(worst_first, k):
            seen = len(self._candidates)
            self._advance_stage()
            for rank, arrival, _ in self._candidates[seen:]:
                key = (-rank, -arrival)
                if len(worst_first) < k:
                    heapq.heappush(worst_first, key)
                elif key > worst_first[0]:
                    heapq.heappushpop(worst_first, key)
        selected = sorted((-rank, -arrival) for rank, arrival in worst_first)
        return [self._candidates[arrival][2] for _, arrival in selected]

    def _certified(self, worst_first: list[tuple[int, int]], k: int) -> bool:
        """True when no unvisited cell can still enter the top-*k*.

        *worst_first* is the bounded max-heap of the current k best
        candidate keys; its root carries the k-th smallest rank.
        """
        if k == 0:
            return True
        if len(worst_first) < k:
            return False
        threshold = -worst_first[0][0]
        return self._remaining_lower_bound() >= threshold


def execute_join_streamed(
    method: JoinMethod,
    left: Sequence[Row] | RowCursor,
    right: Sequence[Row] | RowCursor,
    predicates: Sequence[Comparison] = (),
    k: int | None = None,
) -> list[Row]:
    """Streamed early-exit top-k join (one-shot :class:`JoinStream`).

    Returns rows bit-identical to
    ``compose_ranking(execute_join(method, left, right, predicates), k)``
    while visiting only as much of the candidate plane as needed to
    prove the top-k complete.  Callers that want to resume the walk
    later ("ask for more") should hold a :class:`JoinStream` instead.
    """
    return JoinStream(method, left, right, predicates).top(k)
