"""Rank-preserving parallel join strategies (Section 3.3, Figure 5).

Representing the items returned by the two joined services on two
Cartesian axes, each point of the plane is a candidate join result.
The two strategies scan this space in different orders:

* **nested loop (NL)** — used when one service is highly selective and
  yields its top tuples within few fetches: all its tuples are
  retrieved first (the outer side), then the plane is scanned
  column-by-column as the other service's tuples become available;
* **merge-scan (MS)** — used when there is no a priori distinction:
  both services are fetched in parallel and the plane is traversed
  "diagonally", visiting cell ``(i, j)`` in order of increasing
  ``i + j``.

Both traversals emit pairs in a global order *consistent with the
partial orders* of the two inputs: if pair ``(i, j)`` componentwise
dominates ``(i', j')`` (``i <= i'``, ``j <= j'``, at least one strict),
it is emitted first.  This is the property tested by the hypothesis
suite.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.execution.results import Row
from repro.model.predicates import Comparison
from repro.services.registry import JoinMethod


def nested_loop_order(n_left: int, n_right: int) -> Iterator[tuple[int, int]]:
    """Cell visit order of the NL strategy (outer = left/selective side)."""
    for i in range(n_left):
        for j in range(n_right):
            yield (i, j)


def merge_scan_order(n_left: int, n_right: int) -> Iterator[tuple[int, int]]:
    """Cell visit order of the MS strategy: diagonals of equal i + j."""
    for diagonal in range(n_left + n_right - 1):
        start = max(0, diagonal - n_right + 1)
        stop = min(diagonal, n_left - 1)
        for i in range(start, stop + 1):
            yield (i, diagonal - i)


def join_order(
    method: JoinMethod, n_left: int, n_right: int
) -> Iterator[tuple[int, int]]:
    """Cell visit order for *method*."""
    if n_left == 0 or n_right == 0:
        return iter(())
    if method is JoinMethod.NESTED_LOOP:
        return nested_loop_order(n_left, n_right)
    return merge_scan_order(n_left, n_right)


def is_order_rank_consistent(order: Sequence[tuple[int, int]]) -> bool:
    """Check the domination property of a visit order.

    True iff whenever cell ``a`` componentwise dominates cell ``b``
    (``a <= b`` in both coordinates, one strictly), ``a`` appears
    before ``b``.
    """
    position = {cell: index for index, cell in enumerate(order)}
    for (i, j), index in position.items():
        for (p, q), other in position.items():
            dominates = p <= i and q <= j and (p < i or q < j)
            if dominates and other > index:
                return False
    return True


def execute_join(
    method: JoinMethod,
    left: Sequence[Row],
    right: Sequence[Row],
    predicates: Sequence[Comparison] = (),
) -> list[Row]:
    """Join two row streams with a rank-preserving strategy.

    The join condition is the *natural join* on the variables shared
    by the two rows' bindings (which recombines branches forked from a
    common upstream tuple) plus the supplied comparison *predicates*
    evaluated on the merged binding.  Output order follows the
    strategy's traversal of the candidate plane, hence is consistent
    with both input orders.
    """
    output: list[Row] = []
    for i, j in join_order(method, len(left), len(right)):
        merged = left[i].merged_with(right[j])
        if merged is None:
            continue
        if all(p.holds(merged.bindings) for p in predicates):
            output.append(merged)
    return output
