"""Rank-preserving parallel join strategies (Section 3.3, Figure 5).

Representing the items returned by the two joined services on two
Cartesian axes, each point of the plane is a candidate join result.
The two strategies scan this space in different orders:

* **nested loop (NL)** — used when one service is highly selective and
  yields its top tuples within few fetches: all its tuples are
  retrieved first (the outer side), then the plane is scanned
  column-by-column as the other service's tuples become available;
* **merge-scan (MS)** — used when there is no a priori distinction:
  both services are fetched in parallel and the plane is traversed
  "diagonally", visiting cell ``(i, j)`` in order of increasing
  ``i + j``.

Both traversals emit pairs in a global order *consistent with the
partial orders* of the two inputs: if pair ``(i, j)`` componentwise
dominates ``(i', j')`` (``i <= i'``, ``j <= j'``, at least one strict),
it is emitted first.  This is the property tested by the hypothesis
suite.

:func:`execute_join` scans the full plane and is kept as the reference
oracle; :func:`execute_join_hashed` partitions the plane by the
shared-variable key first (only same-key cells can join) and visits
the surviving cells in the same global rank order, so the engine pays
per *matching* pair instead of per cell.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.execution.results import Row
from repro.model.predicates import Comparison
from repro.model.terms import Variable
from repro.services.registry import JoinMethod


def nested_loop_order(n_left: int, n_right: int) -> Iterator[tuple[int, int]]:
    """Cell visit order of the NL strategy (outer = left/selective side)."""
    for i in range(n_left):
        for j in range(n_right):
            yield (i, j)


def merge_scan_order(n_left: int, n_right: int) -> Iterator[tuple[int, int]]:
    """Cell visit order of the MS strategy: diagonals of equal i + j."""
    for diagonal in range(n_left + n_right - 1):
        start = max(0, diagonal - n_right + 1)
        stop = min(diagonal, n_left - 1)
        for i in range(start, stop + 1):
            yield (i, diagonal - i)


def join_order(
    method: JoinMethod, n_left: int, n_right: int
) -> Iterator[tuple[int, int]]:
    """Cell visit order for *method*."""
    if n_left == 0 or n_right == 0:
        return iter(())
    if method is JoinMethod.NESTED_LOOP:
        return nested_loop_order(n_left, n_right)
    return merge_scan_order(n_left, n_right)


def is_order_rank_consistent(order: Sequence[tuple[int, int]]) -> bool:
    """Check the domination property of a visit order.

    True iff whenever cell ``a`` componentwise dominates cell ``b``
    (``a <= b`` in both coordinates, one strictly), ``a`` appears
    before ``b``.

    Runs one ``O(n log n)`` staircase sweep instead of comparing all
    cell pairs: cells are visited in emission order while a Pareto
    frontier of the maximal cells seen so far is maintained, sorted by
    ascending ``i`` (hence strictly descending ``j``).  A violation is
    exactly a new cell lying weakly below-left of an already-emitted
    one, which only the frontier can witness.
    """
    position = {cell: index for index, cell in enumerate(order)}
    xs: list[int] = []  # frontier i-coordinates, ascending
    ys: list[int] = []  # matching j-coordinates, strictly descending
    for i, j in sorted(position, key=position.__getitem__):
        # The frontier cell with the smallest i' >= i carries the
        # largest j' among all emitted cells with i' >= i.
        lo, hi = 0, len(xs)
        while lo < hi:
            mid = (lo + hi) // 2
            if xs[mid] < i:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(xs) and ys[lo] >= j:
            # Some earlier distinct cell is >= (i, j) componentwise:
            # the new cell dominates it yet is emitted later.
            return False
        # Frontier cells covered by the new one ((i', j') <= (i, j))
        # form a contiguous run ending just before the insertion point.
        start, end = 0, lo
        while start < end:
            mid = (start + end) // 2
            if ys[mid] <= j:
                end = mid
            else:
                start = mid + 1
        del xs[start:lo]
        del ys[start:lo]
        xs.insert(start, i)
        ys.insert(start, j)
    return True


def execute_join(
    method: JoinMethod,
    left: Sequence[Row],
    right: Sequence[Row],
    predicates: Sequence[Comparison] = (),
) -> list[Row]:
    """Join two row streams with a rank-preserving strategy.

    The join condition is the *natural join* on the variables shared
    by the two rows' bindings (which recombines branches forked from a
    common upstream tuple) plus the supplied comparison *predicates*
    evaluated on the merged binding.  Output order follows the
    strategy's traversal of the candidate plane, hence is consistent
    with both input orders.
    """
    output: list[Row] = []
    for i, j in join_order(method, len(left), len(right)):
        merged = left[i].merged_with(right[j])
        if merged is None:
            continue
        if all(p.holds(merged.bindings) for p in predicates):
            output.append(merged)
    return output


def _shared_key_variables(
    left: Sequence[Row], right: Sequence[Row]
) -> tuple[Variable, ...]:
    """Variables bound in *every* row of both inputs, deterministically.

    Only such variables can partition the plane: a row lacking a
    variable would have to appear in every bucket.  Variables bound on
    one side only never cause a merge conflict, so ignoring them is
    safe — the per-pair merge still checks the full bindings.
    """

    def common(rows: Iterable[Row]) -> set[Variable]:
        iterator = iter(rows)
        shared = set(next(iterator).bindings.keys())
        for row in iterator:
            if not shared:
                break
            shared &= row.bindings.keys()
        return shared

    return tuple(sorted(common(left) & common(right), key=lambda v: v.name))


def execute_join_hashed(
    method: JoinMethod,
    left: Sequence[Row],
    right: Sequence[Row],
    predicates: Sequence[Comparison] = (),
) -> list[Row]:
    """Hash-accelerated :func:`execute_join` with identical results.

    Instead of scanning the whole ``n × m`` candidate plane, both sides
    are bucketed once by their shared-variable key; only cells whose
    key values agree on both axes can survive the natural-join merge,
    so all other cells are skipped without being visited.  The
    surviving cells are then traversed in the strategy's global rank
    order (NL: lexicographic ``(i, j)``; MS: diagonal ``(i + j, i)``) —
    the exact relative order :func:`join_order` would visit them in —
    which preserves the documented domination property across buckets,
    not just inside each one.

    Falls back to the reference scan when no variable is shared by all
    rows of both sides, or when a binding value is unhashable.  The
    reference :func:`execute_join` is kept unchanged as the oracle for
    the hypothesis suite.
    """
    if not left or not right:
        return []
    key_variables = _shared_key_variables(left, right)
    if not key_variables:
        return execute_join(method, left, right, predicates)
    try:
        right_buckets: dict[tuple, list[int]] = {}
        for j, row in enumerate(right):
            key = tuple(row.bindings[v] for v in key_variables)
            right_buckets.setdefault(key, []).append(j)
        cells: list[tuple[int, int]] = []
        for i, row in enumerate(left):
            key = tuple(row.bindings[v] for v in key_variables)
            matches = right_buckets.get(key)
            if matches:
                cells.extend((i, j) for j in matches)
    except TypeError:  # unhashable binding value: cannot bucket
        return execute_join(method, left, right, predicates)
    if method is not JoinMethod.NESTED_LOOP:
        cells.sort(key=lambda cell: (cell[0] + cell[1], cell[0]))
    output: list[Row] = []
    for i, j in cells:
        merged = left[i].merged_with(right[j])
        if merged is None:
            continue
        if all(p.holds(merged.bindings) for p in predicates):
            output.append(merged)
    return output
