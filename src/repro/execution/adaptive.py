"""Mid-flight adaptive execution: drift-triggered re-planning.

The static executors cost a plan once and run it to completion; when a
service's observed behavior leaves the profile the plan was costed at,
they keep paying the mis-costed plan's price.  The
:class:`AdaptiveExecutor` closes that loop **mid-run**: a
:class:`~repro.execution.resilience.DriftMonitor` installed on the
inner engine watches every remote fetch, and when a service's mean
latency diverges beyond the :class:`~repro.execution.resilience.
DriftPolicy` threshold it raises :class:`~repro.execution.resilience.
PlanDrift` out of the fetch seam.  The adaptive executor catches it,
re-costs against the *observed* response times (via an optional
``replan`` callback — typically an optimizer run over an
:class:`~repro.services.registry.AdjustedRegistry` view), and splices
the replacement sub-plan into the run by building a fresh inner
:class:`~repro.execution.progressive.ProgressiveExecutor` over the
**same shared logical cache** — every page the aborted attempt
fetched is answered locally, so a splice never re-pulls data.

Soundness of the splice rests on three invariants:

* **No lost work** — the aborted attempt's statistics ride on the
  ``PlanDrift`` and become an explicit aborted pseudo-round, so the
  session's accounting keeps every fetch the drifted attempt paid for;
* **No lost state** — the replacement engine adopts the aborted
  engine's demotions and substitutions
  (:meth:`~repro.execution.engine.ExecutionEngine.adopt_adaptive_state`),
  so a re-plan can never resurrect a unit already proven bad;
* **No livelock** — the replacement monitor exempts every service
  whose drift was already absorbed (its cost *is* the observed one
  now), and ``max_replans`` bounds the splice count before the run
  finishes un-monitored on whatever plan it has.

**Zero-drift contract**: while no observation crosses the threshold
the monitor only reads, the engine's routing tables stay empty, and
the run is bit-identical — rows, ranks, and full statistics — to a
static :class:`ProgressiveExecutor` over the same plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.execution.cache import CacheSetting, LogicalCache, make_cache
from repro.execution.engine import ExecutionMode, ExecutionResult
from repro.execution.progressive import ProgressiveExecutor, ProgressiveRound
from repro.execution.resilience import (
    DriftMonitor,
    DriftPolicy,
    PlanDrift,
    ResilienceConfig,
)
from repro.execution.stats import ExecutionStats
from repro.model.terms import Variable
from repro.plans.dag import QueryPlan
from repro.services.registry import ServiceRegistry


@dataclass(frozen=True)
class DriftEvent:
    """One recorded mid-run adaptation, for audit and benches."""

    service: str
    observed: float
    expected: float
    fetches: int
    replanned: bool
    substituted_with: str | None

    def to_dict(self) -> dict:
        """JSON-serializable snapshot."""
        return {
            "service": self.service,
            "observed": self.observed,
            "expected": self.expected,
            "fetches": self.fetches,
            "replanned": self.replanned,
            "substituted_with": self.substituted_with,
        }


@dataclass
class AdaptiveExecutor:
    """Progressive execution that re-plans when services drift.

    A drop-in :class:`ProgressiveExecutor` replacement (``run`` /
    ``more`` / ``rounds`` / ``fetch_vector``) whose inner executor is
    rebuilt — over the same shared cache and with all engine
    demotion/reroute state carried over — every time a
    :class:`PlanDrift` fires.

    ``replan`` maps the observed mean response times (service name →
    virtual seconds, cumulative across all drifts so far) to a
    replacement plan; None keeps the current plan (the splice then
    only changes routing/monitoring, e.g. a sibling substitution).
    """

    registry: ServiceRegistry
    plan: QueryPlan
    head: tuple[Variable, ...] = ()
    mode: ExecutionMode = ExecutionMode.PARALLEL
    cache_setting: CacheSetting = CacheSetting.OPTIMAL
    max_rounds: int = 8
    lazy_streaming: bool = True
    shared_cache: LogicalCache | None = None
    reset_remote: bool = True
    resilience: ResilienceConfig | None = None
    row_provenance: bool = False
    drift: DriftPolicy = field(default_factory=DriftPolicy)
    #: Observed response times -> replacement plan; None keeps the plan.
    replan: Callable[[dict[str, float]], QueryPlan | None] | None = None
    rounds: list[ProgressiveRound] = field(default_factory=list)
    drift_events: list[DriftEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._cache = (
            self.shared_cache
            if self.shared_cache is not None
            else make_cache(self.cache_setting)
        )
        #: Services whose drift a splice already absorbed, with their
        #: observed mean response times (what ``replan`` re-costs at).
        self._overrides: dict[str, float] = {}
        self._last: ExecutionResult | None = None
        self._inner = self._build_inner(first=True)

    # -- public surface ------------------------------------------------------

    @property
    def replans(self) -> int:
        """How many times this execution spliced a replacement plan."""
        return len(self.drift_events)

    @property
    def engine(self):
        """The current inner engine (tests inspect its routing state)."""
        return self._inner.engine

    def fetch_vector(self) -> dict[int, int]:
        """Current fetching factors of the chunked nodes."""
        return self._inner.fetch_vector()

    def run(self, k: int) -> ExecutionResult:
        """Produce at least *k* answers, adapting on drift."""
        while True:
            inner = self._inner
            before = len(inner.rounds)
            try:
                result = inner.run(k)
            except PlanDrift as drift:
                self._absorb_rounds(inner, before)
                self._record_aborted_round(inner, drift)
                self._adapt(drift)
                continue
            self._absorb_rounds(inner, before)
            self._last = result
            return result

    def more(self, additional: int) -> ExecutionResult:
        """Continue the query: ask for *additional* more answers."""
        already = len(self._last.rows) if self._last else 0
        return self.run(already + additional)

    # -- splice machinery ----------------------------------------------------

    def _build_inner(self, first: bool) -> ProgressiveExecutor:
        """A fresh inner executor over the shared cache.

        Monitoring stays on only while another re-plan is still
        allowed; past ``max_replans`` the run finishes un-monitored.
        Later inners never reset the remote caches — the run is in
        flight, and wiping the servers' own caches mid-splice would
        change what the un-spliced execution observed.
        """
        monitoring = self.replans < self.drift.max_replans
        monitor = (
            DriftMonitor(self.drift, adapted=frozenset(self._overrides))
            if monitoring
            else None
        )
        return ProgressiveExecutor(
            registry=self.registry,
            plan=self.plan,
            head=self.head,
            mode=self.mode,
            cache_setting=self.cache_setting,
            max_rounds=self.max_rounds,
            lazy_streaming=self.lazy_streaming,
            shared_cache=self._cache,
            reset_remote=self.reset_remote if first else False,
            resilience=self.resilience,
            row_provenance=self.row_provenance,
            drift_monitor=monitor,
        )

    def _absorb_rounds(self, inner: ProgressiveExecutor, before: int) -> None:
        """Adopt the inner executor's new rounds into the adaptive log."""
        self.rounds.extend(inner.rounds[before:])

    def _record_aborted_round(
        self, inner: ProgressiveExecutor, drift: PlanDrift
    ) -> None:
        """Keep the aborted attempt's work visible as its own round.

        The inner executor never appended a round for the attempt the
        drift aborted (the exception propagated first), but its fetches
        happened, filled the shared cache, and must stay counted.
        """
        stats = drift.stats if drift.stats is not None else ExecutionStats()
        if not stats.elapsed:
            # The abort preempted the elapsed computation; the fetched
            # branches ran in parallel, so the attempt took as long as
            # its busiest service.
            stats.elapsed = max(
                (s.busy_time for s in stats.per_service.values()), default=0.0
            )
        self.rounds.append(
            ProgressiveRound(
                fetches=inner.fetch_vector(),
                answers=0,
                new_calls=stats.total_calls,
                elapsed=stats.elapsed,
                resumed=False,
                stats=stats,
            )
        )

    def _adapt(self, drift: PlanDrift) -> None:
        """Re-cost, optionally re-plan and substitute, splice a new inner."""
        self._overrides[drift.service] = drift.observed
        replanned = False
        if self.replan is not None:
            replacement = self.replan(dict(self._overrides))
            if replacement is not None:
                self.plan = replacement
                replanned = True
        substituted_with = None
        if self.drift.substitute_siblings:
            substituted_with = self._sibling_for(drift.service)
        self.drift_events.append(
            DriftEvent(
                service=drift.service,
                observed=drift.observed,
                expected=drift.expected,
                fetches=drift.fetches,
                replanned=replanned,
                substituted_with=substituted_with,
            )
        )
        previous_engine = self._inner.engine
        self._inner = self._build_inner(first=False)
        self._inner.engine.adopt_adaptive_state(previous_engine)
        if substituted_with is not None:
            self._inner.engine.substitute_service(
                drift.service, substituted_with
            )
        # The suspended stream (if any) belongs to the aborted plan;
        # the splice starts from a fresh execution over the shared
        # cache, which re-serves every fetched page locally.
        self._last = None

    def _sibling_for(self, service: str) -> str | None:
        """A registered equivalent able to serve every pattern the plan
        uses for *service*; None when there is none."""
        codes = {
            node.pattern.code
            for node in self.plan.service_nodes
            if node.service_name == service and node.pattern is not None
        }
        siblings = self.registry.siblings(service, tuple(sorted(codes)))
        return siblings[0] if siblings else None
