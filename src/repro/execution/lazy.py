"""Demand-driven lazy service fetching for the streamed pipeline.

The streamed top-k pipeline of :mod:`repro.execution.joins` saves
*join work*: it early-exits the candidate-plane walk once a certificate
proves the top-k complete.  The paper's cost model, however, is
dominated by **remote service invocations and page fetches** — to save
those, the inputs of the streamed join must themselves be fetched on
demand, pulled page by page as the walk's stages require them (the
pull-based discipline of rank-join/HRJN-style operators).

This module provides the cursor abstraction that makes that sound:

* :class:`RowCursor` — the interface :class:`~repro.execution.joins.
  JoinStream` pulls its two inputs through: a growing fetched prefix of
  rows (``rows`` / ``ranks``), demand methods (:meth:`~RowCursor.
  ensure`, :meth:`~RowCursor.ensure_all`), and the certificate hook
  :meth:`~RowCursor.suffix_min` bounding every row — fetched or not —
  from a given index on;
* :class:`MaterializedCursor` — wraps an already-materialized list of
  rows (what eager execution produces); everything is known up front;
* :class:`LazyServiceCursor` — wraps a service invocation (through a
  :class:`PageSource` owned by the execution engine) and fetches pages
  only when the walk demands deeper rows.

**Soundness of the certificate with partially fetched inputs.**  The
streamed join suspends when a lower bound on the composed rank of every
*unvisited* cell reaches the current k-th candidate's rank.  With lazy
inputs, unvisited cells include cells over rows that were never
fetched.  A :class:`LazyServiceCursor` is *rank-monotone* when the
rank keys of its produced rows arrive in non-decreasing order — which
is structurally guaranteed for a service node fed by a **single** input
tuple, because every produced row's rank key is the feed row's constant
rank plus the service's own 0-based rank index, and search services
emit rank indexes in increasing order across pages (exact services add
no rank at all, so the sequence is constant).  For such a cursor the
page source's **rank floor** (the smallest service-rank any not-yet-
fetched tuple can have, i.e. the number of raw tuples already seen)
plus the feed row's base rank is a sound lower bound on every unfetched
row, so :meth:`~RowCursor.suffix_min` never underestimates.  If
monotonicity is ever observed to fail (a defensive guard — it cannot
happen for single-feed table services), the cursor **falls back to a
full fetch**: it drains the remaining budgeted pages, after which the
exact suffix minima over the complete row list are used, exactly as in
eager execution.

**Multi-feed nodes: per-feed blocks.**  A service node fed by *many*
input tuples produces one rank-monotone run of rows — a **block** —
per feed tuple, concatenated in feed order; the concatenation as a
whole is not monotone (each block restarts the service's rank sequence
at the feed row's base rank).  :class:`MultiFeedCursor` lifts the
single-feed argument to this shape: it owns one budgeted
:class:`LazyServiceCursor` per block and keeps two invariants —

* **placement** — the exposed ``rows`` list is always a *prefix of
  the eager concatenation*: a block's rows are appended (globally
  "placed") only once every earlier block is exhausted, so emission
  order, arrival indexes, and therefore tie-breaking are identical to
  eager execution by construction;
* **block-interleaving certificate** — ``suffix_min`` combines the
  exact suffix minima over the placed prefix with a bound on every
  *unplaced* row: the min, over all blocks at or after the placement
  front, of the block's exact fetched-but-unplaced ranks and (while
  the block is unexhausted) its rank floor.  A demanded row's rank is
  final only once **every** unexhausted block's floor exceeds it —
  the same floor-participation invariant proved for single feeds,
  lifted to a min-over-blocks.

Pages are pulled from the unexhausted block with the **lowest floor**
(ties broken toward the earliest feed, which keeps placement moving):
raising the smallest floor is the only way the min-over-blocks bound
can improve, so the interleaving is exactly the greedy that lets the
certificate fire with the fewest page fetches, while blocks whose
floor already exceeds the demanded threshold are never drained.  The
pulled pages are always a *subset of the eager universe*, so under
the no-cache and optimal cache settings remote fetches never exceed
eager materialization's; the one-call cache is the one exception —
its hits depend on arrival *order*, so interleaved pulls can miss
where eager's contiguous per-feed order would have hit (answers are
unaffected either way; only the fetch count can differ by the lost
locality).

The **fetch universe** of a lazy cursor is identical to what eager
execution would materialize: at most the node's fetch budget ``F``
pages, stopping early when the service reports no more results.  Lazy
fetching therefore never changes *which* rows exist — only how many of
them are actually pulled — which is what keeps the streamed pipeline
bit-identical (rows, ranks, emission order) to the full-scan oracle.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Protocol, Sequence

from repro.execution.results import Row


@dataclass(frozen=True)
class FetchedPage:
    """One page pulled through a :class:`PageSource`.

    ``rows`` are the *produced* rows of the page: service tuples bound
    against the feed row, filtered by the node's predicates — exactly
    what eager execution would have appended for this page.
    ``raw_tuples`` counts the tuples the service returned before
    binding/filtering.  ``rank_floor`` is a lower bound on the
    service-rank index of every tuple in any *later* page (0 when the
    service is unranked), and ``latency`` is the reported fetch latency
    (``None`` when the page was answered by the logical cache and no
    remote fetch happened).
    """

    rows: tuple[Row, ...]
    raw_tuples: int
    has_more: bool
    rank_floor: int = 0
    latency: float | None = None


class PageSource(Protocol):
    """What a :class:`LazyServiceCursor` pulls pages from.

    The execution engine implements this over a service node: one
    ``fetch(page)`` performs the cache lookup, the remote invocation,
    the statistics accounting, and the output binding for that page.
    ``budget`` is the node's fetching factor ``F`` — the cursor never
    requests a page beyond it.  ``swap_stats`` rebinds the accounting
    sink, so fetches demanded by a *resumed* stream are recorded on the
    resuming round's statistics instead of mutating an older round's.
    """

    budget: int

    def fetch(self, page: int) -> FetchedPage: ...

    def swap_stats(self, stats: object) -> None: ...


class RowCursor:
    """A pull-based input of the streamed join.

    The fetched prefix is exposed as ``rows`` (and the parallel
    ``ranks`` list of their aggregated rank keys); :meth:`ensure`
    grows it on demand.  :meth:`suffix_min` is the certificate hook:
    a sound lower bound on the rank key of **every** row — fetched or
    not — whose index is ``>= start``.  Subclasses must keep it sound;
    the early-exit guarantee of the streamed pipeline rests on it.
    """

    rows: list[Row]
    ranks: list[int]

    @property
    def exhausted(self) -> bool:
        """True when no further row can ever be fetched."""
        raise NotImplementedError

    def ensure(self, count: int) -> None:
        """Fetch until at least *count* rows are known, or exhausted."""
        raise NotImplementedError

    def ensure_all(self) -> None:
        """Fetch the whole universe (what eager execution holds)."""
        raise NotImplementedError

    def suffix_min(self, start: int) -> float:
        """Lower bound on ``rank_key`` of every row at index >= *start*.

        Covers unfetched rows too; ``+inf`` when no such row exists.
        """
        raise NotImplementedError

    def swap_stats(self, stats: object) -> None:
        """Rebind statistics accounting (no-op for materialized rows)."""
        return None


def _suffix_minima(values: Sequence[int]) -> list[float]:
    """``out[i] = min(values[i:])`` with ``out[len(values)] = +inf``."""
    minima: list[float] = [math.inf] * (len(values) + 1)
    for index in range(len(values) - 1, -1, -1):
        minima[index] = min(values[index], minima[index + 1])
    return minima


def _extend_suffix_minima(
    ranks: list[int], suffix: list[float], new_ranks: Sequence[int]
) -> None:
    """Append *new_ranks* to *ranks*, keeping *suffix* its suffix minima.

    Appending rows can only *lower* existing suffix entries, and only
    up to the first index the new minimum cannot improve — so the
    back-propagation stops there instead of rebuilding the whole array
    (an immediate stop in the monotone case, keeping a full drain
    linear instead of quadratic).
    """
    old_count = len(ranks)
    ranks.extend(new_ranks)
    suffix.pop()  # the +inf sentinel, re-appended below
    running = math.inf
    tail: list[float] = [0.0] * len(new_ranks)
    for index in range(len(new_ranks) - 1, -1, -1):
        running = min(running, new_ranks[index])
        tail[index] = running
    suffix.extend(tail)
    suffix.append(math.inf)
    for index in range(old_count - 1, -1, -1):
        updated = min(ranks[index], suffix[index + 1])
        if updated == suffix[index]:
            break
        suffix[index] = updated


class MaterializedCursor(RowCursor):
    """A cursor over rows that are already fully materialized.

    This is the adapter between eager upstream execution and the
    streamed join: suffix minima are computed once, ``ensure`` is a
    no-op, and the certificate behaves exactly as in the original
    (PR 2) fully-materialized pipeline.
    """

    def __init__(self, rows: Sequence[Row]) -> None:
        self.rows = list(rows)
        self.ranks = [row.rank_key() for row in self.rows]
        self._suffix = _suffix_minima(self.ranks)

    @property
    def exhausted(self) -> bool:
        return True

    def ensure(self, count: int) -> None:
        return None

    def ensure_all(self) -> None:
        return None

    def suffix_min(self, start: int) -> float:
        if start >= len(self.ranks):
            return math.inf
        return self._suffix[start]


class LazyServiceCursor(RowCursor):
    """Demand-driven cursor over one service node's paged results.

    Pages are pulled from the engine-owned :class:`PageSource` only
    when the streamed walk demands rows that are not yet fetched; the
    universe (at most ``source.budget`` pages, stopping early when the
    service runs dry) is identical to eager materialization, so results
    stay bit-identical to the full-scan oracle while unfetched pages
    are *saved remote work*.

    ``base_rank`` is the feed row's aggregated rank (constant across
    all produced rows).  While the observed row ranks stay monotone,
    ``suffix_min`` bounds the unfetched suffix by ``base_rank +
    rank_floor`` (see the module docstring for the soundness argument);
    on a monotonicity violation the cursor drains the remaining budget
    and the exact suffix minima take over.

    Cost counters: ``pages_fetched`` / ``tuples_fetched`` /
    ``latencies`` describe the remote work actually performed;
    :meth:`pages_saved` is the number of budgeted page fetches that
    were never issued (an upper bound on the saving when the service
    would have run dry mid-budget, exact otherwise — eager execution
    stops at the same ``has_more`` signals the cursor observes).
    """

    def __init__(self, source: PageSource, base_rank: int = 0) -> None:
        self._source = source
        self._base_rank = base_rank
        self.rows = []
        self.ranks = []
        self._suffix: list[float] = [math.inf]
        self._monotone = True
        self._saw_end = False
        self._rank_floor = 0
        self.pages_fetched = 0
        self.tuples_fetched = 0
        self.latencies: list[float] = []

    @property
    def exhausted(self) -> bool:
        return self._saw_end or self.pages_fetched >= self._source.budget

    @property
    def budget(self) -> int:
        """The fetch budget ``F`` of the wrapped node."""
        return self._source.budget

    @property
    def is_monotone(self) -> bool:
        """False once a rank regression was observed (floor untrusted)."""
        return self._monotone

    @property
    def floor(self) -> float:
        """Lower bound on every not-yet-fetched row's aggregated rank.

        ``+inf`` once exhausted (no such row can exist); otherwise the
        feed row's base rank plus the service's reported rank floor.
        Only meaningful while :attr:`is_monotone` holds.
        """
        if self.exhausted:
            return math.inf
        return self._base_rank + self._rank_floor

    @property
    def block_count(self) -> int:
        """Feed blocks behind this cursor (1: one feed tuple)."""
        return 1

    @property
    def blocks_untouched(self) -> int:
        """Blocks that never issued a single page fetch."""
        return 0 if self.pages_fetched else 1

    def pages_saved(self) -> int:
        """Budgeted page fetches never issued (0 once the service ran dry)."""
        if self._saw_end:
            return 0
        return max(0, self._source.budget - self.pages_fetched)

    def ensure(self, count: int) -> None:
        while len(self.rows) < count and not self.exhausted:
            self._fetch_next()
        if not self._monotone:
            self.ensure_all()

    def ensure_all(self) -> None:
        while not self.exhausted:
            self._fetch_next()

    def pull_page(self) -> None:
        """Fetch exactly one more budgeted page (no-op when exhausted).

        Drains the remaining budget on an observed monotonicity
        violation, so callers holding many blocks
        (:class:`MultiFeedCursor`) keep the invariant that every
        *unexhausted* block is rank-monotone and its floor sound.
        """
        if self.exhausted:
            return
        self._fetch_next()
        if not self._monotone:
            self.ensure_all()

    def suffix_min(self, start: int) -> float:
        if not self._monotone and not self.exhausted:
            # An observed violation means the source's rank sequence is
            # untrustworthy; drain to the exact suffix minima instead.
            self.ensure_all()
        floor = (
            math.inf
            if self.exhausted
            else self._base_rank + self._rank_floor
        )
        if start < len(self.ranks):
            # Indexes >= start span both fetched rows (exact suffix
            # minima) and every unfetched row (bounded by the floor —
            # which can undercut the fetched suffix, so it must always
            # participate while rows may still arrive).
            return min(self._suffix[start], floor)
        return floor

    def swap_stats(self, stats: object) -> None:
        self._source.swap_stats(stats)

    def _fetch_next(self) -> None:
        page = self._source.fetch(self.pages_fetched)
        self.pages_fetched += 1
        self.tuples_fetched += page.raw_tuples
        if page.latency is not None:
            self.latencies.append(page.latency)
        if not page.has_more:
            self._saw_end = True
        previous_last = self.ranks[-1] if self.ranks else -math.inf
        new_ranks: list[int] = []
        for row in page.rows:
            rank = row.rank_key()
            if rank < previous_last:
                self._monotone = False
            previous_last = max(previous_last, rank)
            self.rows.append(row)
            new_ranks.append(rank)
        self._rank_floor = max(self._rank_floor, page.rank_floor)
        _extend_suffix_minima(self.ranks, self._suffix, new_ranks)


class MultiFeedCursor(RowCursor):
    """Demand-driven cursor over a multi-feed service node's blocks.

    One budgeted :class:`LazyServiceCursor` per feed tuple ("block").
    The exposed ``rows`` list is always a prefix of the eager
    feed-order concatenation: a block's fetched rows are *placed*
    (appended globally) only once every earlier block is exhausted,
    which preserves the oracle's emission order — and therefore
    arrival-index tie-breaking — by construction.  Rows fetched into
    blocks behind the placement front stay buffered inside their block
    until placement reaches them; they still sharpen the certificate
    through their exact ranks.

    **Certificate** (see the module docstring): :meth:`suffix_min`
    combines the exact suffix minima over the placed prefix with the
    min over all blocks at or after the front of
    ``block.suffix_min(placed_in_block)`` — exact ranks for buffered
    rows, the block's rank floor for unfetched ones.  The floor of
    every unexhausted block always participates, so a demanded row's
    rank is final only once every unexhausted block's floor exceeds
    it: the single-feed floor-participation invariant, lifted to a
    min-over-blocks.

    **Fetch policy**: :meth:`ensure` pulls one page at a time from the
    unexhausted block with the lowest floor (ties toward the earliest
    feed).  Raising the smallest floor is the only way the
    min-over-blocks bound can improve, and the earliest-feed tie-break
    keeps the placement front moving; the pulled set is always a
    subset of the eager universe, so page pulls never exceed eager
    materialization's (see the module docstring for the one-call-cache
    caveat on *remote* fetch counts).

    **Heaps** (O(log B) per pull instead of O(B) scans): block
    selection and the unplaced bound are served by two lazy-deletion
    heaps.  ``_floor_heap`` holds ``(floor, index)`` entries; floors
    only ever rise (a block's floor changes only through its own
    pulls), so a popped entry is validated against the block's current
    floor and re-keyed when stale — ties break toward the earliest
    feed index exactly as the linear scan did, because stale entries
    always carry a *lower* floor and therefore surface (and are
    corrected) before any entry they could unfairly displace.
    ``_bound_heap`` holds ``(candidate, index)`` entries with
    ``candidate = block.suffix_min(placed)``; the invariant is that
    every block at or after the front with a finite candidate has an
    entry **no larger than** its true candidate, which holds because
    candidates rise under placement advances and floor raises, and the
    one event that can lower them — a non-monotone pull draining a
    block into exact suffix minima below its old floor — is followed
    by pushing a fresh exact entry in :meth:`_pull_block`.  Popped
    entries are validated by recomputation and re-keyed; a root entry
    that validates exactly is the true minimum.
    """

    def __init__(self, blocks: Sequence[LazyServiceCursor]) -> None:
        self._blocks = list(blocks)
        self.rows = []
        self.ranks = []
        self._suffix: list[float] = [math.inf]
        #: Rows of each block already placed into the global list.
        self._placed = [0] * len(self._blocks)
        self._front = 0
        self._bound_cache: float | None = None
        #: Running cost counters (updated at pull time, never recomputed).
        self._tuples_fetched = sum(b.tuples_fetched for b in self._blocks)
        self._pages_saved = sum(b.pages_saved() for b in self._blocks)
        self._untouched = sum(
            1 for b in self._blocks if b.pages_fetched == 0
        )
        self._advance_placement()
        self._floor_heap: list[tuple[float, int]] = []
        self._bound_heap: list[tuple[float, int]] = []
        for index in range(self._front, len(self._blocks)):
            block = self._blocks[index]
            if not block.exhausted:
                self._floor_heap.append((block.floor, index))
            candidate = block.suffix_min(self._placed[index])
            if candidate < math.inf:
                self._bound_heap.append((candidate, index))
        heapq.heapify(self._floor_heap)
        heapq.heapify(self._bound_heap)

    @property
    def exhausted(self) -> bool:
        return self._front >= len(self._blocks)

    @property
    def block_count(self) -> int:
        """Feed blocks (one per feed tuple) behind this cursor."""
        return len(self._blocks)

    @property
    def blocks_untouched(self) -> int:
        """Blocks that never issued a single page fetch."""
        return self._untouched

    @property
    def tuples_fetched(self) -> int:
        """Raw service tuples pulled across all blocks."""
        return self._tuples_fetched

    @property
    def latencies(self) -> list[float]:
        """Remote fetch latencies across all blocks."""
        return [
            latency for block in self._blocks for latency in block.latencies
        ]

    def pages_saved(self) -> int:
        """Budgeted page fetches never issued, summed over blocks."""
        return self._pages_saved

    def ensure(self, count: int) -> None:
        while len(self.rows) < count and not self.exhausted:
            self._pull_lowest_floor()

    def ensure_all(self) -> None:
        for block in self._blocks:
            if block.exhausted:
                continue
            tuples_before = block.tuples_fetched
            saved_before = block.pages_saved()
            untouched = block.pages_fetched == 0
            block.ensure_all()
            self._tuples_fetched += block.tuples_fetched - tuples_before
            self._pages_saved += block.pages_saved() - saved_before
            if untouched and block.pages_fetched:
                self._untouched -= 1
        # Every block is exhausted: nothing is left to pull and once
        # placement catches up the unplaced bound is +inf for good.
        self._floor_heap.clear()
        self._bound_heap.clear()
        self._bound_cache = None
        self._advance_placement()

    def suffix_min(self, start: int) -> float:
        if self._bound_cache is None:
            self._bound_cache = self._unplaced_bound()
        bound = self._bound_cache
        if start < len(self.ranks):
            # Indexes >= start span placed rows (exact suffix minima)
            # and every unplaced row (covered by the bound, which must
            # always participate while rows may still arrive).
            return min(self._suffix[start], bound)
        return bound

    def swap_stats(self, stats: object) -> None:
        for block in self._blocks:
            block.swap_stats(stats)

    # -- internals ----------------------------------------------------------

    def _unplaced_bound(self) -> float:
        """Lower bound on the rank of every not-yet-placed row.

        Unplaced rows live in blocks at or after the placement front:
        buffered rows are bounded by their exact ranks, unfetched rows
        by the owning block's floor — both of which
        ``block.suffix_min(placed)`` provides (for the front block all
        fetched rows are placed, so only its floor contributes).

        Served by ``_bound_heap`` with validation on pop: entries are
        lower bounds of their blocks' true candidates (see the class
        docstring for why), so a root whose recomputed candidate equals
        its key is the exact minimum; stale roots are re-keyed in place
        and infinite/behind-the-front ones discarded.
        """
        heap = self._bound_heap
        while heap:
            candidate, index = heap[0]
            if index < self._front:
                heapq.heappop(heap)
                continue
            actual = self._blocks[index].suffix_min(self._placed[index])
            if actual == candidate:
                return candidate
            if actual == math.inf:
                heapq.heappop(heap)
                continue
            heapq.heapreplace(heap, (actual, index))
        return math.inf

    def _pull_lowest_floor(self) -> None:
        """Fetch one page from the unexhausted block with the lowest floor.

        Served by ``_floor_heap`` with validation on pop: floors only
        rise, so a popped entry whose floor no longer matches its block
        is stale and gets re-keyed; exhausted blocks are discarded.
        Ties surface the earliest feed index first, matching the linear
        scan this replaces.
        """
        heap = self._floor_heap
        while heap:
            floor, index = heapq.heappop(heap)
            block = self._blocks[index]
            if block.exhausted:
                continue
            if block.floor != floor:
                heapq.heappush(heap, (block.floor, index))
                continue
            self._pull_block(index, block)
            return

    def _pull_block(self, index: int, block: LazyServiceCursor) -> None:
        """Pull one page from *block*, maintaining counters and heaps.

        A single :meth:`LazyServiceCursor.pull_page` may drain many
        pages (the non-monotone fallback), so the counters are updated
        by before/after deltas rather than fixed increments.  The fresh
        bound entry pushed at the end restores the bound-heap invariant
        even when the drain *lowered* the block's candidate.
        """
        tuples_before = block.tuples_fetched
        saved_before = block.pages_saved()
        untouched = block.pages_fetched == 0
        block.pull_page()
        self._tuples_fetched += block.tuples_fetched - tuples_before
        self._pages_saved += block.pages_saved() - saved_before
        if untouched:
            self._untouched -= 1
        if not block.exhausted:
            heapq.heappush(self._floor_heap, (block.floor, index))
        self._bound_cache = None
        self._advance_placement()
        if index >= self._front:
            heapq.heappush(
                self._bound_heap,
                (block.suffix_min(self._placed[index]), index),
            )

    def _advance_placement(self) -> None:
        """Place newly placeable rows, advancing the front over drained
        blocks.  Keeps ``rows`` a prefix of the eager concatenation."""
        blocks = self._blocks
        while self._front < len(blocks):
            block = blocks[self._front]
            placed = self._placed[self._front]
            if placed < len(block.rows):
                self.rows.extend(block.rows[placed:])
                _extend_suffix_minima(
                    self.ranks, self._suffix, block.ranks[placed:]
                )
                self._placed[self._front] = len(block.rows)
            if not block.exhausted:
                break
            self._front += 1


@dataclass
class ListPageSource:
    """A :class:`PageSource` over pre-built pages (tests, adapters).

    ``pages`` holds the produced rows of each page; ``rank_floors``
    optionally gives the per-page floor for later tuples (defaults to
    the count of rows seen so far, the search-service convention).
    """

    pages: list[list[Row]]
    budget: int = 0
    rank_floors: list[int] | None = None
    raw_counts: list[int] | None = None
    fetch_log: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.budget <= 0:
            self.budget = len(self.pages)

    def fetch(self, page: int) -> FetchedPage:
        self.fetch_log.append(page)
        rows = tuple(self.pages[page]) if page < len(self.pages) else ()
        seen = sum(len(p) for p in self.pages[: page + 1])
        floor = (
            self.rank_floors[page]
            if self.rank_floors is not None
            else seen
        )
        raw = (
            self.raw_counts[page]
            if self.raw_counts is not None
            else len(rows)
        )
        return FetchedPage(
            rows=rows,
            raw_tuples=raw,
            has_more=page + 1 < len(self.pages),
            rank_floor=floor,
        )

    def swap_stats(self, stats: object) -> None:
        return None


@dataclass
class NullPageSource:
    """The page source of a demoted (unresponsive) feed block.

    Partial-results mode (:mod:`repro.execution.resilience`) masks a
    demoted unit by giving its lazy cursor a zero-budget source: the
    cursor is exhausted from birth, produces no rows, and never issues
    a fetch — the block contributes nothing to answers, calls, or
    cache accounting.  (It still registers as an *untouched* lazy
    block in the statistics: it issued no page fetch, which is
    literally true — the certificate, not the lazy counters, records
    why.)
    """

    budget: int = 0

    def fetch(self, page: int) -> FetchedPage:  # pragma: no cover - guard
        raise AssertionError("a demoted block must never be fetched")

    def swap_stats(self, stats: object) -> None:
        return None
