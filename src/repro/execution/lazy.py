"""Demand-driven lazy service fetching for the streamed pipeline.

The streamed top-k pipeline of :mod:`repro.execution.joins` saves
*join work*: it early-exits the candidate-plane walk once a certificate
proves the top-k complete.  The paper's cost model, however, is
dominated by **remote service invocations and page fetches** — to save
those, the inputs of the streamed join must themselves be fetched on
demand, pulled page by page as the walk's stages require them (the
pull-based discipline of rank-join/HRJN-style operators).

This module provides the cursor abstraction that makes that sound:

* :class:`RowCursor` — the interface :class:`~repro.execution.joins.
  JoinStream` pulls its two inputs through: a growing fetched prefix of
  rows (``rows`` / ``ranks``), demand methods (:meth:`~RowCursor.
  ensure`, :meth:`~RowCursor.ensure_all`), and the certificate hook
  :meth:`~RowCursor.suffix_min` bounding every row — fetched or not —
  from a given index on;
* :class:`MaterializedCursor` — wraps an already-materialized list of
  rows (what eager execution produces); everything is known up front;
* :class:`LazyServiceCursor` — wraps a service invocation (through a
  :class:`PageSource` owned by the execution engine) and fetches pages
  only when the walk demands deeper rows.

**Soundness of the certificate with partially fetched inputs.**  The
streamed join suspends when a lower bound on the composed rank of every
*unvisited* cell reaches the current k-th candidate's rank.  With lazy
inputs, unvisited cells include cells over rows that were never
fetched.  A :class:`LazyServiceCursor` is *rank-monotone* when the
rank keys of its produced rows arrive in non-decreasing order — which
is structurally guaranteed for a service node fed by a **single** input
tuple, because every produced row's rank key is the feed row's constant
rank plus the service's own 0-based rank index, and search services
emit rank indexes in increasing order across pages (exact services add
no rank at all, so the sequence is constant).  For such a cursor the
page source's **rank floor** (the smallest service-rank any not-yet-
fetched tuple can have, i.e. the number of raw tuples already seen)
plus the feed row's base rank is a sound lower bound on every unfetched
row, so :meth:`~RowCursor.suffix_min` never underestimates.  If
monotonicity is ever observed to fail (a defensive guard — it cannot
happen for single-feed table services), the cursor **falls back to a
full fetch**: it drains the remaining budgeted pages, after which the
exact suffix minima over the complete row list are used, exactly as in
eager execution.  Service nodes with multi-row feeds are never wrapped
lazily in the first place (their rank sequences restart per feed
tuple); the engine materializes them eagerly, which is the same
fallback expressed statically.

The **fetch universe** of a lazy cursor is identical to what eager
execution would materialize: at most the node's fetch budget ``F``
pages, stopping early when the service reports no more results.  Lazy
fetching therefore never changes *which* rows exist — only how many of
them are actually pulled — which is what keeps the streamed pipeline
bit-identical (rows, ranks, emission order) to the full-scan oracle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Protocol, Sequence

from repro.execution.results import Row


@dataclass(frozen=True)
class FetchedPage:
    """One page pulled through a :class:`PageSource`.

    ``rows`` are the *produced* rows of the page: service tuples bound
    against the feed row, filtered by the node's predicates — exactly
    what eager execution would have appended for this page.
    ``raw_tuples`` counts the tuples the service returned before
    binding/filtering.  ``rank_floor`` is a lower bound on the
    service-rank index of every tuple in any *later* page (0 when the
    service is unranked), and ``latency`` is the reported fetch latency
    (``None`` when the page was answered by the logical cache and no
    remote fetch happened).
    """

    rows: tuple[Row, ...]
    raw_tuples: int
    has_more: bool
    rank_floor: int = 0
    latency: float | None = None


class PageSource(Protocol):
    """What a :class:`LazyServiceCursor` pulls pages from.

    The execution engine implements this over a service node: one
    ``fetch(page)`` performs the cache lookup, the remote invocation,
    the statistics accounting, and the output binding for that page.
    ``budget`` is the node's fetching factor ``F`` — the cursor never
    requests a page beyond it.  ``swap_stats`` rebinds the accounting
    sink, so fetches demanded by a *resumed* stream are recorded on the
    resuming round's statistics instead of mutating an older round's.
    """

    budget: int

    def fetch(self, page: int) -> FetchedPage: ...

    def swap_stats(self, stats: object) -> None: ...


class RowCursor:
    """A pull-based input of the streamed join.

    The fetched prefix is exposed as ``rows`` (and the parallel
    ``ranks`` list of their aggregated rank keys); :meth:`ensure`
    grows it on demand.  :meth:`suffix_min` is the certificate hook:
    a sound lower bound on the rank key of **every** row — fetched or
    not — whose index is ``>= start``.  Subclasses must keep it sound;
    the early-exit guarantee of the streamed pipeline rests on it.
    """

    rows: list[Row]
    ranks: list[int]

    @property
    def exhausted(self) -> bool:
        """True when no further row can ever be fetched."""
        raise NotImplementedError

    def ensure(self, count: int) -> None:
        """Fetch until at least *count* rows are known, or exhausted."""
        raise NotImplementedError

    def ensure_all(self) -> None:
        """Fetch the whole universe (what eager execution holds)."""
        raise NotImplementedError

    def suffix_min(self, start: int) -> float:
        """Lower bound on ``rank_key`` of every row at index >= *start*.

        Covers unfetched rows too; ``+inf`` when no such row exists.
        """
        raise NotImplementedError

    def swap_stats(self, stats: object) -> None:
        """Rebind statistics accounting (no-op for materialized rows)."""
        return None


def _suffix_minima(values: Sequence[int]) -> list[float]:
    """``out[i] = min(values[i:])`` with ``out[len(values)] = +inf``."""
    minima: list[float] = [math.inf] * (len(values) + 1)
    for index in range(len(values) - 1, -1, -1):
        minima[index] = min(values[index], minima[index + 1])
    return minima


class MaterializedCursor(RowCursor):
    """A cursor over rows that are already fully materialized.

    This is the adapter between eager upstream execution and the
    streamed join: suffix minima are computed once, ``ensure`` is a
    no-op, and the certificate behaves exactly as in the original
    (PR 2) fully-materialized pipeline.
    """

    def __init__(self, rows: Sequence[Row]) -> None:
        self.rows = list(rows)
        self.ranks = [row.rank_key() for row in self.rows]
        self._suffix = _suffix_minima(self.ranks)

    @property
    def exhausted(self) -> bool:
        return True

    def ensure(self, count: int) -> None:
        return None

    def ensure_all(self) -> None:
        return None

    def suffix_min(self, start: int) -> float:
        if start >= len(self.ranks):
            return math.inf
        return self._suffix[start]


class LazyServiceCursor(RowCursor):
    """Demand-driven cursor over one service node's paged results.

    Pages are pulled from the engine-owned :class:`PageSource` only
    when the streamed walk demands rows that are not yet fetched; the
    universe (at most ``source.budget`` pages, stopping early when the
    service runs dry) is identical to eager materialization, so results
    stay bit-identical to the full-scan oracle while unfetched pages
    are *saved remote work*.

    ``base_rank`` is the feed row's aggregated rank (constant across
    all produced rows).  While the observed row ranks stay monotone,
    ``suffix_min`` bounds the unfetched suffix by ``base_rank +
    rank_floor`` (see the module docstring for the soundness argument);
    on a monotonicity violation the cursor drains the remaining budget
    and the exact suffix minima take over.

    Cost counters: ``pages_fetched`` / ``tuples_fetched`` /
    ``latencies`` describe the remote work actually performed;
    :meth:`pages_saved` is the number of budgeted page fetches that
    were never issued (an upper bound on the saving when the service
    would have run dry mid-budget, exact otherwise — eager execution
    stops at the same ``has_more`` signals the cursor observes).
    """

    def __init__(self, source: PageSource, base_rank: int = 0) -> None:
        self._source = source
        self._base_rank = base_rank
        self.rows = []
        self.ranks = []
        self._suffix: list[float] = [math.inf]
        self._monotone = True
        self._saw_end = False
        self._rank_floor = 0
        self.pages_fetched = 0
        self.tuples_fetched = 0
        self.latencies: list[float] = []

    @property
    def exhausted(self) -> bool:
        return self._saw_end or self.pages_fetched >= self._source.budget

    @property
    def budget(self) -> int:
        """The fetch budget ``F`` of the wrapped node."""
        return self._source.budget

    def pages_saved(self) -> int:
        """Budgeted page fetches never issued (0 once the service ran dry)."""
        if self._saw_end:
            return 0
        return max(0, self._source.budget - self.pages_fetched)

    def ensure(self, count: int) -> None:
        while len(self.rows) < count and not self.exhausted:
            self._fetch_next()
        if not self._monotone:
            self.ensure_all()

    def ensure_all(self) -> None:
        while not self.exhausted:
            self._fetch_next()

    def suffix_min(self, start: int) -> float:
        if not self._monotone and not self.exhausted:
            # An observed violation means the source's rank sequence is
            # untrustworthy; drain to the exact suffix minima instead.
            self.ensure_all()
        floor = (
            math.inf
            if self.exhausted
            else self._base_rank + self._rank_floor
        )
        if start < len(self.ranks):
            # Indexes >= start span both fetched rows (exact suffix
            # minima) and every unfetched row (bounded by the floor —
            # which can undercut the fetched suffix, so it must always
            # participate while rows may still arrive).
            return min(self._suffix[start], floor)
        return floor

    def swap_stats(self, stats: object) -> None:
        self._source.swap_stats(stats)

    def _fetch_next(self) -> None:
        page = self._source.fetch(self.pages_fetched)
        self.pages_fetched += 1
        self.tuples_fetched += page.raw_tuples
        if page.latency is not None:
            self.latencies.append(page.latency)
        if not page.has_more:
            self._saw_end = True
        previous_last = self.ranks[-1] if self.ranks else -math.inf
        new_ranks: list[int] = []
        for row in page.rows:
            rank = row.rank_key()
            if rank < previous_last:
                self._monotone = False
            previous_last = max(previous_last, rank)
            self.rows.append(row)
            new_ranks.append(rank)
        self._rank_floor = max(self._rank_floor, page.rank_floor)
        self._absorb_ranks(new_ranks)

    def _absorb_ranks(self, new_ranks: list[int]) -> None:
        """Extend the suffix-minima array incrementally.

        Appending rows can only *lower* existing suffix entries, and
        only up to the first index the new minimum cannot improve —
        so the back-propagation stops there instead of rebuilding the
        whole array (an immediate stop in the monotone case, keeping a
        full drain linear instead of quadratic).
        """
        old_count = len(self.ranks)
        self.ranks.extend(new_ranks)
        suffix = self._suffix
        suffix.pop()  # the +inf sentinel, re-appended below
        running = math.inf
        tail: list[float] = [0.0] * len(new_ranks)
        for index in range(len(new_ranks) - 1, -1, -1):
            running = min(running, new_ranks[index])
            tail[index] = running
        suffix.extend(tail)
        suffix.append(math.inf)
        for index in range(old_count - 1, -1, -1):
            updated = min(self.ranks[index], suffix[index + 1])
            if updated == suffix[index]:
                break
            suffix[index] = updated


@dataclass
class ListPageSource:
    """A :class:`PageSource` over pre-built pages (tests, adapters).

    ``pages`` holds the produced rows of each page; ``rank_floors``
    optionally gives the per-page floor for later tuples (defaults to
    the count of rows seen so far, the search-service convention).
    """

    pages: list[list[Row]]
    budget: int = 0
    rank_floors: list[int] | None = None
    raw_counts: list[int] | None = None
    fetch_log: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.budget <= 0:
            self.budget = len(self.pages)

    def fetch(self, page: int) -> FetchedPage:
        self.fetch_log.append(page)
        rows = tuple(self.pages[page]) if page < len(self.pages) else ()
        seen = sum(len(p) for p in self.pages[: page + 1])
        floor = (
            self.rank_floors[page]
            if self.rank_floors is not None
            else seen
        )
        raw = (
            self.raw_counts[page]
            if self.raw_counts is not None
            else len(rows)
        )
        return FetchedPage(
            rows=rows,
            raw_tuples=raw,
            has_more=page + 1 < len(self.pages),
            rank_floor=floor,
        )

    def swap_stats(self, stats: object) -> None:
        return None
