"""The plan execution engine (Sections 5 and 6).

Executes a query plan as a dataflow computation, from the user's input
tuple to the composed, ranked answers:

* service nodes invoke their Web service once per incoming tuple
  (through the logical cache) and fetch up to ``F`` pages for chunked
  services, stopping early when the service reports no more results;
* pipe joins are arcs: the destination's inputs are filled from the
  origin's output bindings;
* parallel join nodes merge two branches with the rank-preserving
  nested-loop or merge-scan strategy;
* the output node applies residual predicates and composes the global
  ranking.

Time is *virtual*: services report per-fetch latencies and the engine
aggregates them according to the scheduling mode —

* ``SEQUENTIAL``   — one thread, total time is the sum of all latencies;
* ``PARALLEL``     — independent branches overlap: the elapsed time is
  the critical path over the DAG (the paper's engine performs
  sequential and parallel joins this way);
* ``MULTITHREADED`` — additionally, all calls of a node are dispatched
  to parallel threads: the node's busy time collapses to its largest
  single latency plus a per-thread overhead.  Parallel dispatch
  randomizes the arrival order, which degrades the one-call cache
  (the paper measures 284 → 212 hotel calls in this setting);
  we reproduce this by shuffling each node's input block order with a
  seeded RNG;
* ``STREAMED``     — timing as ``PARALLEL``, but when a ``k`` budget is
  given the final parallel join runs as a suspended
  :class:`~repro.execution.joins.JoinStream`: the candidate plane is
  walked lazily and the execution stops with a certificate that the
  top-k is complete, skipping the unvisited cells entirely.  Service
  nodes feeding that join are not materialized up front at all: a
  single-tuple feed is wrapped in a
  :class:`~repro.execution.lazy.LazyServiceCursor`, a multi-tuple feed
  in a per-feed-block
  :class:`~repro.execution.lazy.MultiFeedCursor`, and their pages are
  fetched only as the walk demands deeper rows, so early exit saves
  *remote service fetches* — the quantity the paper's cost model
  optimizes — not just join work (``lazy_calls_saved`` /
  ``lazy_tuples_fetched`` / ``lazy_blocks`` on the statistics trace
  the saving, which now covers serial plans whose final join is fed
  by proliferative upstream chains).  The result table is truncated to the proven top-k
  (``complete`` is False when answers beyond k were neither produced
  nor disproven), and the suspended stream rides along on the
  :class:`ExecutionResult` so "ask for more" can resume the walk
  without re-executing the plan.  Streamed results are bit-identical
  to ``compose_ranking`` over a full-scan execution — the oracle the
  hypothesis suite checks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping, Sequence

from repro.execution.cache import CacheSetting, LogicalCache, make_cache
from repro.execution.joins import JoinStream, execute_join_hashed
from repro.execution.lazy import (
    FetchedPage,
    LazyServiceCursor,
    MultiFeedCursor,
    NullPageSource,
)
from repro.execution.resilience import (
    DriftMonitor,
    PartialResultCertificate,
    PlanDrift,
    ResilienceConfig,
    UnresponsiveService,
    build_certificate,
    resilient_fetch,
)
from repro.execution.results import ResultTable, Row, compose_ranking
from repro.execution.slots import SlotLayout, compile_predicates, layout_for_rows
from repro.execution.stats import ExecutionStats
from repro.model.terms import Constant, Variable
from repro.plans.dag import QueryPlan
from repro.plans.nodes import InputNode, JoinNode, OutputNode, PlanNode, ServiceNode
from repro.services.registry import ServiceRegistry


class ExecutionError(RuntimeError):
    """Raised when a plan cannot be executed (unbound inputs, etc.)."""


class ExecutionMode(Enum):
    """Scheduling modes of the engine.

    All four modes produce the *same answers* for the same plan — they
    differ in how virtual time is aggregated and how much work is done
    to produce a top-k head:

    * ``SEQUENTIAL`` — one thread; elapsed time is the sum of all
      service latencies.
    * ``PARALLEL`` — independent branches overlap; elapsed time is the
      critical path over the plan DAG.  This is the reference
      full-materialization mode: every service is fully fetched and
      every join scans its whole candidate plane.
    * ``MULTITHREADED`` — additionally dispatches each node's calls to
      parallel threads (node busy time collapses to its largest single
      latency plus overhead); input block order is shuffled, degrading
      the one-call cache as the paper observes.
    * ``STREAMED`` — timing as ``PARALLEL``; with a ``k`` budget the
      final parallel join early-exits under a rank certificate and its
      service inputs — single- or multi-feed — are fetched lazily,
      page by page, on the walk's demand.  **Equivalence contract**: the produced rows,
      ranks, and emission order are bit-identical to ``PARALLEL``
      execution followed by ``compose_ranking(rows, k)``; only the
      cost (cells visited, pages fetched) changes.  Without ``k`` the
      execution is a plain full materialization; with ``k`` but no
      streamable final join (plans whose output is fed directly by a
      service node) it falls back to full materialization and raises
      ``ExecutionStats.streamed_fallback``, results identical.
    """

    SEQUENTIAL = "sequential"
    PARALLEL = "parallel"
    MULTITHREADED = "multithreaded"
    STREAMED = "streamed"


@dataclass(frozen=True)
class ExecutionResult:
    """Everything produced by one plan execution.

    ``node_output_sizes`` traces the dataflow: the number of tuples
    each plan node emitted — the executed counterpart of the
    annotation's ``t_out`` estimates, used by the cost-model
    validation experiments.  Under a streamed execution, the streamed
    join's (and its downstream nodes') sizes count only the
    *materialized* head, not the full plane.

    ``stream`` is the suspended :class:`JoinStream` of a streamed
    top-k execution (``None`` otherwise): calling ``stream.top`` with
    a larger ``k`` resumes the early-exited walk.  Over eagerly
    materialized join inputs a resume never issues a service call;
    over lazily fetched inputs it may pull further pages *within the
    round's fetch budget* (call ``stream.rebind_stats`` first so those
    fetches are accounted to the resuming round).

    ``certificate`` is the partial-result certificate of a
    partial-results execution (:mod:`repro.execution.resilience`):
    which units were dropped and which service blocks produced each
    answer.  ``None`` unless the engine runs with
    ``ResilienceConfig(partial_results=True)``; an *empty* certificate
    (no drops) is a completeness witness, not an error.
    """

    table: ResultTable
    stats: ExecutionStats
    elapsed: float
    k: int | None = None
    node_output_sizes: dict[str, int] = field(default_factory=dict)
    stream: JoinStream | None = None
    certificate: PartialResultCertificate | None = None

    @property
    def complete(self) -> bool:
        """False when the table holds only a streamed top-k head."""
        return self.table.complete

    @property
    def rows(self) -> list[Row]:
        """All produced answers in composed rank order."""
        return self.table.rows

    def answers(self, k: int | None = None) -> list[tuple]:
        """The top-k projected answer tuples."""
        limit = k if k is not None else self.k
        return self.table.tuples(limit)

    def output_size_of(self, node: PlanNode) -> int:
        """Tuples actually emitted by *node* during this execution."""
        if not self.node_output_sizes:
            raise KeyError("node sizes were not collected")
        return self.node_output_sizes[node.node_id]


class ExecutionEngine:
    """Executes query plans against registered services."""

    def __init__(
        self,
        registry: ServiceRegistry,
        cache_setting: CacheSetting = CacheSetting.NO_CACHE,
        mode: ExecutionMode = ExecutionMode.PARALLEL,
        thread_overhead: float = 0.05,
        shuffle_seed: int = 17,
        lazy_streaming: bool = True,
        slot_rows: bool = True,
        resilience: ResilienceConfig | None = None,
        row_provenance: bool = False,
        drift_monitor: DriftMonitor | None = None,
    ) -> None:
        self._registry = registry
        self._cache_setting = cache_setting
        self._mode = mode
        self._thread_overhead = thread_overhead
        self._shuffle_seed = shuffle_seed
        #: Retry/hedge/partial-results behavior of every page pull
        #: (:mod:`repro.execution.resilience`); None runs the
        #: historical fail-fast path bit-identically.
        self._resilience = resilience
        #: Units demoted by exhausted retries in partial-results mode,
        #: persistent across this engine's executions (progressive
        #: rounds must not re-await a block already proven dead).
        self._demoted: dict[tuple[str, tuple], UnresponsiveService] = {}
        #: Sibling-fallback routing state (all empty — and all fast
        #: paths untouched — until a unit actually fails over or a
        #: caller pre-routes a whole service):
        #: per-unit reroutes (original unit -> serving service name),
        self._substituted: dict[tuple[str, tuple], str] = {}
        #: whole-service reroutes (circuit breaker opened the service),
        self._service_substitutions: dict[str, str] = {}
        #: siblings already tried per unit (so a failing sibling
        #: advances to the next candidate instead of ping-ponging),
        self._unit_attempts: dict[tuple[str, tuple], set[str]] = {}
        #: reverse map (serving service, input key) -> original unit,
        #: so a sibling's own failure resolves to the unit it serves,
        self._origin: dict[tuple[str, tuple], tuple[str, tuple]] = {}
        #: and reroutes that actually served pages, for the
        #: certificate's ``substituted`` section.
        self._substitution_used: dict[tuple[str, tuple], str] = {}
        #: Observes remote fetch latency against each plan node's
        #: costed profile and raises
        #: :class:`~repro.execution.resilience.PlanDrift` on
        #: divergence; None (the default) never observes anything —
        #: the zero-drift bit-identity is structural, not thresholded.
        self._drift_monitor = drift_monitor
        #: Under STREAMED with a k budget, fetch the final join's
        #: service inputs (single- and multi-feed) on demand; False
        #: restores PR 2's eager materialization (same results, more
        #: remote fetches) — the baseline the lazy bench measures
        #: against.
        self._lazy_streaming = lazy_streaming
        #: Slot-indexed inner loops (``repro.execution.slots``); False
        #: forces the dict-row oracle everywhere — the "before" side of
        #: the hotpaths bench and the differential tests.
        self._slot_rows = slot_rows
        #: Opt-in per-row audit trail: every row produced by a service
        #: node carries a ``(service, input key, page)`` record
        #: (:data:`~repro.execution.results.ProvenanceRecord`), and
        #: joins concatenate their inputs' records.  Off by default —
        #: disabled executions build rows with the empty tuple
        #: everywhere, bit-identical to the historical engine.
        #: Provenance never influences ranks, ordering, or join
        #: decisions, so enabling it changes no answer row either.
        self._row_provenance = row_provenance

    def execute(
        self,
        plan: QueryPlan,
        head: Sequence[Variable] = (),
        k: int | None = None,
        reset_remote_caches: bool = True,
        shared_cache: LogicalCache | None = None,
    ) -> ExecutionResult:
        """Run *plan* and return ranked answers plus statistics.

        ``head`` selects the projected output variables; ``k`` is only
        advisory in the full-scan modes (all produced answers are kept;
        ``answers()`` trims).  Under ``ExecutionMode.STREAMED`` with a
        ``k`` budget, the final parallel join early-exits once the
        top-k is provably complete, the table is truncated to that
        proven head (``table.complete`` records whether anything was
        left unvisited), and the suspended stream is returned for
        continuation.  ``reset_remote_caches`` clears the remote
        servers' own caches before running, so experiments are
        independent.  ``shared_cache`` lets a caller keep a logical
        cache alive across executions (progressive "ask for more"
        continuations).
        """
        plan.validate()
        if reset_remote_caches:
            self._registry.reset_all()
        cache = shared_cache if shared_cache is not None else make_cache(
            self._cache_setting
        )
        stats = ExecutionStats()
        streaming_join = (
            self._streamed_join_node(plan)
            if self._mode is ExecutionMode.STREAMED and k is not None
            else None
        )
        if (
            self._mode is ExecutionMode.STREAMED
            and k is not None
            and streaming_join is None
        ):
            # Full-materialization fallback (service-terminal plan):
            # flag it so the zeroed streaming/lazy counters cannot be
            # mistaken for a stream that visited nothing.
            stats.streamed_fallback = True
        lazy_candidates = (
            self._lazy_input_ids(plan, streaming_join)
            if streaming_join is not None and self._lazy_streaming
            else frozenset()
        )
        # Partial-results restart loop: a walk aborted by an exhausted
        # retry budget reroutes the failing unit onto an equivalent
        # sibling service (when sibling fallback is on and one exists)
        # or demotes it, then re-runs with the unit rerouted/masked
        # (the shared logical cache makes restarts cheap — every
        # already-fetched page is answered locally).  The stats object
        # survives restarts, so aborted work stays counted.  Each
        # restart either demotes one *new* unit or advances one unit
        # to a sibling it never tried; both are finite per plan, so
        # the loop terminates.  A PlanDrift raised by the drift
        # monitor is *not* absorbed here: it aborts the execution for
        # the adaptive layer to re-plan, carrying the partial stats.
        try:
            while True:
                rng = random.Random(self._shuffle_seed)
                stream: JoinStream | None = None
                lazy_cursors: dict[str, LazyServiceCursor | MultiFeedCursor] = {}
                outputs: dict[str, list[Row]] = {}
                busy: dict[str, float] = {}
                try:
                    for node in plan.topological_order():
                        if isinstance(node, InputNode):
                            outputs[node.node_id] = [Row(bindings={})]
                            busy[node.node_id] = 0.0
                        elif isinstance(node, ServiceNode):
                            if node.node_id in lazy_candidates:
                                cursor = self._open_lazy_cursor(
                                    plan, node, outputs, cache, stats
                                )
                                lazy_cursors[node.node_id] = cursor
                                # The cursor's row list is live: it grows
                                # as the streamed walk demands pages, so
                                # the node-size snapshot below sees exactly
                                # what was fetched.
                                outputs[node.node_id] = cursor.rows
                                busy[node.node_id] = 0.0
                            else:
                                rows, node_busy = self._run_service_node(
                                    plan, node, outputs, cache, stats, rng
                                )
                                outputs[node.node_id] = rows
                                busy[node.node_id] = node_busy
                        elif isinstance(node, JoinNode):
                            if node is streaming_join:
                                stream = self._open_join_stream(
                                    plan, node, outputs, lazy_cursors
                                )
                                rows = stream.top(k)
                            else:
                                rows = self._run_join_node(plan, node, outputs)
                            outputs[node.node_id] = rows
                            busy[node.node_id] = node.response_time
                        elif isinstance(node, OutputNode):
                            rows = self._run_output_node(plan, node, outputs)
                            outputs[node.node_id] = rows
                            busy[node.node_id] = 0.0
                        else:
                            raise ExecutionError(
                                f"unknown node type {type(node).__name__}"
                            )
                except UnresponsiveService as failure:
                    unit = self._origin.get(failure.unit, failure.unit)
                    if unit in self._demoted:  # pragma: no cover
                        raise ExecutionError(
                            f"demoted unit {unit!r} failed again — "
                            f"masking is broken"
                        ) from failure
                    self.handle_unresponsive(failure)
                    continue
                break
        except PlanDrift as drift:
            if drift.stats is None:
                drift.stats = stats
            raise

        for node_id, cursor in lazy_cursors.items():
            busy[node_id] = self._node_busy(cursor.latencies)
            stats.lazy_tuples_fetched += cursor.tuples_fetched
            stats.lazy_calls_saved += cursor.pages_saved()
            stats.lazy_blocks += cursor.block_count
            stats.lazy_blocks_untouched += cursor.blocks_untouched
        stats.elapsed = self._elapsed(plan, busy)
        produced = outputs[plan.output_node.node_id]
        if stream is not None:
            stats.streamed_cells_visited = stream.cells_visited
            stats.early_exit_cells_skipped = stream.cells_skipped
        if self._mode is ExecutionMode.STREAMED and k is not None:
            final_rows = compose_ranking(produced, k)
            if stream is not None:
                complete = stream.is_complete(final_rows)
            else:
                complete = len(final_rows) == len(produced)
        else:
            final_rows = compose_ranking(produced)
            complete = True
        certificate = self.certificate_for(plan, final_rows)
        if certificate is not None:
            stats.demoted_blocks = len(certificate.dropped)
            stats.substituted_blocks = len(certificate.substituted)
        table = ResultTable(head=tuple(head), rows=final_rows, complete=complete)
        return ExecutionResult(
            table=table,
            stats=stats,
            elapsed=stats.elapsed,
            k=k,
            node_output_sizes={
                node_id: len(rows) for node_id, rows in outputs.items()
            },
            stream=stream,
            certificate=certificate,
        )

    # -- resilience ---------------------------------------------------------

    def demote(self, failure: UnresponsiveService) -> None:
        """Mask *failure*'s unit in every later walk of this engine.

        Idempotent: concurrent row tasks of a :class:`ParallelExecutor`
        can exhaust the same unit's budget twice before either failure
        is collected.
        """
        self._demoted.setdefault(failure.unit, failure)

    def mask_unit(
        self, service: str, input_key: tuple, reason: str = "masked up front"
    ) -> None:
        """Pre-demote one unit before executing.

        The oracle of the partial-results differential: re-running a
        plan on a *fault-free* registry with the certificate's dropped
        units masked up front must reproduce the partial answer
        bit-for-bit.
        """
        failure = UnresponsiveService(
            service, input_key, 0, 0, RuntimeError(reason)
        )
        self._demoted.setdefault((service, input_key), failure)

    def certificate_for(
        self, plan: QueryPlan, rows: list[Row]
    ) -> PartialResultCertificate | None:
        """The partial-result certificate; None unless partial mode."""
        if self._resilience is None or not self._resilience.partial_results:
            return None
        return build_certificate(plan, rows, self._demoted, self._substitution_used)

    def _masked(self, service: str, input_key: tuple) -> bool:
        """Whether one ``(service, input setting)`` unit is demoted."""
        return bool(self._demoted) and (service, input_key) in self._demoted

    def _routing_active(self) -> bool:
        """Whether any unit- or service-level reroute is registered.

        The zero-drift fast-path guard: with no substitutions the
        per-row hot loops never consult the routing tables, so a run
        without adaptivity stays bit-identical to the static engine.
        """
        return bool(self._substituted) or bool(self._service_substitutions)

    def _route_unit(self, service: str, input_key: tuple) -> str:
        """The service that actually serves one unit, recording the use.

        Demoted units are never rerouted — the masked check must see
        the original identity (and ``_open_lazy_cursor`` constructs
        its page source *before* checking the mask, so routing a
        demoted unit would resurrect it).  Unit-level reroutes (from
        sibling fallback) win over service-level ones (from a breaker
        pre-substitution).  Every active reroute is recorded in
        ``_origin`` (so a sibling's failure resolves back to the unit
        it stood in for) and ``_substitution_used`` (so the
        certificate names the replacement).
        """
        unit = (service, input_key)
        if unit in self._demoted:
            return service
        actual = self._substituted.get(unit)
        if actual is None:
            actual = self._service_substitutions.get(service, service)
        if actual != service:
            self._origin.setdefault((actual, input_key), unit)
            self._substitution_used[unit] = actual
        return actual

    def handle_unresponsive(self, failure: UnresponsiveService) -> None:
        """Reroute the failed unit onto a sibling, or demote it.

        The restart loop's (and the executors') failure sink.  The
        failure may name a *sibling* that was already standing in for
        an original unit — ``_origin`` resolves it back, so exhaustion
        walks the sibling chain of one logical unit instead of
        spawning chains per replacement.  Stale failures (collected by
        a parallel executor after the unit already moved on or was
        demoted) are dropped: the current server has never exhausted
        its budget.
        """
        unit = self._origin.get(failure.unit, failure.unit)
        if unit in self._demoted:
            return
        current = self._substituted.get(unit)
        if current is None:
            current = self._service_substitutions.get(unit[0], unit[0])
        if failure.service != current:
            return
        if self._resilience is not None and self._resilience.sibling_fallback:
            sibling = self._next_sibling(unit, failure.service)
            if sibling is not None:
                self._substituted[unit] = sibling
                return
        # Sibling chain exhausted (or fallback off): demote the
        # *original* unit — and forget its substitution record, or the
        # certificate would report the unit both substituted and
        # dropped.
        self._substituted.pop(unit, None)
        self._substitution_used.pop(unit, None)
        if unit != failure.unit:
            failure = UnresponsiveService(
                unit[0], unit[1], failure.page, failure.attempts, failure.cause
            )
        self.demote(failure)

    def _next_sibling(self, unit: tuple[str, tuple], failed: str) -> str | None:
        """The first registered sibling this unit has not tried yet."""
        tried = self._unit_attempts.setdefault(unit, {unit[0]})
        tried.add(failed)
        pattern_code = unit[1][0]
        for sibling in self._registry.siblings(unit[0], (pattern_code,)):
            if sibling not in tried:
                tried.add(sibling)
                return sibling
        return None

    def substitute_service(self, service: str, replacement: str) -> None:
        """Reroute every unit of *service* onto *replacement*.

        The circuit breaker's lever: a service whose breaker is open
        is served by a healthy sibling from the first fetch, without
        waiting for each unit to exhaust a retry budget first.
        Unit-level reroutes installed later still take precedence.
        """
        self._service_substitutions[service] = replacement

    def adopt_adaptive_state(self, other: "ExecutionEngine") -> None:
        """Carry another engine's demotions and reroutes into this one.

        The adaptive executor builds a fresh engine per re-plan; the
        new engine must keep masking what the old one demoted and keep
        serving rerouted units from their replacements, or a re-plan
        would silently resurrect known-bad units.
        """
        self._demoted.update(other._demoted)
        self._substituted.update(other._substituted)
        self._service_substitutions.update(other._service_substitutions)
        self._unit_attempts.update(other._unit_attempts)
        self._origin.update(other._origin)
        self._substitution_used.update(other._substitution_used)

    def _invoke_service(
        self, service, node: ServiceNode, inputs, input_key: tuple,
        page: int, stats: ExecutionStats, service_name: str | None = None,
    ):
        """One raw remote invocation, through the resilience layer.

        The seam shared by the eager page loop and the lazy page
        source: cache lookup/store and fetch accounting stay with the
        caller, so retried and hedged duplicates can never double-store
        a page or double-count a call — only the winning response is
        ever seen by the cache layer.  ``service_name`` overrides the
        node's name when the unit is rerouted onto a sibling, so
        budgets and failures attach to the service actually invoked.
        """
        name = node.service_name if service_name is None else service_name
        if self._resilience is None:
            return service.invoke(node.pattern, inputs, page=page)
        return resilient_fetch(
            self._resilience, name, input_key, page,
            lambda: service.invoke(node.pattern, inputs, page=page),
            stats,
        )

    # -- node execution -----------------------------------------------------

    def _run_service_node(
        self,
        plan: QueryPlan,
        node: ServiceNode,
        outputs: dict[str, list[Row]],
        cache: LogicalCache,
        stats: ExecutionStats,
        rng: random.Random,
    ) -> tuple[list[Row], float]:
        assert node.atom is not None and node.pattern is not None
        predecessors = plan.predecessors(node)
        if len(predecessors) != 1:
            raise ExecutionError(
                f"service node {node.label} must have exactly one predecessor"
            )
        feed = list(outputs[predecessors[0].node_id])
        if self._mode is ExecutionMode.MULTITHREADED:
            rng.shuffle(feed)
        service = self._registry.service(node.service_name)
        service_stats = stats.service(node.service_name)
        # Adaptivity hooks, hoisted so the zero-drift run pays one
        # truthiness check per node, not per row: with no reroutes
        # ``routing`` is False and every row uses the hoisted service
        # objects above, bit-identically to the static engine.
        routing = self._routing_active()
        monitor = self._drift_monitor
        # Per-node layout, hoisted out of the per-tuple loop: the input
        # positions (with constants resolved) and the output terms are
        # the same for every row, and building the cache key from the
        # position-sorted spec replaces a sort per incoming tuple.
        input_spec, output_terms = self._node_layout(node)
        pattern_code = node.pattern.code
        # Slot fast path (``repro.execution.slots``): the feed is
        # encoded once (after the MULTITHREADED shuffle, so fetch order
        # is untouched) and the per-tuple binding/predicate work runs
        # over value tuples; any misfit — heterogeneous feed, an input
        # variable the feed does not bind, an uncompilable predicate —
        # falls back wholesale to the dict loop below, which raises the
        # documented errors itself.
        slot = (
            self._service_slot_state(node, input_spec, output_terms, feed)
            if self._slot_rows
            else None
        )
        arity = len(output_terms)
        node_id = node.node_id
        latencies: list[float] = []
        produced: list[Row] = []
        for row_index, row in enumerate(feed):
            if slot is not None:
                feed_values = slot.feed_values[row_index]
                inputs = {
                    position: (
                        constant_value
                        if slot_index is None
                        else feed_values[slot_index]
                    )
                    for position, constant_value, slot_index in slot.input_spec
                }
            else:
                bindings = row.bindings
                inputs = {}
                for position, constant_value, term in input_spec:
                    if term is None:
                        inputs[position] = constant_value
                    else:
                        if term not in bindings:
                            raise ExecutionError(
                                f"unbound input variable {term} at {node.label}"
                            )
                        inputs[position] = bindings[term]
            input_key = (pattern_code, tuple(inputs.items()))
            if self._masked(node.service_name, input_key):
                # A demoted unit contributes nothing: no rows, no
                # calls, no hits (the certificate records the drop).
                continue
            if routing:
                serving_name = self._route_unit(node.service_name, input_key)
                if serving_name != node.service_name:
                    row_service = self._registry.service(serving_name)
                    row_stats = stats.service(serving_name)
                else:
                    row_service, row_stats = service, service_stats
            else:
                serving_name = node.service_name
                row_service, row_stats = service, service_stats
            pages: list = []
            issued_remote = False
            for page in range(node.fetches):
                cached = cache.lookup(serving_name, input_key, page)
                if cached is not None:
                    result = cached
                else:
                    result = self._invoke_service(
                        row_service, node, inputs, input_key, page, stats,
                        service_name=serving_name,
                    )
                    cache.store(serving_name, input_key, page, result)
                    row_stats.record_fetch(
                        result.latency, result.from_remote_cache,
                        len(result.tuples),
                    )
                    latencies.append(result.latency)
                    issued_remote = True
                    # Drift is judged against the node's costed profile,
                    # so only fetches served by the profiled service
                    # feed the monitor — sibling traffic is not the
                    # original's drift.
                    if monitor is not None and serving_name == node.service_name:
                        monitor.observe(
                            node.service_name, node.profile, result.latency
                        )
                stats.tuples_processed += len(result.tuples)
                pages.append(result)
                if not result.has_more:
                    break
            if issued_remote:
                row_stats.calls += 1
            else:
                row_stats.cache_hits += 1
            if slot is not None:
                bind = slot.bind
                predicates = slot.predicates
                merged_variables = slot.variables
                row_ranks = row.ranks
                row_provenance = row.provenance
                for page_index, result in enumerate(pages):
                    ranks = result.ranks or (None,) * len(result.tuples)
                    provenance = (
                        row_provenance
                        + ((serving_name, input_key, page_index),)
                        if self._row_provenance
                        else row_provenance
                    )
                    for values, rank in zip(result.tuples, ranks):
                        if len(values) < arity:
                            raise ExecutionError(
                                f"service returned a tuple of arity "
                                f"{len(values)}, expected {arity}"
                            )
                        merged = bind(feed_values, values)
                        if merged is None:
                            continue
                        if not all(holds(merged) for holds in predicates):
                            continue
                        produced.append(
                            Row(
                                bindings=dict(zip(merged_variables, merged)),
                                ranks=(
                                    row_ranks
                                    if rank is None
                                    else row_ranks + ((node_id, rank),)
                                ),
                                provenance=provenance,
                            )
                        )
                continue
            for page_index, result in enumerate(pages):
                ranks = result.ranks or (None,) * len(result.tuples)
                for values, rank in zip(result.tuples, ranks):
                    merged = self._bind_outputs(row, values, output_terms)
                    if merged is None:
                        continue
                    if rank is not None:
                        merged = merged.with_rank(node.node_id, rank)
                    if self._row_provenance:
                        merged = merged.with_provenance(
                            (serving_name, input_key, page_index)
                        )
                    if all(p.holds(merged.bindings) for p in node.predicates):
                        produced.append(merged)
        node_busy = self._node_busy(latencies)
        return produced, node_busy

    def _node_layout(
        self, node: ServiceNode
    ) -> tuple[list[tuple[int, object, Variable | None]], list]:
        """Resolve a service node's term layout once per execution.

        Returns the input spec — ``(position, constant value, None)``
        for constant inputs, ``(position, None, variable)`` for bound
        ones, in ascending position order — and the full term list used
        to bind output tuples.
        """
        assert node.atom is not None and node.pattern is not None
        input_spec: list[tuple[int, object, Variable | None]] = []
        for position in node.pattern.input_positions:
            term = node.atom.term_at(position)
            if isinstance(term, Constant):
                input_spec.append((position, term.value, None))
            else:
                input_spec.append((position, None, term))
        output_terms = [
            node.atom.term_at(position) for position in range(node.atom.arity)
        ]
        return input_spec, output_terms

    def _service_slot_state(
        self,
        node: ServiceNode,
        input_spec: list[tuple[int, object, Variable | None]],
        output_terms: list,
        feed: Sequence[Row],
    ) -> "_ServiceSlotState | None":
        """Compiled slot state for *node* over *feed*; None on fallback.

        Encodes the feed rows against the feed's layout, resolves the
        input spec's variables to feed slots, compiles the output terms
        into :meth:`_bind_outputs`-equivalent slot operations, and
        compiles the node predicates against the merged layout (feed
        variables followed by fresh output variables in first-occurrence
        order — exactly the binding order ``_bind_outputs`` produces).
        """
        layout = layout_for_rows(feed)
        if layout is None:
            return None
        feed_values = layout.encode_rows(feed)
        if feed_values is None:
            return None
        slot_spec: list[tuple[int, object, int | None]] = []
        for position, constant_value, term in input_spec:
            if term is None:
                slot_spec.append((position, constant_value, None))
            else:
                slot_index = layout.index.get(term)
                if slot_index is None:
                    return None  # dict path raises the documented error
                slot_spec.append((position, None, slot_index))
        bind_ops: list[tuple[int, object]] = []
        fresh_variables: list[Variable] = []
        fresh_index: dict[Variable, int] = {}
        for term in output_terms:
            if isinstance(term, Constant):
                bind_ops.append((_ServiceSlotState.CONST, term.value))
            elif term in fresh_index:
                bind_ops.append((_ServiceSlotState.DUP, fresh_index[term]))
            elif term in layout.index:
                bind_ops.append((_ServiceSlotState.CHECK, layout.index[term]))
            else:
                bind_ops.append(
                    (_ServiceSlotState.FRESH, len(fresh_variables))
                )
                fresh_index[term] = len(fresh_variables)
                fresh_variables.append(term)
        merged_layout = SlotLayout(layout.variables + tuple(fresh_variables))
        predicates = compile_predicates(node.predicates, merged_layout)
        if predicates is None:
            return None
        return _ServiceSlotState(
            feed_values, slot_spec, bind_ops, merged_layout.variables,
            predicates,
        )

    @staticmethod
    def _bind_outputs(row: Row, values: tuple, terms: list) -> Row | None:
        """Extend *row* with a service result tuple; None on mismatch.

        Output positions holding constants act as selections; output
        variables already bound upstream must agree (equi-join on the
        pipe), and repeated variables within the atom must unify.  A
        tuple that binds nothing new reuses the row's mapping instead
        of copying it — the common case when every output variable was
        already bound upstream.
        """
        if len(values) < len(terms):
            raise ExecutionError(
                f"service returned a tuple of arity {len(values)}, "
                f"expected {len(terms)}"
            )
        bindings = row.bindings
        fresh: dict | None = None
        for term, value in zip(terms, values):
            if isinstance(term, Constant):
                if value != term.value:
                    return None
            elif fresh is not None and term in fresh:
                if fresh[term] != value:
                    return None
            elif term in bindings:
                if bindings[term] != value:
                    return None
            elif fresh is None:
                fresh = {term: value}
            else:
                fresh[term] = value
        if fresh is None:
            return Row(
                bindings=bindings, ranks=row.ranks, provenance=row.provenance
            )
        return Row(
            bindings={**bindings, **fresh},
            ranks=row.ranks,
            provenance=row.provenance,
        )

    def _run_join_node(
        self,
        plan: QueryPlan,
        node: JoinNode,
        outputs: dict[str, list[Row]],
    ) -> list[Row]:
        left, right = self._join_inputs(plan, node, outputs)
        return execute_join_hashed(
            node.method, left, right, node.predicates,
            slot_rows=self._slot_rows,
        )

    def _open_join_stream(
        self,
        plan: QueryPlan,
        node: JoinNode,
        outputs: dict[str, list[Row]],
        lazy_cursors: Mapping[str, LazyServiceCursor | MultiFeedCursor] = {},
    ) -> JoinStream:
        """Suspended streamed execution of the plan's final join.

        The output node's residual predicates are pushed into the
        stream so that the early-exit certificate counts exactly the
        rows that survive to the final answer.  Inputs with a deferred
        lazy cursor are passed as cursors (pulled page by page by the
        walk); the rest are the eagerly materialized row lists.
        """
        predecessors = plan.predecessors(node)
        if len(predecessors) != 2:
            raise ExecutionError(f"join {node.label} must have two predecessors")
        left, right = (
            lazy_cursors.get(p.node_id, outputs[p.node_id]) for p in predecessors
        )
        return JoinStream(
            node.method,
            left,
            right,
            node.predicates,
            residual_predicates=plan.output_node.residual_predicates,
            slot_rows=self._slot_rows,
        )

    @staticmethod
    def _lazy_input_ids(
        plan: QueryPlan, streaming_join: JoinNode
    ) -> frozenset[str]:
        """Service nodes eligible for demand-driven fetching.

        A predecessor of the streamed join qualifies when it is a
        service node whose *only* consumer is that join: no other node
        may observe its output, so leaving part of it unfetched cannot
        change any other dataflow.  Feed shape no longer matters —
        single feeds get a plain lazy cursor, multi-tuple feeds a
        per-block :class:`MultiFeedCursor` (see
        :meth:`_open_lazy_cursor`).
        """
        eligible = []
        for predecessor in plan.predecessors(streaming_join):
            if not isinstance(predecessor, ServiceNode):
                continue
            successors = plan.successors(predecessor)
            if len(successors) == 1 and successors[0] is streaming_join:
                eligible.append(predecessor.node_id)
        return frozenset(eligible)

    def _open_lazy_cursor(
        self,
        plan: QueryPlan,
        node: ServiceNode,
        outputs: dict[str, list[Row]],
        cache: LogicalCache,
        stats: ExecutionStats,
    ) -> LazyServiceCursor | MultiFeedCursor:
        """A demand-driven cursor over *node*'s (possibly many) feeds.

        A single-feed node produces one rank-monotone row sequence (the
        feed rank is constant and service ranks only grow), wrapped in
        a plain :class:`LazyServiceCursor`.  A multi-tuple feed
        produces one such *block* per feed row; each block becomes its
        own budgeted cursor (with its own page source, hence the same
        per-input-tuple cache and call accounting as eager execution)
        inside a :class:`MultiFeedCursor`, whose block-interleaving
        certificate keeps the streamed walk sound.  Non-rank-monotone
        behavior is handled dynamically inside the cursors (a full
        drain of the offending block) — no input shape falls back to
        eager materialization anymore.
        """
        predecessors = plan.predecessors(node)
        if len(predecessors) != 1:
            raise ExecutionError(
                f"service node {node.label} must have exactly one predecessor"
            )
        feed = outputs[predecessors[0].node_id]
        cursors = []
        for row in feed:
            source = _LazyServicePageSource(self, node, row, cache, stats)
            if self._masked(node.service_name, source.input_key):
                # A demoted block is exhausted from birth: it places no
                # rows, issues no fetch, and its infinite floor lets
                # the block-interleaving certificate skip it entirely.
                cursors.append(
                    LazyServiceCursor(
                        NullPageSource(), base_rank=row.rank_key()
                    )
                )
            else:
                cursors.append(
                    LazyServiceCursor(source, base_rank=row.rank_key())
                )
        if len(cursors) == 1:
            return cursors[0]
        return MultiFeedCursor(cursors)

    def _join_inputs(
        self,
        plan: QueryPlan,
        node: JoinNode,
        outputs: dict[str, list[Row]],
    ) -> tuple[list[Row], list[Row]]:
        predecessors = plan.predecessors(node)
        if len(predecessors) != 2:
            raise ExecutionError(f"join {node.label} must have two predecessors")
        return outputs[predecessors[0].node_id], outputs[predecessors[1].node_id]

    @staticmethod
    def _streamed_join_node(plan: QueryPlan) -> JoinNode | None:
        """The join node eligible for streamed top-k early exit.

        Only the output node's direct join predecessor qualifies: its
        rows reach the answer without gaining further rank annotations
        or passing through row-producing nodes, so a top-k certificate
        at the join is a top-k certificate for the whole query (the
        output's residual filter is applied inside the stream).  Plans
        whose final node is a service invocation fall back to full
        materialization — nothing is skipped, results are identical.
        """
        predecessors = plan.predecessors(plan.output_node)
        if len(predecessors) == 1 and isinstance(predecessors[0], JoinNode):
            join = predecessors[0]
            if len(plan.successors(join)) == 1:
                return join
        return None

    def _run_output_node(
        self,
        plan: QueryPlan,
        node: OutputNode,
        outputs: dict[str, list[Row]],
    ) -> list[Row]:
        predecessors = plan.predecessors(node)
        if len(predecessors) != 1:
            raise ExecutionError("output node must have exactly one predecessor")
        rows = outputs[predecessors[0].node_id]
        return [
            row
            for row in rows
            if all(p.holds(row.bindings) for p in node.residual_predicates)
        ]

    # -- timing ---------------------------------------------------------------

    def _node_busy(self, latencies: list[float]) -> float:
        if not latencies:
            return 0.0
        if self._mode is ExecutionMode.MULTITHREADED:
            return max(latencies) + self._thread_overhead * len(latencies)
        return sum(latencies)

    def _elapsed(self, plan: QueryPlan, busy: Mapping[str, float]) -> float:
        if self._mode is ExecutionMode.SEQUENTIAL:
            return sum(busy.values())
        finish: dict[str, float] = {}
        for node in plan.topological_order():
            predecessors = plan.predecessors(node)
            start = max(
                (finish[p.node_id] for p in predecessors), default=0.0
            )
            finish[node.node_id] = start + busy[node.node_id]
        return finish[plan.output_node.node_id]


class _ServiceSlotState:
    """Compiled slot-path state of one service node (see ``slots``).

    ``bind_ops`` is the output-term binding program, one operation per
    term position (applied in term order, like ``_bind_outputs``'s
    ``zip``): ``CONST`` rejects tuples whose value differs from the
    constant (selection), ``CHECK`` rejects on disagreement with the
    feed slot (the equi-join on the pipe), ``FRESH`` appends the first
    occurrence of a new variable, ``DUP`` rejects repeated occurrences
    that fail to unify.  The merged value tuple is the feed tuple plus
    the fresh values, aligned with ``variables``.
    """

    CONST, CHECK, FRESH, DUP = range(4)

    __slots__ = ("feed_values", "input_spec", "bind_ops", "variables", "predicates")

    def __init__(
        self,
        feed_values: list[tuple],
        input_spec: list[tuple[int, object, int | None]],
        bind_ops: list[tuple[int, object]],
        variables: tuple[Variable, ...],
        predicates: list,
    ) -> None:
        self.feed_values = feed_values
        self.input_spec = input_spec
        self.bind_ops = bind_ops
        self.variables = variables
        self.predicates = predicates

    def bind(self, feed_values: tuple, values: tuple) -> tuple | None:
        """Merged value tuple for one service result; None on mismatch."""
        fresh: list = []
        for (op, aux), value in zip(self.bind_ops, values):
            if op == 2:  # FRESH
                fresh.append(value)
            elif op == 1:  # CHECK
                if feed_values[aux] != value:
                    return None
            elif op == 0:  # CONST
                if value != aux:
                    return None
            elif fresh[aux] != value:  # DUP
                return None
        return feed_values + tuple(fresh)


class _LazyServicePageSource:
    """Fetches one service node's pages on demand (engine collaborator).

    Implements the :class:`~repro.execution.lazy.PageSource` protocol
    for a single-feed service node: each ``fetch(page)`` performs the
    logical-cache lookup, the remote invocation, the statistics
    accounting, and the output binding that eager execution would have
    performed for that page — just later, and only if demanded.
    ``budget`` is the node's fetching factor, so the lazy universe is
    exactly the eager one.

    Call/hit accounting matches the eager engine's per-input-tuple
    semantics within each statistics *epoch* (one execution, or one
    resumed round after :meth:`swap_stats`): the first remote page of
    an epoch counts one call; an epoch served purely from the logical
    cache counts one cache hit.
    """

    def __init__(
        self,
        engine: ExecutionEngine,
        node: ServiceNode,
        feed_row: Row,
        cache: LogicalCache,
        stats: ExecutionStats,
    ) -> None:
        assert node.pattern is not None
        self._node = node
        self._feed_row = feed_row
        self._cache = cache
        self._stats = stats
        input_spec, self._output_terms = engine._node_layout(node)
        bindings = feed_row.bindings
        inputs: dict[int, object] = {}
        for position, constant_value, term in input_spec:
            if term is None:
                inputs[position] = constant_value
            else:
                if term not in bindings:
                    raise ExecutionError(
                        f"unbound input variable {term} at {node.label}"
                    )
                inputs[position] = bindings[term]
        self._inputs = inputs
        self.input_key = (node.pattern.code, tuple(inputs.items()))
        self._engine = engine
        # Routed once at construction: a reroute installed mid-stream
        # takes effect on the next restart, never mid-block (a block's
        # pages must all come from one server for rank soundness).
        if engine._routing_active():
            self._serving_name = engine._route_unit(
                node.service_name, self.input_key
            )
        else:
            self._serving_name = node.service_name
        self._service = engine._registry.service(self._serving_name)
        self.budget = node.fetches
        self._rank_floor = 0
        self._epoch_pages = 0
        self._epoch_remote = False
        self._epoch_counted_hit = False

    def swap_stats(self, stats: object) -> None:
        """Start a new accounting epoch on *stats* (resumed rounds)."""
        assert isinstance(stats, ExecutionStats)
        self._stats = stats
        self._epoch_pages = 0
        self._epoch_remote = False
        self._epoch_counted_hit = False

    def fetch(self, page: int) -> FetchedPage:
        node = self._node
        name = self._serving_name
        service_stats = self._stats.service(name)
        cached = self._cache.lookup(name, self.input_key, page)
        latency: float | None = None
        if cached is not None:
            result = cached
        else:
            assert node.pattern is not None
            result = self._engine._invoke_service(
                self._service, node, self._inputs, self.input_key, page,
                self._stats, service_name=name,
            )
            self._cache.store(name, self.input_key, page, result)
            service_stats.record_fetch(
                result.latency, result.from_remote_cache, len(result.tuples)
            )
            latency = result.latency
            monitor = self._engine._drift_monitor
            # Same rule as the eager seam: only profiled-service
            # fetches feed the drift monitor.
            if monitor is not None and name == node.service_name:
                monitor.observe(node.service_name, node.profile, result.latency)
        if cached is None:
            if not self._epoch_remote:
                service_stats.calls += 1
                if self._epoch_counted_hit:
                    service_stats.cache_hits -= 1
                    self._epoch_counted_hit = False
                self._epoch_remote = True
        elif self._epoch_pages == 0:
            service_stats.cache_hits += 1
            self._epoch_counted_hit = True
        self._epoch_pages += 1
        self._stats.tuples_processed += len(result.tuples)

        rows: list[Row] = []
        ranks = result.ranks or (None,) * len(result.tuples)
        for values, rank in zip(result.tuples, ranks):
            merged = ExecutionEngine._bind_outputs(
                self._feed_row, values, self._output_terms
            )
            if merged is None:
                continue
            if rank is not None:
                merged = merged.with_rank(node.node_id, rank)
            if self._engine._row_provenance:
                merged = merged.with_provenance(
                    (self._serving_name, self.input_key, page)
                )
            if all(p.holds(merged.bindings) for p in node.predicates):
                rows.append(merged)
        if result.ranks:
            self._rank_floor = max(self._rank_floor, result.ranks[-1] + 1)
        return FetchedPage(
            rows=tuple(rows),
            raw_tuples=len(result.tuples),
            has_more=result.has_more,
            rank_floor=self._rank_floor,
            latency=latency,
        )


def execute_plan(
    plan: QueryPlan,
    registry: ServiceRegistry,
    head: Sequence[Variable] = (),
    cache_setting: CacheSetting = CacheSetting.NO_CACHE,
    mode: ExecutionMode = ExecutionMode.PARALLEL,
    k: int | None = None,
) -> ExecutionResult:
    """One-call convenience wrapper around :class:`ExecutionEngine`."""
    engine = ExecutionEngine(registry, cache_setting=cache_setting, mode=mode)
    return engine.execute(plan, head=head, k=k)
