"""Parallel plan execution on real threads (Section 6's multithreading).

The virtual-time engine *models* parallelism: under
``ExecutionMode.PARALLEL`` the elapsed time is the DAG critical path,
and under ``MULTITHREADED`` a node's busy time collapses to its
largest single call latency.  The paper's multithreading experiment,
though, is a statement about *real* execution — dispatching the
service calls of a plan to concurrent threads turned a 374 s run into
76 s.  :class:`ParallelExecutor` is that execution path: it walks the
same query plans the engine does, but runs them on a
``ThreadPoolExecutor``, overlapping both **independent plan branches**
(nodes whose precedence constraints are already satisfied, exposed by
``plans/dag.py``) and the **per-feed-tuple service calls** within one
node — the dominant source of parallelism, since a proliferative feed
turns one node into hundreds of independent remote calls.

**Determinism.**  Worker scheduling is nondeterministic, but nothing
observable depends on it:

* every per-feed-row task is indexed by its feed position and the
  produced rows are concatenated in feed order after all tasks of the
  node complete — the same order the engine's sequential loop emits;
* the logical cache is wrapped in a lock-guarded
  :class:`~repro.execution.cache.ThreadSafeCache`, and each row task
  holds the per-input-setting ``key_lock`` across its whole lookup →
  invoke → store page loop, so exactly one worker resolves each
  distinct input setting and call/hit counts match sequential
  execution (no double-counted remote calls);
* per-row statistics are accumulated into task-local
  :class:`~repro.execution.stats.ExecutionStats` and merged after the
  node completes — all counters are sums, so merge order is
  irrelevant;
* the one-call cache is inherently order-dependent (its hit pattern
  depends on which call came *last*), so under
  ``CacheSetting.ONE_CALL`` the worker count is forced to 1 — same
  answers with any setting, but call counts would otherwise depend on
  scheduling.

Hence results are bit-identical — rows, ranks, emission order, call
counts — to ``ExecutionEngine(mode=PARALLEL)`` on the same plan, which
``tests/test_parallel.py`` checks differentially.

**Timing.**  ``stats.elapsed`` stays *virtual* (critical path over the
DAG, with a node's busy time collapsing to its largest per-row latency
plus a per-call thread overhead when more than one worker runs);
``stats.wall_time`` records the real seconds the pool took, and
``stats.parallel_workers`` the effective worker count — the quantities
the hotpaths bench sweeps.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Mapping, Sequence

from repro.execution.cache import (
    CacheSetting,
    LogicalCache,
    ThreadSafeCache,
    make_cache,
)
from repro.execution.engine import (
    ExecutionEngine,
    ExecutionError,
    ExecutionMode,
    ExecutionResult,
)
from repro.execution.resilience import ResilienceConfig, UnresponsiveService
from repro.execution.results import ResultTable, Row, compose_ranking
from repro.execution.stats import ExecutionStats
from repro.model.terms import Variable
from repro.plans.dag import QueryPlan
from repro.plans.nodes import InputNode, JoinNode, OutputNode, ServiceNode


class ParallelExecutor:
    """Executes query plans on a thread pool (see the module docstring)."""

    def __init__(
        self,
        registry,
        cache_setting: CacheSetting = CacheSetting.NO_CACHE,
        workers: int = 4,
        thread_overhead: float = 0.05,
        slot_rows: bool = True,
        resilience: ResilienceConfig | None = None,
        row_provenance: bool = False,
    ) -> None:
        self._registry = registry
        self._cache_setting = cache_setting
        self._workers = max(1, workers)
        self._thread_overhead = thread_overhead
        self._resilience = resilience
        #: Join/output/binding logic is delegated to a composed engine
        #: (PARALLEL mode: no feed shuffle, critical-path timing), so
        #: the two execution paths cannot drift apart.  The resilience
        #: config rides along: every row task's page loop runs through
        #: the same retry/hedge seam the sequential engine uses, and
        #: demotions accumulate on the composed engine's mask.
        self._engine = ExecutionEngine(
            registry,
            cache_setting=cache_setting,
            mode=ExecutionMode.PARALLEL,
            thread_overhead=thread_overhead,
            slot_rows=slot_rows,
            resilience=resilience,
            row_provenance=row_provenance,
        )

    @property
    def workers(self) -> int:
        """The configured worker count (before the one-call clamp)."""
        return self._workers

    def effective_workers(self) -> int:
        """Workers actually used: 1 under the order-dependent one-call
        cache, the configured count otherwise."""
        if self._cache_setting is CacheSetting.ONE_CALL:
            return 1
        return self._workers

    def execute(
        self,
        plan: QueryPlan,
        head: Sequence[Variable] = (),
        k: int | None = None,
        reset_remote_caches: bool = True,
        shared_cache: LogicalCache | None = None,
    ) -> ExecutionResult:
        """Run *plan* on the pool and return ranked answers plus stats.

        The signature mirrors :meth:`ExecutionEngine.execute`; results
        are always fully materialized (``complete`` is True and no
        stream rides along — parallel dispatch and demand-driven
        laziness pull in opposite directions, so progressive sessions
        keep using the streamed engine).  A ``shared_cache`` is wrapped
        in a :class:`ThreadSafeCache` unless it already is one; stores
        reach the wrapped cache, so warming a long-lived serving cache
        works (:meth:`repro.serving.service.QueryService.prefetch`).
        """
        plan.validate()
        if reset_remote_caches:
            self._registry.reset_all()
        started = time.perf_counter()
        inner = (
            shared_cache
            if shared_cache is not None
            else make_cache(self._cache_setting)
        )
        cache = inner if isinstance(inner, ThreadSafeCache) else ThreadSafeCache(inner)
        workers = self.effective_workers()
        stats = ExecutionStats()
        stats.parallel_workers = workers
        # Partial-results restart loop (mirrors the engine's): a row
        # task that exhausts its retry budget raises
        # UnresponsiveService; every such failure still in flight is
        # drained, the units are demoted on the composed engine, and
        # the walk re-runs with the units masked — the shared cache
        # makes restarts cheap.  The stats object survives restarts so
        # aborted work stays counted.
        while True:
            outputs: dict[str, list[Row]] = {}
            busy: dict[str, float] = {}
            order = list(plan.topological_order())
            done: set[str] = set()
            #: Service nodes whose row tasks are submitted but not yet
            #: collected, in submission order.
            in_flight: list[tuple[ServiceNode, list]] = []
            failures: list[UnresponsiveService] = []
            with ThreadPoolExecutor(max_workers=workers) as pool:
                try:
                    while order or in_flight:
                        progressed = False
                        for node in list(order):
                            predecessors = plan.predecessors(node)
                            if any(
                                p.node_id not in done for p in predecessors
                            ):
                                continue
                            if isinstance(node, ServiceNode):
                                # Fan the node out per feed row;
                                # collection is deferred so sibling
                                # branches that become ready in this
                                # sweep overlap on the pool.
                                futures = self._submit_service_node(
                                    plan, node, outputs, cache, pool
                                )
                                in_flight.append((node, futures))
                                order.remove(node)
                                continue
                            if isinstance(node, InputNode):
                                outputs[node.node_id] = [Row(bindings={})]
                                busy[node.node_id] = 0.0
                            elif isinstance(node, JoinNode):
                                outputs[node.node_id] = (
                                    self._engine._run_join_node(
                                        plan, node, outputs
                                    )
                                )
                                busy[node.node_id] = node.response_time
                            elif isinstance(node, OutputNode):
                                outputs[node.node_id] = (
                                    self._engine._run_output_node(
                                        plan, node, outputs
                                    )
                                )
                                busy[node.node_id] = 0.0
                            else:
                                raise ExecutionError(
                                    f"unknown node type {type(node).__name__}"
                                )
                            done.add(node.node_id)
                            order.remove(node)
                            progressed = True
                        if progressed:
                            continue
                        if not in_flight:  # pragma: no cover - cycle guard
                            raise ExecutionError("plan made no progress")
                        # Nothing inline-runnable: collect the oldest
                        # in-flight node (its successors may unblock
                        # further submissions while younger siblings
                        # keep computing).
                        node, futures = in_flight.pop(0)
                        rows, node_busy = self._collect_service_node(
                            node, futures, stats, workers
                        )
                        outputs[node.node_id] = rows
                        busy[node.node_id] = node_busy
                        done.add(node.node_id)
                except UnresponsiveService as error:
                    failures.append(error)
                    # Drain the remaining in-flight tasks: concurrent
                    # units may have exhausted their budgets too, and
                    # demoting them all now saves one restart each.
                    for _, futures in in_flight:
                        for future in futures:
                            try:
                                future.result()
                            except UnresponsiveService as also:
                                failures.append(also)
                            except Exception:
                                # Deterministic: recurs on the restart
                                # and propagates there if permanent.
                                pass
            if not failures:
                break
            for failure in failures:
                # Reroute-or-demote; stale failures (the unit already
                # moved to a sibling on an earlier iteration of this
                # drain) are dropped inside the handler.
                self._engine.handle_unresponsive(failure)
        stats.elapsed = self._engine._elapsed(plan, busy)
        stats.wall_time = time.perf_counter() - started
        produced = outputs[plan.output_node.node_id]
        final_rows = compose_ranking(produced)
        certificate = self._engine.certificate_for(plan, final_rows)
        if certificate is not None:
            stats.demoted_blocks = len(certificate.dropped)
            stats.substituted_blocks = len(certificate.substituted)
        table = ResultTable(head=tuple(head), rows=final_rows, complete=True)
        return ExecutionResult(
            table=table,
            stats=stats,
            elapsed=stats.elapsed,
            k=k,
            node_output_sizes={
                node_id: len(rows) for node_id, rows in outputs.items()
            },
            stream=None,
            certificate=certificate,
        )

    # -- service fan-out -----------------------------------------------------

    def _submit_service_node(
        self,
        plan: QueryPlan,
        node: ServiceNode,
        outputs: Mapping[str, list[Row]],
        cache: ThreadSafeCache,
        pool: ThreadPoolExecutor,
    ) -> list:
        """One pool task per feed row, in feed order."""
        predecessors = plan.predecessors(node)
        if len(predecessors) != 1:
            raise ExecutionError(
                f"service node {node.label} must have exactly one predecessor"
            )
        feed = list(outputs[predecessors[0].node_id])
        feed_id = predecessors[0].node_id
        input_spec, _ = self._engine._node_layout(node)
        pattern_code = node.pattern.code
        return [
            pool.submit(
                self._service_row_task,
                plan, node, feed_id, row, cache, input_spec, pattern_code,
            )
            for row in feed
        ]

    def _service_row_task(
        self,
        plan: QueryPlan,
        node: ServiceNode,
        feed_id: str,
        row: Row,
        cache: ThreadSafeCache,
        input_spec: list,
        pattern_code: str,
    ) -> tuple[list[Row], float, int, ExecutionStats]:
        """Resolve one feed row against *node* (runs on a pool worker).

        Delegates the page loop and output binding to the engine's
        ``_run_service_node`` over a single-row feed, under the input
        setting's single-flight lock — held across the whole page loop
        so concurrent duplicate settings cannot double-count a call.
        Returns the produced rows, the row's remote busy time, whether
        it issued a remote call, and its task-local statistics.
        """
        bindings = row.bindings
        inputs: dict[int, object] = {}
        for position, constant_value, term in input_spec:
            if term is None:
                inputs[position] = constant_value
            else:
                if term not in bindings:
                    raise ExecutionError(
                        f"unbound input variable {term} at {node.label}"
                    )
                inputs[position] = bindings[term]
        input_key = (pattern_code, tuple(inputs.items()))
        local = ExecutionStats()
        with cache.key_lock(node.service_name, input_key):
            produced, row_busy = self._engine._run_service_node(
                plan, node, {feed_id: [row]}, cache, local,
                random.Random(0),  # unused: PARALLEL mode never shuffles
            )
        # The task touches exactly one logical unit, so the total is
        # that unit's calls no matter which service (the node's own or
        # a rerouted sibling) ended up serving it.
        remote_calls = local.total_calls
        return produced, row_busy, remote_calls, local

    def _collect_service_node(
        self,
        node: ServiceNode,
        futures: list,
        stats: ExecutionStats,
        workers: int,
    ) -> tuple[list[Row], float]:
        """Await all row tasks, merging rows (feed order) and counters."""
        produced: list[Row] = []
        row_busys: list[float] = []
        remote_calls = 0
        for future in futures:
            rows, row_busy, calls, local = future.result()
            produced.extend(rows)
            if row_busy:
                row_busys.append(row_busy)
            remote_calls += calls
            self._merge_stats(stats, local)
        if not row_busys:
            node_busy = 0.0
        elif workers > 1:
            # Concurrent rows overlap: the node is busy for its longest
            # row plus a dispatch overhead per remote call (the same
            # accounting the MULTITHREADED virtual mode applies).
            node_busy = max(row_busys) + self._thread_overhead * remote_calls
        else:
            node_busy = sum(row_busys)
        return produced, node_busy

    @staticmethod
    def _merge_stats(stats: ExecutionStats, local: ExecutionStats) -> None:
        """Fold one task-local statistics object into the global one."""
        for name, source in local.per_service.items():
            target = stats.service(name)
            target.calls += source.calls
            target.fetches += source.fetches
            target.cache_hits += source.cache_hits
            target.remote_cache_hits += source.remote_cache_hits
            target.busy_time += source.busy_time
            target.tuples_fetched += source.tuples_fetched
        stats.tuples_processed += local.tuples_processed
        stats.retries += local.retries
        stats.retry_backoff += local.retry_backoff
        stats.hedged_pulls += local.hedged_pulls
        stats.hedged_wins += local.hedged_wins
        stats.wasted_fetches += local.wasted_fetches
