"""Time-based cost metrics (Section 2.3 and Eq. 4 in Section 5.3).

The *execution time metric* accounts for the slowest path flowing
tuples from the user input to the output::

    ETM(G) = max over paths P of [ max over n in P (F_n · t_in(n) · τ_n)
                                   + sum over m in P, m != bottleneck, of τ_m ]

The first term is the *bottleneck* of the path (the node where the
product of invocations/fetches and time-per-invocation is maximal);
the remainder is the time needed to fill the pipe up to the bottleneck
and empty it afterwards (one invocation per other node).

The *bottleneck metric* of Srivastava et al. [16] keeps only the first
term; it suits pipelined execution of continuous queries.  The
*time-to-screen* metric measures the time to present the first output
tuple: one invocation per node along the slowest root-to-output path.
"""

from __future__ import annotations

from repro.costs.base import CostMetric
from repro.plans.annotate import PlanAnnotation
from repro.plans.dag import QueryPlan
from repro.plans.nodes import JoinNode, PlanNode, ServiceNode


def _tau(node: PlanNode) -> float:
    """Per-invocation response time of a node (0 for IN/OUT)."""
    if isinstance(node, ServiceNode):
        assert node.profile is not None
        return node.profile.response_time
    if isinstance(node, JoinNode):
        return node.response_time
    return 0.0


def _work(node: PlanNode, annotation: PlanAnnotation) -> float:
    """Total busy time of a node: F · t_in · τ."""
    if isinstance(node, ServiceNode):
        return node.fetches * annotation.calls(node) * _tau(node)
    if isinstance(node, JoinNode):
        return node.response_time
    return 0.0


class ExecutionTimeMetric(CostMetric):
    """Eq. 4: slowest path with bottleneck plus pipe fill/drain."""

    name = "execution-time"

    def cost(self, plan: QueryPlan, annotation: PlanAnnotation) -> float:
        worst = 0.0
        for path in plan.paths():
            works = [_work(node, annotation) for node in path]
            if not works:
                continue
            bottleneck_index = max(range(len(works)), key=works.__getitem__)
            others = sum(
                _tau(node)
                for index, node in enumerate(path)
                if index != bottleneck_index
            )
            worst = max(worst, works[bottleneck_index] + others)
        return worst


class BottleneckMetric(CostMetric):
    """Execution time of the slowest service in the plan ([16]).

    Fully studied by Srivastava et al. for pipelined continuous
    queries; the paper argues it is not advised for search services,
    which rarely produce all their tuples.
    """

    name = "bottleneck"

    def cost(self, plan: QueryPlan, annotation: PlanAnnotation) -> float:
        return max(
            (_work(node, annotation) for node in plan.nodes),
            default=0.0,
        )


class TimeToScreenMetric(CostMetric):
    """Time to the first output tuple: fill the pipe once.

    Every node on the slowest input → output path must answer once
    before the first tuple can reach the user.
    """

    name = "time-to-screen"

    def cost(self, plan: QueryPlan, annotation: PlanAnnotation) -> float:
        del annotation
        worst = 0.0
        for path in plan.paths():
            worst = max(worst, sum(_tau(node) for node in path))
        return worst
