"""Sum cost metrics (Section 2.3 and Eq. 3 in Section 5.3).

The sum cost metric computes the cost of a plan as the sum of the
costs incurred by each service invocation::

    SCM(G) = sum over nodes n of  m(n) · t_in(n)

where ``m(n)`` is the individual cost of one invocation of the service
at ``n`` and ``t_in(n)`` is the (cache-aware) number of required
invocations.  Chunked services pay once per *fetch*, i.e. ``F_n`` times
per invocation.

The *request–response* metric is the special case ``m(n) = 1``: it
counts the number of service calls, which is the relevant measure when
data transfer over the network dominates.
"""

from __future__ import annotations

from repro.costs.base import CostMetric
from repro.plans.annotate import PlanAnnotation
from repro.plans.dag import QueryPlan
from repro.plans.nodes import JoinNode


class SumCostMetric(CostMetric):
    """Eq. 3: sum of per-invocation costs, weighted by call counts.

    ``include_join_cost`` adds, for each parallel join, its registered
    per-candidate-tuple cost multiplied by the number of candidate
    pairs; the paper mentions join computation as an example of an
    operator cost contributing to the sum.
    """

    name = "sum-cost"

    def __init__(self, include_join_cost: bool = True) -> None:
        self._include_join_cost = include_join_cost

    def cost(self, plan: QueryPlan, annotation: PlanAnnotation) -> float:
        total = 0.0
        for node in plan.service_nodes:
            assert node.profile is not None
            per_call = node.profile.cost_per_call
            total += per_call * annotation.calls(node) * node.fetches
        if self._include_join_cost:
            for join in plan.join_nodes:
                total += join.cost_per_tuple * annotation.tuples_in(join)
        return total


class RequestResponseMetric(CostMetric):
    """Counts the number of service requests (m(n) = 1, joins free)."""

    name = "request-response"

    def __init__(self, count_fetches: bool = True) -> None:
        """When *count_fetches* is False, count input settings instead
        of individual page fetches (useful to compare against call
        counters that treat one paged interaction as one call)."""
        self._count_fetches = count_fetches

    def cost(self, plan: QueryPlan, annotation: PlanAnnotation) -> float:
        total = 0.0
        for node in plan.service_nodes:
            fetches = node.fetches if self._count_fetches else 1
            total += annotation.calls(node) * fetches
        return total


class MonetaryCostMetric(SumCostMetric):
    """Sum cost metric ignoring join computation: pure per-call charges."""

    name = "monetary"

    def __init__(self) -> None:
        super().__init__(include_join_cost=False)


def _is_join(node: object) -> bool:
    return isinstance(node, JoinNode)
