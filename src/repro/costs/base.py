"""Cost metric interface (Section 2.3).

A cost metric is a function associating a cost to each (annotated)
query plan.  All metrics considered in the paper are *monotonic* with
respect to the way DAGs are constructed: evaluating a metric on a
partially constructed plan yields a lower bound for every completion,
which is what makes branch-and-bound sound (Section 2.4).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.plans.annotate import PlanAnnotation
from repro.plans.dag import QueryPlan


class CostMetric(ABC):
    """Assigns a nonnegative cost to an annotated plan."""

    #: Short identifier used in reports and benchmarks.
    name: str = "abstract"

    @abstractmethod
    def cost(self, plan: QueryPlan, annotation: PlanAnnotation) -> float:
        """The cost of a fully constructed, annotated plan."""

    def lower_bound(self, plan: QueryPlan, annotation: PlanAnnotation) -> float:
        """A lower bound for any completion of a partial plan.

        Because all considered metrics are monotonic in plan
        construction (nodes are only appended after the ones already
        placed, so existing estimates never change), the cost of the
        partial plan itself — with all fetching factors at their
        minimum of 1 — is a valid lower bound.  Subclasses may tighten
        this.
        """
        return self.cost(plan, annotation)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
