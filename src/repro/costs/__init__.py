"""Cost metrics: sum cost, request-response, execution time, bottleneck."""

from repro.costs.base import CostMetric
from repro.costs.sum_cost import (
    MonetaryCostMetric,
    RequestResponseMetric,
    SumCostMetric,
)
from repro.costs.time_cost import (
    BottleneckMetric,
    ExecutionTimeMetric,
    TimeToScreenMetric,
)

__all__ = [
    "BottleneckMetric",
    "CostMetric",
    "ExecutionTimeMetric",
    "MonetaryCostMetric",
    "RequestResponseMetric",
    "SumCostMetric",
    "TimeToScreenMetric",
]
