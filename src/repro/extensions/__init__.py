"""Extensions beyond the core framework: off-query expansion."""

from repro.extensions.expansion import (
    ExpandedQuery,
    ExpansionError,
    blocked_variables,
    expand_query,
    seeder_candidates,
    variable_domains,
)

__all__ = [
    "ExpandedQuery",
    "ExpansionError",
    "blocked_variables",
    "expand_query",
    "seeder_candidates",
    "variable_domains",
]
