"""Off-query expansion under access limitations (Section 7).

For some queries, no permissible choice of access patterns exists: some
input field can never be bound.  The original query is then
unanswerable as such, but a *subset* of its answers may be obtained by
invoking services that are not mentioned in the query yet are available
in the schema, whose output fields provide useful bindings for input
fields over the same abstract domain.  The paper's example: if all the
City fields were inputs but an ``oldTown(City)`` service provided
locations in output, it could seed the query.

We implement the non-recursive core of this idea: a single round of
seeding.  Each blocked input variable is matched, by abstract domain,
against candidate *seeder* services with a directly-callable access
pattern outputting that domain; one seeder atom per blocked domain is
added, after which the expanded query must be executable.  The result
is an under-approximation of the original query — answers are limited
to the bindings the seeders produce; the general case requires
recursive plans [Millstein et al. 2000], which we do not implement.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.model.atoms import Atom
from repro.model.query import ConjunctiveQuery
from repro.model.schema import AccessPattern, Schema, ServiceSignature
from repro.model.terms import Variable
from repro.optimizer.patterns import permissible_sequences


class ExpansionError(ValueError):
    """Raised when no single-round expansion can unblock the query."""


@dataclass(frozen=True)
class ExpandedQuery:
    """An executable expansion of a blocked query.

    ``added_atoms`` are the off-query seeder atoms appended to the
    body; answers of the expanded query are a subset of the original
    query's answers (restricted to seeder-provided bindings).
    """

    original: ConjunctiveQuery
    query: ConjunctiveQuery
    added_atoms: tuple[Atom, ...]

    @property
    def is_expansion(self) -> bool:
        """True when seeder atoms were actually added."""
        return bool(self.added_atoms)


def variable_domains(query: ConjunctiveQuery, schema: Schema) -> dict[Variable, str]:
    """Abstract domain of each query variable (first occurrence wins)."""
    domains: dict[Variable, str] = {}
    for atom in query.atoms:
        sig = schema.get(atom.service)
        for position, term in enumerate(atom.terms):
            if isinstance(term, Variable) and term not in domains:
                domains[term] = sig.domain_of(position)
    return domains


def blocked_variables(query: ConjunctiveQuery, schema: Schema) -> frozenset[Variable]:
    """Variables that can never be bound under any pattern choice.

    A variable is *potentially bindable* if some atom has some feasible
    pattern placing it in an output position; otherwise every pattern
    choice leaves it input-only, which blocks executability.
    """
    bindable: set[Variable] = set()
    for atom in query.atoms:
        sig = schema.get(atom.service)
        for pattern in sig.patterns:
            for position in pattern.output_positions:
                term = atom.term_at(position)
                if isinstance(term, Variable):
                    bindable.add(term)
    all_variables = query.body_variables
    return frozenset(all_variables - bindable)


def _directly_callable_patterns(sig: ServiceSignature) -> tuple[AccessPattern, ...]:
    """Patterns with no input fields (seeders must start from nothing)."""
    return tuple(p for p in sig.patterns if not p.input_positions)


def seeder_candidates(
    schema: Schema, domain: str, exclude: frozenset[str]
) -> tuple[tuple[ServiceSignature, AccessPattern, int], ...]:
    """(signature, pattern, output position) triples seeding *domain*."""
    found = []
    for sig in schema:
        if sig.name in exclude:
            continue
        for pattern in _directly_callable_patterns(sig):
            for position in pattern.output_positions:
                if sig.domain_of(position) == domain:
                    found.append((sig, pattern, position))
                    break
    return tuple(found)


def _fresh_variable(base: str, taken: set[str]) -> Variable:
    name = base
    counter = 0
    while name in taken:
        counter += 1
        name = f"{base}_{counter}"
    taken.add(name)
    return Variable(name)


def _seeder_atom(
    sig: ServiceSignature,
    seed_position: int,
    variable: Variable,
    taken: set[str],
) -> Atom:
    terms = []
    for position in range(sig.arity):
        if position == seed_position:
            terms.append(variable)
        else:
            terms.append(
                _fresh_variable(f"{sig.name.capitalize()}{position}", taken)
            )
    return Atom(sig.name, tuple(terms))


def expand_query(query: ConjunctiveQuery, schema: Schema) -> ExpandedQuery:
    """Make *query* executable, adding off-query seeders if needed.

    Returns the query unchanged when it is already executable.  Raises
    :class:`ExpansionError` when one round of seeding cannot help.
    """
    if permissible_sequences(query, schema):
        return ExpandedQuery(original=query, query=query, added_atoms=())
    domains = variable_domains(query, schema)
    blocked = blocked_variables(query, schema)
    query_services = frozenset(query.services)
    taken = {v.name for v in query.body_variables}

    per_variable: list[tuple[Variable, tuple]] = []
    for variable in sorted(blocked, key=lambda v: v.name):
        candidates = seeder_candidates(schema, domains[variable], query_services)
        if not candidates:
            raise ExpansionError(
                f"no off-query service outputs domain {domains[variable]!r} "
                f"for blocked variable {variable}"
            )
        per_variable.append((variable, candidates))

    # Try combinations of one seeder per blocked variable (usually one).
    for combination in itertools.product(
        *[candidates for _, candidates in per_variable]
    ):
        added = tuple(
            _seeder_atom(sig, position, variable, set(taken))
            for (variable, _), (sig, _, position) in zip(per_variable, combination)
        )
        expanded = ConjunctiveQuery(
            name=query.name,
            head=query.head,
            atoms=query.atoms + added,
            predicates=query.predicates,
        )
        if permissible_sequences(expanded, schema):
            return ExpandedQuery(original=query, query=expanded, added_atoms=added)
    raise ExpansionError(
        "seeding every blocked variable still leaves the query non-executable "
        "(a recursive expansion would be required)"
    )
