"""The three-phase branch-and-bound optimizer (Sections 2.4 and 4).

Given a conjunctive query over registered services, find the fully
instantiated query plan minimizing the expected execution cost for the
first ``k`` answers under a chosen metric:

* **phase 1** enumerates permissible access-pattern sequences, most
  cogent first ("bound is better");
* **phase 2** explores plan topologies (partial orders of atoms),
  seeding the incumbent with the "selective" and "parallel" heuristic
  plans, and pruning partial constructions whose cost already exceeds
  the incumbent (cost metrics are monotonic in plan construction);
* **phase 3** assigns fetching factors to chunked services via the
  greedy or square heuristic, optionally refined by dominance-pruned
  exhaustive exploration.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.costs.base import CostMetric
from repro.execution.cache import CacheSetting
from repro.model.predicates import Comparison
from repro.model.query import ConjunctiveQuery
from repro.optimizer.branch_and_bound import Incumbent, SearchStats
from repro.optimizer.fetches import FetchContext, FetchResult, assign_fetches
from repro.optimizer.memo import MISSING, PlanEntry, PlanMemo, bound_key, plan_key
from repro.optimizer.patterns import PatternSequence, select_patterns
from repro.optimizer.topology import TopologyEnumerator, TopologyState, heuristic_posets
from repro.plans.annotate import PlanAnnotation, annotate
from repro.plans.builder import PlanBuilder, Poset
from repro.plans.dag import PlanError, QueryPlan
from repro.services.registry import ServiceRegistry


@dataclass(frozen=True)
class OptimizerConfig:
    """Tuning knobs for one optimization run."""

    k: int = 10
    cache_setting: CacheSetting = CacheSetting.ONE_CALL
    fetch_heuristic: str = "greedy"
    explore_fetches: bool = True
    most_cogent_only: bool = False
    prune: bool = True
    max_topologies_per_sequence: int | None = None
    memoize: bool = True

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.fetch_heuristic not in {"greedy", "square"}:
            raise ValueError(f"unknown fetch heuristic {self.fetch_heuristic!r}")


@dataclass(frozen=True)
class OptimizedPlan:
    """The outcome of an optimization run."""

    plan: QueryPlan
    annotation: PlanAnnotation
    cost: float
    metric_name: str
    patterns: PatternSequence
    poset: Poset
    fetches: dict[int, int]
    expected_answers: float
    stats: SearchStats

    def describe(self) -> str:
        """Short textual summary of the chosen plan."""
        from repro.plans.render import summarize

        return (
            f"cost={self.cost:g} ({self.metric_name}), "
            f"h={self.expected_answers:g}, plan: {summarize(self.plan)}"
        )


@dataclass(frozen=True)
class _Candidate:
    """A fully instantiated plan candidate inside the search."""

    plan: QueryPlan
    annotation: PlanAnnotation
    patterns: PatternSequence
    poset: Poset
    fetch_result: FetchResult


class Optimizer:
    """Three-phase branch-and-bound plan optimizer."""

    def __init__(
        self,
        registry: ServiceRegistry,
        metric: CostMetric,
        config: OptimizerConfig | None = None,
    ) -> None:
        self._registry = registry
        self._metric = metric
        self._config = config or OptimizerConfig()
        # Persists across optimize() calls: under repeated traffic the
        # same query is re-optimized with unchanged profiles, and the
        # second run is answered almost entirely from the memo.
        self._memo: PlanMemo[_Candidate] = PlanMemo()

    @property
    def config(self) -> OptimizerConfig:
        """The active configuration."""
        return self._config

    @property
    def memo(self) -> PlanMemo[_Candidate]:
        """The search memo (introspection for tests and benchmarks)."""
        return self._memo

    def clear_memo(self) -> None:
        """Invalidate cached search results (e.g. profiles changed)."""
        self._memo.clear()

    def optimize(self, query: ConjunctiveQuery) -> OptimizedPlan:
        """Find the best plan for *query* under the configured metric."""
        config = self._config
        if config.memoize:
            self._memo.reset_for(query)
        schema = self._registry.schema()
        query.validate_against(schema)
        phase1 = select_patterns(query, schema)
        if not phase1.permissible:
            raise PlanError(
                "no permissible sequence of access patterns: "
                "the query is not executable"
            )
        sequences = phase1.most_cogent if config.most_cogent_only else phase1.ordered
        stats = SearchStats()
        incumbent: Incumbent[_Candidate] = Incumbent()
        # Plans that cannot reach k answers are kept apart: a plan that
        # stops short does less work and would otherwise always win on
        # cost.  They are only used when no plan at all reaches k.
        fallback: Incumbent[_Candidate] = Incumbent()
        self._fallback = fallback
        builder = PlanBuilder(query, self._registry)

        for patterns in sequences:
            stats.pattern_sequences_considered += 1
            if config.prune and incumbent.is_set:
                bound = self._pattern_lower_bound(query, patterns)
                if incumbent.prunes(bound):
                    stats.pattern_sequences_pruned += 1
                    continue
            self._seed_with_heuristics(
                query, builder, patterns, incumbent, stats
            )
            self._search_topologies(
                query, builder, patterns, incumbent, stats
            )

        chosen = incumbent if incumbent.is_set else fallback
        best = chosen.payload
        if best is None:
            raise PlanError("optimization failed to produce any executable plan")
        if config.memoize:
            # The winning candidate's plan object also lives in the memo
            # (and may have been handed to an earlier caller): give this
            # caller an exclusive copy so nobody mutates anyone else's
            # plan (progressive execution grows fetches in place).
            best = self._materialize(builder, best, stats)
        return OptimizedPlan(
            plan=best.plan,
            annotation=best.annotation,
            cost=chosen.cost,
            metric_name=self._metric.name,
            patterns=best.patterns,
            poset=best.poset,
            fetches=dict(best.fetch_result.fetches),
            expected_answers=best.fetch_result.output_size,
            stats=stats,
        )

    # -- phase 2/3 machinery ----------------------------------------------

    def _seed_with_heuristics(
        self,
        query: ConjunctiveQuery,
        builder: PlanBuilder,
        patterns: PatternSequence,
        incumbent: Incumbent[_Candidate],
        stats: SearchStats,
    ) -> None:
        """Evaluate the selective/parallel heuristic plans first.

        A good first choice is essential for building an effective
        upper bound (Section 4).
        """
        try:
            heuristics = heuristic_posets(query, patterns, self._registry)
        except ValueError:
            return
        for poset in heuristics.candidates():
            self._complete_and_offer(
                query, builder, patterns, poset, incumbent, stats
            )

    def _search_topologies(
        self,
        query: ConjunctiveQuery,
        builder: PlanBuilder,
        patterns: PatternSequence,
        incumbent: Incumbent[_Candidate],
        stats: SearchStats,
    ) -> None:
        enumerator = TopologyEnumerator(query, patterns)
        visited: set[TopologyState] = set()
        completed: set[frozenset] = set()
        stack: list[TopologyState] = [enumerator.initial_state]
        budget = self._config.max_topologies_per_sequence
        while stack:
            state = stack.pop()
            if state in visited:
                continue
            visited.add(state)
            stats.topology_states_explored += 1
            if enumerator.is_complete(state):
                _, closure = state
                if closure in completed:
                    continue
                completed.add(closure)
                if budget is not None and len(completed) > budget:
                    return
                self._complete_and_offer(
                    query,
                    builder,
                    patterns,
                    enumerator.poset_of(state),
                    incumbent,
                    stats,
                )
                continue
            if self._config.prune and incumbent.is_set and state[0]:
                bound = self._partial_lower_bound(query, patterns, state, stats)
                if bound is not None and incumbent.prunes(bound):
                    stats.topology_states_pruned += 1
                    continue
            stack.extend(enumerator.extensions(state))

    def _complete_and_offer(
        self,
        query: ConjunctiveQuery,
        builder: PlanBuilder,
        patterns: PatternSequence,
        poset: Poset,
        incumbent: Incumbent[_Candidate],
        stats: SearchStats,
    ) -> None:
        config = self._config
        key = None
        if config.memoize:
            key = plan_key(patterns, poset.closure())
            entry = self._memo.lookup_plan(key)
            if entry is not None:
                stats.memo_plan_hits += 1
                if entry.payload is None:
                    return  # cached PlanError: topology cannot be built
                stats.plans_completed += 1
                self._offer_entry(entry, incumbent, stats)
                return
            stats.memo_plan_misses += 1
        try:
            plan = builder.build(patterns, poset)
        except PlanError:
            if key is not None:
                self._memo.store_plan(
                    key, PlanEntry(cost=float("inf"), feasible=False, payload=None)
                )
            return
        context = FetchContext(plan, self._metric, config.cache_setting)
        fetch_result = assign_fetches(
            context,
            config.k,
            heuristic=config.fetch_heuristic,
            explore=config.explore_fetches,
        )
        stats.fetch_evaluations += 1
        stats.plans_completed += 1
        context.apply(fetch_result.fetches)
        annotation = annotate(plan, config.cache_setting)
        stats.annotate_calls += 1
        cost = self._metric.cost(plan, annotation)
        candidate = _Candidate(
            plan=plan,
            annotation=annotation,
            patterns=patterns,
            poset=poset,
            fetch_result=fetch_result,
        )
        entry = PlanEntry(
            cost=cost, feasible=fetch_result.feasible, payload=candidate
        )
        if key is not None:
            self._memo.store_plan(key, entry)
        self._offer_entry(entry, incumbent, stats)

    def _offer_entry(
        self,
        entry: PlanEntry[_Candidate],
        incumbent: Incumbent[_Candidate],
        stats: SearchStats,
    ) -> None:
        """Route a (possibly cached) evaluation to incumbent/fallback."""
        if not entry.feasible:
            self._fallback.offer(entry.cost, entry.payload)
            return
        if incumbent.offer(entry.cost, entry.payload):
            stats.incumbent_updates += 1

    def _materialize(
        self, builder: PlanBuilder, candidate: _Candidate, stats: SearchStats
    ) -> _Candidate:
        """Rebuild the winning candidate on a fresh plan object.

        Cached candidates are shared between the memo and every caller
        that ever received them; plans are mutable (fetching factors
        grow during progressive execution), so the returned plan must
        be this caller's own.  Rebuilding from the candidate's
        patterns, poset, and fetch vector is deterministic and costs a
        single build + annotate — negligible against the search.
        """
        plan = builder.build(
            candidate.patterns, candidate.poset, candidate.fetch_result.fetches
        )
        annotation = annotate(plan, self._config.cache_setting)
        stats.annotate_calls += 1
        return replace(candidate, plan=plan, annotation=annotation)

    def _partial_lower_bound(
        self,
        query: ConjunctiveQuery,
        patterns: PatternSequence,
        state: TopologyState,
        stats: SearchStats,
    ) -> float | None:
        """Cost of the partially constructed plan (fetches at 1).

        New atoms are only ever appended after the placed ones, so the
        estimates of the placed nodes never change in any completion:
        the partial cost is a valid lower bound.  Results are memoized
        on the placed atoms' patterns plus the closure, so states
        shared between pattern sequences are bounded only once.
        """
        placed, closure = state
        key = None
        if self._config.memoize:
            key = bound_key(patterns, placed, closure)
            cached = self._memo.lookup_bound(key)
            if cached is not MISSING:
                stats.memo_bound_hits += 1
                return cached  # type: ignore[return-value]
            stats.memo_bound_misses += 1
        value = self._compute_partial_bound(query, patterns, state, stats)
        if key is not None:
            self._memo.store_bound(key, value)
        return value

    def _compute_partial_bound(
        self,
        query: ConjunctiveQuery,
        patterns: PatternSequence,
        state: TopologyState,
        stats: SearchStats,
    ) -> float | None:
        placed, closure = state
        indices = sorted(placed)
        mapping = {atom: position for position, atom in enumerate(indices)}
        sub_atoms = tuple(query.atoms[i] for i in indices)
        sub_variables: set = set()
        for atom in sub_atoms:
            sub_variables |= atom.variable_set
        sub_predicates = tuple(
            p for p in query.predicates if p.variables <= frozenset(sub_variables)
        )
        sub_query = ConjunctiveQuery(
            name=query.name,
            head=(),
            atoms=sub_atoms,
            predicates=sub_predicates,
        )
        sub_patterns = tuple(patterns[i] for i in indices)
        sub_pairs = frozenset(
            (mapping[i], mapping[j]) for i, j in closure
        )
        sub_poset = Poset(n=len(indices), pairs=sub_pairs)
        try:
            plan = PlanBuilder(sub_query, self._registry).build(
                sub_patterns, sub_poset
            )
        except PlanError:
            return None
        annotation = annotate(plan, self._config.cache_setting)
        stats.annotate_calls += 1
        return self._metric.cost(plan, annotation)

    def _pattern_lower_bound(
        self, query: ConjunctiveQuery, patterns: PatternSequence
    ) -> float:
        """A cheap, optimistic bound for a whole pattern sequence.

        Every service must be invoked at least once; under the most
        favorable assumptions the plan costs at least the largest
        single response time (time metrics) or the sum of single-call
        costs (sum metrics).
        """
        profiles = [
            self._registry.profile(atom.service) for atom in query.atoms
        ]
        name = self._metric.name
        if name in {"execution-time", "bottleneck", "time-to-screen"}:
            return max((p.response_time for p in profiles), default=0.0)
        return sum(p.cost_per_call for p in profiles)


def optimize_query(
    query: ConjunctiveQuery,
    registry: ServiceRegistry,
    metric: CostMetric,
    k: int = 10,
    cache_setting: CacheSetting = CacheSetting.ONE_CALL,
    **overrides: object,
) -> OptimizedPlan:
    """One-call convenience wrapper around :class:`Optimizer`."""
    config = OptimizerConfig(k=k, cache_setting=cache_setting)
    if overrides:
        config = replace(config, **overrides)  # type: ignore[arg-type]
    return Optimizer(registry, metric, config).optimize(query)


def residual_predicates(query: ConjunctiveQuery, plan: QueryPlan) -> tuple[Comparison, ...]:
    """Predicates evaluated only at the plan output (for diagnostics)."""
    return plan.output_node.residual_predicates
