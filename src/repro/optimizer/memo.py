"""Search memoization for the branch-and-bound optimizer.

The three-phase search re-derives a full sub-query, sub-plan, and
annotation for every explored topology state, and re-evaluates every
completed plan from scratch — even though the result only depends on
the *placed atoms' access patterns* and the *precedence closure*, not
on how the search reached the state.  Under the heavy repeated traffic
the system targets, the same queries are optimized again and again
while the service profiles stay put, so almost all of that work is
redundant.

:class:`PlanMemo` caches both layers behind content-addressed keys:

* **partial bounds** — ``_partial_lower_bound`` values, keyed by the
  placed atoms with their pattern codes plus the precedence closure
  (:func:`bound_key`).  The key deliberately ignores the patterns of
  *unplaced* atoms, so pattern sequences that agree on a placed subset
  share entries already within a single run;
* **completed plans** — the full phase-2/3 evaluation of a topology
  (built plan, fetch assignment, annotation, cost), keyed by the whole
  pattern sequence plus the closure (:func:`plan_key`).  This also
  covers the heuristic-seeding pass: the selective/parallel seed
  posets are re-reached by the exhaustive enumeration and would
  otherwise be evaluated twice per pattern sequence.

The memo is owned by an :class:`~repro.optimizer.optimizer.Optimizer`
instance and persists across :meth:`optimize` calls; it is reset
automatically when a *different* query is optimized.  Cached values
are only valid while the registry's service profiles are unchanged —
callers that mutate profiles must use a fresh optimizer or call
:meth:`PlanMemo.clear`.

Memoization never changes a search outcome: a hit returns the exact
float/payload computed on the original miss, so costs, incumbent
updates, and pruning decisions are bit-identical to the unmemoized
search (tested over every benchmark query profile).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, Sequence, TypeVar

from repro.model.query import ConjunctiveQuery
from repro.model.schema import AccessPattern

#: Sentinel distinguishing "not cached" from cached ``None`` (a cached
#: ``PlanError`` outcome is as valuable as a cached number).
MISSING = object()

#: Placed atoms with their pattern codes, plus the precedence closure.
BoundKey = tuple[tuple[tuple[int, str], ...], frozenset[tuple[int, int]]]

#: Full pattern-code sequence plus the precedence closure.
PlanKey = tuple[tuple[str, ...], frozenset[tuple[int, int]]]

Payload = TypeVar("Payload")


def bound_key(
    patterns: Sequence[AccessPattern],
    placed: frozenset[int],
    closure: frozenset[tuple[int, int]],
) -> BoundKey:
    """Memo key for a partial lower bound.

    Only the placed atoms' patterns matter: the sub-plan of a state is
    built from the placed atoms alone, so two pattern sequences that
    agree there share the bound even if they diverge elsewhere.
    """
    return (
        tuple((index, patterns[index].code) for index in sorted(placed)),
        closure,
    )


def plan_key(
    patterns: Sequence[AccessPattern],
    closure: frozenset[tuple[int, int]],
) -> PlanKey:
    """Memo key for a fully evaluated plan topology."""
    return (tuple(pattern.code for pattern in patterns), closure)


@dataclass(frozen=True)
class PlanEntry(Generic[Payload]):
    """Cached outcome of one complete phase-2/3 plan evaluation."""

    cost: float
    feasible: bool
    payload: Payload


@dataclass
class PlanMemo(Generic[Payload]):
    """Memo tables shared across topology states and optimize() calls."""

    _query: ConjunctiveQuery | None = None
    _bounds: dict[BoundKey, float | None] = field(default_factory=dict)
    _plans: dict[PlanKey, PlanEntry[Payload]] = field(default_factory=dict)

    def reset_for(self, query: ConjunctiveQuery) -> None:
        """Keep entries only when re-optimizing the very same query."""
        if self._query is None or self._query != query:
            self.clear()
            self._query = query

    def clear(self) -> None:
        """Drop every cached entry (profiles changed, new query, ...)."""
        self._bounds.clear()
        self._plans.clear()
        self._query = None

    # -- partial lower bounds -------------------------------------------

    def lookup_bound(self, key: BoundKey) -> object:
        """Cached bound for *key*: a float, ``None`` (sub-plan failed to
        build), or :data:`MISSING` when never computed."""
        return self._bounds.get(key, MISSING)

    def store_bound(self, key: BoundKey, value: float | None) -> None:
        """Record a computed partial bound (``None`` caches the failure)."""
        self._bounds[key] = value

    # -- completed plan evaluations -------------------------------------

    def lookup_plan(self, key: PlanKey) -> PlanEntry[Payload] | None:
        """Cached complete evaluation for *key*, or ``None``."""
        return self._plans.get(key)

    def store_plan(self, key: PlanKey, entry: PlanEntry[Payload]) -> None:
        """Record a complete plan evaluation."""
        self._plans[key] = entry

    # -- introspection ---------------------------------------------------

    @property
    def bound_entries(self) -> int:
        """Number of cached partial bounds."""
        return len(self._bounds)

    @property
    def plan_entries(self) -> int:
        """Number of cached complete evaluations."""
        return len(self._plans)
