"""Phase 3 — assigning fetching factors to chunked services (Section 4.3).

Once the pattern sequence and the topology are fixed, the only open
parameters of a plan are the numbers of fetches ``F_i`` of its chunked
services.  The expected result size ``h`` of the plan grows with every
``F_i``; the goal is the cheapest assignment with ``h >= k``.

Heuristics (Section 4.3.1):

* **greedy** — start from all-ones, repeatedly increment the factor
  with the highest sensitivity (extra tuples per extra cost unit) until
  ``h >= k``;
* **square is better** — start from all-ones and grow all factors so
  that every chunked service explores about the same number of tuples
  (``F_i · cs_i`` equalized).  The paper phrases the increment as
  "proportional to its chunk size" but motivates it with equal numbers
  of explored tuples, which requires increments inversely proportional
  to the chunk size; we implement the equal-exploration semantics.

Exploration (Section 4.3.2) enumerates candidate n-tuples bounded by
``F_max_i`` (the minimal value reaching ``k`` with all other factors at
1) and by decay caps, skipping tuples dominated by an already-feasible
one.  Closed forms for one and two chunked services (Eq. 5–7) are
provided and exercised against the exhaustive search in tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.costs.base import CostMetric
from repro.execution.cache import CacheSetting
from repro.plans.annotate import PlanAnnotation, annotate
from repro.plans.dag import QueryPlan
from repro.plans.nodes import ServiceNode

#: Hard cap on any fetching factor during exploration, so that plans
#: that can never produce k answers terminate.
HARD_FETCH_CAP = 512

#: Upper bound on the number of fetch vectors swept by the exhaustive
#: exploration before falling back to the greedy local optimum.
MAX_EXPLORATION_CELLS = 20_000


@dataclass(frozen=True)
class FetchResult:
    """A fetch assignment together with its evaluation."""

    fetches: dict[int, int]
    feasible: bool
    output_size: float
    cost: float

    def factor(self, atom_index: int) -> int:
        """The fetching factor assigned to the atom at *atom_index*."""
        return self.fetches.get(atom_index, 1)


class FetchContext:
    """Evaluates fetch assignments on a fixed plan.

    The plan's structure does not depend on the fetching factors, so
    the context mutates the chunked nodes' ``fetches`` in place and
    re-annotates; callers receive plain numbers.
    """

    def __init__(
        self,
        plan: QueryPlan,
        metric: CostMetric,
        cache_setting: CacheSetting,
    ) -> None:
        self._plan = plan
        self._metric = metric
        self._cache_setting = cache_setting
        self._chunked: dict[int, ServiceNode] = {
            node.atom_index: node for node in plan.chunked_service_nodes
        }
        # The annotation depends only on the fetch vector, and the
        # heuristics re-evaluate many neighboring vectors: memoize.
        self._annotation_memo: dict[tuple[tuple[int, int], ...], PlanAnnotation] = {}
        self._cost_memo: dict[tuple[tuple[int, int], ...], float] = {}
        self._base_output: float | None = None

    def _key(self, fetches: Mapping[int, int]) -> tuple[tuple[int, int], ...]:
        return tuple(
            (atom_index, int(fetches.get(atom_index, 1)))
            for atom_index in sorted(self._chunked)
        )

    @property
    def plan(self) -> QueryPlan:
        """The underlying plan (fetches reflect the last evaluation)."""
        return self._plan

    @property
    def chunked_atoms(self) -> tuple[int, ...]:
        """Atom indices of the chunked services, sorted."""
        return tuple(sorted(self._chunked))

    def cap(self, atom_index: int) -> int:
        """Decay-implied upper bound on the factor (or the hard cap)."""
        node = self._chunked[atom_index]
        assert node.profile is not None
        decay_cap = node.profile.max_fetches()
        if decay_cap is None:
            return HARD_FETCH_CAP
        return min(decay_cap, HARD_FETCH_CAP)

    def response_time(self, atom_index: int) -> float:
        """τ of the chunked service at *atom_index*."""
        node = self._chunked[atom_index]
        assert node.profile is not None
        return node.profile.response_time

    def cost_per_call(self, atom_index: int) -> float:
        """Per-call monetary cost of the chunked service."""
        node = self._chunked[atom_index]
        assert node.profile is not None
        return node.profile.cost_per_call

    def calls(self, atom_index: int, fetches: Mapping[int, int]) -> float:
        """Invocation count of the node under *fetches* (t_in)."""
        annotation = self.annotate(fetches)
        return annotation.calls(self._chunked[atom_index])

    def apply(self, fetches: Mapping[int, int]) -> None:
        """Set the factors on the plan nodes (validating bounds)."""
        for atom_index, node in self._chunked.items():
            factor = int(fetches.get(atom_index, 1))
            if factor < 1:
                raise ValueError(f"fetching factor must be >= 1, got {factor}")
            node.fetches = factor

    def annotate(self, fetches: Mapping[int, int]) -> PlanAnnotation:
        """Annotation of the plan under *fetches* (memoized)."""
        key = self._key(fetches)
        cached = self._annotation_memo.get(key)
        if cached is None:
            self.apply(fetches)
            cached = annotate(self._plan, self._cache_setting)
            self._annotation_memo[key] = cached
        else:
            self.apply(fetches)
        return cached

    def output_size(self, fetches: Mapping[int, int]) -> float:
        """Expected number of answers h under *fetches*.

        In the annotation model of Section 3.4, every chunked node
        contributes ``cs · F`` multiplicatively to the plan output, so
        ``h(F) = h(1, ..., 1) · Π F_i`` exactly; we exploit this to
        avoid re-annotating (the identity is verified by the property
        tests against the full annotation).
        """
        if self._base_output is None:
            self.apply(all_ones(self))
            self._base_output = annotate(self._plan, self._cache_setting).output_size
        result = self._base_output
        for atom_index in self._chunked:
            result *= int(fetches.get(atom_index, 1))
        return result

    def cost(self, fetches: Mapping[int, int]) -> float:
        """Metric cost of the plan under *fetches* (memoized)."""
        key = self._key(fetches)
        cached = self._cost_memo.get(key)
        if cached is None:
            annotation = self.annotate(fetches)
            cached = self._metric.cost(self._plan, annotation)
            self._cost_memo[key] = cached
        return cached

    def evaluate(self, fetches: Mapping[int, int], k: int) -> FetchResult:
        """Package an assignment with feasibility, h, and cost."""
        annotation = self.annotate(fetches)
        output_size = annotation.output_size
        return FetchResult(
            fetches={i: int(fetches.get(i, 1)) for i in self.chunked_atoms},
            feasible=output_size >= k,
            output_size=output_size,
            cost=self.cost(fetches),
        )


def all_ones(context: FetchContext) -> dict[int, int]:
    """The minimal assignment: one fetch everywhere."""
    return {i: 1 for i in context.chunked_atoms}


def maxed_out(context: FetchContext) -> dict[int, int]:
    """Every factor at its cap (decay bound or hard cap)."""
    return {i: context.cap(i) for i in context.chunked_atoms}


def _unreachable(context: FetchContext, k: int) -> FetchResult | None:
    """Fast path: if even the capped assignment cannot produce k
    answers, return it immediately (the paper notes small decay-implied
    bounds may make k answers impossible)."""
    maxed = maxed_out(context)
    if context.output_size(maxed) < k:
        return context.evaluate(maxed, k)
    return None


def greedy_assignment(context: FetchContext, k: int) -> FetchResult:
    """The "greedy" heuristic of Section 4.3.1.

    All factors start at 1 (already optimal if ``h >= k``); otherwise
    the factor of the node with the highest sensitivity — increase in
    tuples per cost unit — is incremented until ``h >= k`` or no
    further increment is possible.
    """
    current = all_ones(context)
    if not current:
        return context.evaluate(current, k)
    unreachable = _unreachable(context, k)
    if unreachable is not None:
        return unreachable
    h = context.output_size(current)
    cost = context.cost(current)
    while h < k:
        best_atom = None
        best_factor = 0
        best_sensitivity = -1.0
        best_h = h
        best_cost = cost
        for atom_index in context.chunked_atoms:
            cap = context.cap(atom_index)
            if current[atom_index] >= cap:
                continue
            # Step geometrically while far from k (h is multiplicative
            # in every factor), +1 when close — same greedy criterion,
            # logarithmically many iterations.
            factor = current[atom_index]
            doubled = min(cap, factor * 2)
            if h * doubled / factor < k and doubled > factor + 1:
                trial_factor = doubled
            else:
                trial_factor = factor + 1
            trial = dict(current)
            trial[atom_index] = trial_factor
            trial_h = context.output_size(trial)
            trial_cost = context.cost(trial)
            gain = trial_h - h
            pain = max(trial_cost - cost, 1e-12)
            sensitivity = gain / pain
            if sensitivity > best_sensitivity:
                best_sensitivity = sensitivity
                best_atom = atom_index
                best_factor = trial_factor
                best_h = trial_h
                best_cost = trial_cost
        if best_atom is None:
            break  # k is unreachable (decay caps hit)
        current[best_atom] = best_factor
        h = best_h
        cost = best_cost
    return context.evaluate(current, k)


def square_assignment(context: FetchContext, k: int) -> FetchResult:
    """The "square is better" heuristic: equalize explored tuples.

    Grows an exploration level ``L`` (tuples explored per chunked
    service) and sets ``F_i = ceil(L / cs_i)`` until ``h >= k`` or all
    caps are reached.  Suits scenarios where rankings decay quickly and
    over-fetching a single service does not pay off.
    """
    current = all_ones(context)
    if not current:
        return context.evaluate(current, k)
    unreachable = _unreachable(context, k)
    if unreachable is not None:
        return unreachable
    chunk_sizes: dict[int, int] = {}
    for atom_index in context.chunked_atoms:
        node = context.plan.service_node_for_atom(atom_index)
        assert node.profile is not None and node.profile.chunk_size is not None
        chunk_sizes[atom_index] = node.profile.chunk_size
    level = min(chunk_sizes.values())
    step = min(chunk_sizes.values())
    while context.output_size(current) < k:
        level += step
        proposal = {
            i: min(context.cap(i), max(1, math.ceil(level / chunk_sizes[i])))
            for i in context.chunked_atoms
        }
        if proposal == current:
            if all(proposal[i] >= context.cap(i) for i in proposal):
                break  # k is unreachable
            continue
        current = proposal
    return context.evaluate(current, k)


def _max_factor(context: FetchContext, atom_index: int, k: int) -> int:
    """F_max_i: minimal factor reaching k with all other factors at 1."""
    cap = context.cap(atom_index)
    low, high = 1, cap
    base = all_ones(context)
    base[atom_index] = cap
    if context.output_size(base) < k:
        return cap
    while low < high:
        mid = (low + high) // 2
        base[atom_index] = mid
        if context.output_size(base) >= k:
            high = mid
        else:
            low = mid + 1
    return low


def exhaustive_assignment(
    context: FetchContext, k: int, start: Mapping[int, int] | None = None
) -> FetchResult:
    """Dominance-pruned exhaustive exploration (Section 4.3.2).

    Enumerates the box ``[1, F_max_i]`` per chunked service, skipping
    tuples that componentwise dominate an already-found feasible tuple
    (they can only cost more), and returns the cheapest feasible
    assignment.  Falls back to the best-effort assignment with maximal
    output when ``k`` is unreachable.
    """
    atoms = context.chunked_atoms
    if not atoms:
        return context.evaluate({}, k)
    if context.output_size(all_ones(context)) >= k:
        return context.evaluate(all_ones(context), k)
    unreachable = _unreachable(context, k)
    if unreachable is not None:
        return unreachable
    bounds = {i: _max_factor(context, i, k) for i in atoms}
    volume = 1
    for bound in bounds.values():
        volume *= bound
    if volume > MAX_EXPLORATION_CELLS:
        # The box is too large to sweep (this happens when k is barely
        # reachable and single-coordinate bounds degenerate to the hard
        # cap); fall back to the greedy local optimum.
        if start is not None:
            seeded = context.evaluate(start, k)
            if seeded.feasible:
                return seeded
        return greedy_assignment(context, k)
    best: FetchResult | None = None
    feasible_minimals: list[dict[int, int]] = []
    if start is not None:
        candidate = context.evaluate(start, k)
        if candidate.feasible:
            best = candidate
            feasible_minimals.append(dict(candidate.fetches))

    def dominated(vector: dict[int, int]) -> bool:
        return any(
            all(vector[i] >= other[i] for i in atoms) and vector != other
            for other in feasible_minimals
        )

    def recurse(prefix: dict[int, int], position: int) -> None:
        nonlocal best
        if position == len(atoms):
            if dominated(prefix):
                return
            result = context.evaluate(prefix, k)
            if result.feasible:
                feasible_minimals.append(dict(prefix))
                if best is None or result.cost < best.cost:
                    best = result
            return
        atom_index = atoms[position]
        for factor in range(1, bounds[atom_index] + 1):
            prefix[atom_index] = factor
            recurse(prefix, position + 1)
        del prefix[atom_index]

    recurse({}, 0)
    if best is not None:
        return best
    # k unreachable: report the maximal-output assignment (the paper
    # notes decay bounds may make k answers impossible).
    maxed = {i: context.cap(i) for i in atoms}
    return context.evaluate(maxed, k)


def closed_form_single(context: FetchContext, k: int) -> FetchResult:
    """Eq. 5: one chunked service; h is linear in its factor."""
    atoms = context.chunked_atoms
    if len(atoms) != 1:
        raise ValueError(f"closed_form_single requires 1 chunked service, got {len(atoms)}")
    atom_index = atoms[0]
    base = context.output_size({atom_index: 1})
    if base <= 0:
        return context.evaluate({atom_index: context.cap(atom_index)}, k)
    factor = min(context.cap(atom_index), max(1, math.ceil(k / base)))
    return context.evaluate({atom_index: factor}, k)


def closed_form_pair(
    context: FetchContext,
    k: int,
    use_response_time: bool = True,
) -> FetchResult:
    """Eq. 6/7: two chunked services, parallel or on the same path.

    ``h`` is bilinear, so ``k`` fixes the product of the two factors:
    ``F_1 · F_2 = K' = ceil(k / h(1, 1))``.  If the two nodes are
    independent (not on a common path), the optimum splits the product
    by the square-root rule of Eq. 6, weighting each service by its
    invocation count times its per-fetch cost; if one follows the
    other on the same path, its input grows with the other's factor,
    and Eq. 7 pushes all fetching downstream.
    """
    atoms = context.chunked_atoms
    if len(atoms) != 2:
        raise ValueError(f"closed_form_pair requires 2 chunked services, got {len(atoms)}")
    first, second = atoms
    base = context.output_size(all_ones(context))
    if base <= 0:
        return context.evaluate({i: context.cap(i) for i in atoms}, k)
    product = max(1, math.ceil(k / base))

    node_first = context.plan.service_node_for_atom(first)
    node_second = context.plan.service_node_for_atom(second)
    first_before = node_first.node_id in context.plan.ancestors(node_second)
    second_before = node_second.node_id in context.plan.ancestors(node_first)
    if first_before or second_before:
        upstream, downstream = (first, second) if first_before else (second, first)
        fetches = {upstream: 1, downstream: min(context.cap(downstream), product)}
        return context.evaluate(fetches, k)

    ones = all_ones(context)
    annotation = context.annotate(ones)
    t_first = annotation.calls(node_first)
    t_second = annotation.calls(node_second)
    if use_response_time:
        c_first, c_second = context.response_time(first), context.response_time(second)
    else:
        c_first, c_second = context.cost_per_call(first), context.cost_per_call(second)
    weight_first = max(t_first * c_first, 1e-12)
    weight_second = max(t_second * c_second, 1e-12)
    factor_first = math.ceil(math.sqrt(product * weight_second / weight_first))
    factor_second = math.ceil(math.sqrt(product * weight_first / weight_second))
    fetches = {
        first: min(context.cap(first), max(1, factor_first)),
        second: min(context.cap(second), max(1, factor_second)),
    }
    return context.evaluate(fetches, k)


def assign_fetches(
    context: FetchContext,
    k: int,
    heuristic: str = "greedy",
    explore: bool = True,
) -> FetchResult:
    """Run phase 3: heuristic first, optional exhaustive refinement."""
    if heuristic == "greedy":
        initial = greedy_assignment(context, k)
    elif heuristic == "square":
        initial = square_assignment(context, k)
    else:
        raise ValueError(f"unknown fetch heuristic {heuristic!r}")
    if not explore or not context.chunked_atoms:
        return initial
    refined = exhaustive_assignment(context, k, start=initial.fetches)
    if refined.feasible and (not initial.feasible or refined.cost <= initial.cost):
        return refined
    return initial
