"""Phase 2 — query plan topology selection (Section 4.2).

Given a pattern sequence, phase 2 chooses the *shape* of the plan: a
strict partial order over the query atoms that respects callability
(Definition 3.1).  Incomparable atoms run in parallel; comparable ones
are sequenced (with pipe joins when parameters flow between them).

Example 5.1 reports "19 alternative plans" for the three atoms that
remain free once ``conf`` is placed first — which is exactly the
number of partial orders on 3 labeled elements.  We therefore
enumerate labeled posets, constructed incrementally by repeatedly
adding an unplaced atom as a new maximal element whose direct
predecessors form an antichain of already-placed atoms (this mirrors
the paper's construction of DAGs by progressively appending callable
nodes).

Two heuristics provide good initial upper bounds (Section 4.2.1):

* *selective is better* — a single chain, visiting atoms by increasing
  erspi wherever callability permits;
* *parallel is better* — layered maximal parallelism: each round
  places every atom that became callable, in parallel.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.model.query import ConjunctiveQuery
from repro.model.schema import AccessPattern
from repro.model.terms import Variable
from repro.plans.builder import Poset
from repro.services.registry import ServiceRegistry

#: State of the incremental construction: placed atoms + closed order.
TopologyState = tuple[frozenset[int], frozenset[tuple[int, int]]]


def atom_callable_after(
    query: ConjunctiveQuery,
    patterns: Sequence[AccessPattern],
    index: int,
    ancestors: frozenset[int],
) -> bool:
    """Is atom *index* callable after the atoms in *ancestors*?"""
    bound: set[Variable] = set()
    for ancestor in ancestors:
        bound |= query.atoms[ancestor].variable_set
    return query.atoms[index].is_callable_given(
        patterns[index], frozenset(bound)
    )


def _antichains(
    placed: frozenset[int], closure: frozenset[tuple[int, int]]
) -> Iterator[frozenset[int]]:
    """All antichains (including the empty one) of the placed atoms."""
    members = sorted(placed)
    for size in range(len(members) + 1):
        for subset in itertools.combinations(members, size):
            if any(
                (a, b) in closure or (b, a) in closure
                for a, b in itertools.combinations(subset, 2)
            ):
                continue
            yield frozenset(subset)


def _ancestors_of_set(
    direct: frozenset[int], closure: frozenset[tuple[int, int]]
) -> frozenset[int]:
    result = set(direct)
    for member in direct:
        result.update(i for i, j in closure if j == member)
    return frozenset(result)


class TopologyEnumerator:
    """Incremental, deduplicated enumeration of callable posets."""

    def __init__(
        self,
        query: ConjunctiveQuery,
        patterns: Sequence[AccessPattern],
    ) -> None:
        self._query = query
        self._patterns = tuple(patterns)
        self._n = len(query.atoms)

    @property
    def initial_state(self) -> TopologyState:
        """The empty construction state."""
        return (frozenset(), frozenset())

    def is_complete(self, state: TopologyState) -> bool:
        """True when every atom has been placed."""
        placed, _ = state
        return len(placed) == self._n

    def poset_of(self, state: TopologyState) -> Poset:
        """The (partial) poset corresponding to a state.

        For incomplete states the poset ranges over the placed atoms
        only, with indices remapped densely; use
        :meth:`sub_problem` to obtain the matching sub-query data.
        """
        placed, closure = state
        if self.is_complete(state):
            return Poset(n=self._n, pairs=closure)
        mapping = {atom: k for k, atom in enumerate(sorted(placed))}
        pairs = frozenset(
            (mapping[i], mapping[j]) for i, j in closure
        )
        return Poset(n=len(placed), pairs=pairs)

    def placed_atoms(self, state: TopologyState) -> tuple[int, ...]:
        """Atom indices placed so far, sorted."""
        return tuple(sorted(state[0]))

    def extensions(self, state: TopologyState) -> Iterator[TopologyState]:
        """All states reachable by placing one more atom.

        The new atom becomes a maximal element whose direct
        predecessors are an antichain of placed atoms; the atom must be
        callable after the ancestors this induces.  Duplicate states
        (same placed set and same closure) are suppressed per call via
        an internal seen-set, and globally deduplicated by the search
        driver.
        """
        placed, closure = state
        seen: set[TopologyState] = set()
        for index in range(self._n):
            if index in placed:
                continue
            for direct in _antichains(placed, closure):
                ancestors = _ancestors_of_set(direct, closure)
                if not atom_callable_after(
                    self._query, self._patterns, index, ancestors
                ):
                    continue
                new_pairs = frozenset((a, index) for a in ancestors)
                new_state = (placed | {index}, closure | new_pairs)
                if new_state in seen:
                    continue
                seen.add(new_state)
                yield new_state

    def all_posets(self) -> tuple[Poset, ...]:
        """Every complete callable poset (exhaustive, deduplicated)."""
        results: dict[frozenset[tuple[int, int]], Poset] = {}
        visited: set[TopologyState] = set()
        stack = [self.initial_state]
        while stack:
            state = stack.pop()
            if state in visited:
                continue
            visited.add(state)
            if self.is_complete(state):
                _, closure = state
                results.setdefault(closure, Poset(n=self._n, pairs=closure))
                continue
            stack.extend(self.extensions(state))
        return tuple(
            results[key] for key in sorted(results, key=sorted)
        )


# -- heuristics ----------------------------------------------------------


def _effective_erspi(
    query: ConjunctiveQuery,
    registry: ServiceRegistry,
    index: int,
) -> float:
    """Per-invocation growth of an atom, for heuristic ordering.

    Chunked services count one chunk (their first fetch); exact
    services count their erspi.
    """
    profile = registry.profile(query.atoms[index].service)
    if profile.is_chunked:
        return float(profile.chunk_size or 1)
    return profile.erspi


def selective_chain(
    query: ConjunctiveQuery,
    patterns: Sequence[AccessPattern],
    registry: ServiceRegistry,
) -> Poset:
    """"Selective is better": a single path by increasing erspi.

    Greedily appends, among the atoms callable after the current
    prefix, the one with the smallest effective erspi.
    """
    n = len(query.atoms)
    order: list[int] = []
    remaining = set(range(n))
    while remaining:
        callable_now = [
            i for i in sorted(remaining)
            if atom_callable_after(query, patterns, i, frozenset(order))
        ]
        if not callable_now:
            raise ValueError(
                "no atom is callable: the pattern sequence is not permissible"
            )
        chosen = min(
            callable_now, key=lambda i: (_effective_erspi(query, registry, i), i)
        )
        order.append(chosen)
        remaining.discard(chosen)
    pairs = {(order[i], order[i + 1]) for i in range(n - 1)}
    return Poset(n=n, pairs=frozenset(pairs))


def maximal_parallel(
    query: ConjunctiveQuery,
    patterns: Sequence[AccessPattern],
) -> Poset:
    """"Parallel is better": layers of maximal parallelism.

    Each round places, in parallel, every atom callable after the
    atoms of the previous rounds; arcs go from every atom of round
    ``r`` to every atom of round ``r + 1`` (the paper requires each
    newly placed node to have an incoming arc from the previous step).
    """
    n = len(query.atoms)
    layers: list[list[int]] = []
    placed: set[int] = set()
    while len(placed) < n:
        layer = [
            i for i in range(n)
            if i not in placed
            and atom_callable_after(query, patterns, i, frozenset(placed))
        ]
        if not layer:
            raise ValueError(
                "no atom is callable: the pattern sequence is not permissible"
            )
        layers.append(layer)
        placed.update(layer)
    pairs: set[tuple[int, int]] = set()
    for earlier, later in zip(layers, layers[1:]):
        for a in earlier:
            for b in later:
                pairs.add((a, b))
    return Poset(n=n, pairs=frozenset(pairs))


@dataclass(frozen=True)
class TopologyHeuristics:
    """The two phase-2 heuristic plans used to seed the incumbent."""

    selective: Poset
    parallel: Poset

    def candidates(self) -> tuple[Poset, ...]:
        """Distinct heuristic posets."""
        if self.selective.closure() == self.parallel.closure():
            return (self.selective,)
        return (self.selective, self.parallel)


def heuristic_posets(
    query: ConjunctiveQuery,
    patterns: Sequence[AccessPattern],
    registry: ServiceRegistry,
) -> TopologyHeuristics:
    """Compute both phase-2 heuristics for a pattern sequence."""
    return TopologyHeuristics(
        selective=selective_chain(query, patterns, registry),
        parallel=maximal_parallel(query, patterns),
    )


def count_posets(
    query: ConjunctiveQuery, patterns: Sequence[AccessPattern]
) -> int:
    """Number of distinct callable posets (used by Example 5.1 tests)."""
    return len(TopologyEnumerator(query, patterns).all_posets())


ExtensionOrderKey = Callable[[TopologyState], tuple]
