"""Branch-and-bound bookkeeping (Section 2.4).

The search space of fully instantiated query plans is explored in
three nested phases; every phase contributes branching choices, and
pruning relies on the monotonicity of the cost metrics: the cost of a
partially constructed DAG lower-bounds the cost of any completion,
while fully constructing one member of a class gives an upper bound.
If the lower bound of class A exceeds the upper bound of class B,
class A is discarded.

This module holds the incumbent (best-so-far) solution and the search
statistics shared by the optimizer and the exhaustive baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, TypeVar

Payload = TypeVar("Payload")


@dataclass
class SearchStats:
    """Counters describing one optimization run.

    The ``memo_*`` counters trace the search-memoization subsystem
    (:mod:`repro.optimizer.memo`): bound entries cache partial lower
    bounds per topology state, plan entries cache whole phase-2/3
    evaluations.  ``annotate_calls`` counts the plan annotations the
    optimizer actually performed — every memo hit avoids at least one.
    """

    pattern_sequences_considered: int = 0
    pattern_sequences_pruned: int = 0
    topology_states_explored: int = 0
    topology_states_pruned: int = 0
    plans_completed: int = 0
    fetch_evaluations: int = 0
    incumbent_updates: int = 0
    annotate_calls: int = 0
    memo_bound_hits: int = 0
    memo_bound_misses: int = 0
    memo_plan_hits: int = 0
    memo_plan_misses: int = 0

    @property
    def memo_hits(self) -> int:
        """Total memo hits (bounds and completed plans)."""
        return self.memo_bound_hits + self.memo_plan_hits

    @property
    def memo_misses(self) -> int:
        """Total memo misses (bounds and completed plans)."""
        return self.memo_bound_misses + self.memo_plan_misses

    def summary(self) -> str:
        """One-line human-readable rendering of the counters."""
        return (
            f"patterns={self.pattern_sequences_considered}"
            f" (pruned {self.pattern_sequences_pruned}),"
            f" topology states={self.topology_states_explored}"
            f" (pruned {self.topology_states_pruned}),"
            f" plans completed={self.plans_completed},"
            f" incumbent updates={self.incumbent_updates},"
            f" annotate calls={self.annotate_calls},"
            f" memo hits={self.memo_hits}"
            f" (misses {self.memo_misses})"
        )


@dataclass
class Incumbent(Generic[Payload]):
    """The best complete solution found so far."""

    cost: float = float("inf")
    payload: Payload | None = None
    history: list[float] = field(default_factory=list)

    @property
    def is_set(self) -> bool:
        """True once at least one complete solution has been found."""
        return self.payload is not None

    def offer(self, cost: float, payload: Payload) -> bool:
        """Adopt (cost, payload) if it improves the incumbent."""
        if cost < self.cost:
            self.cost = cost
            self.payload = payload
            self.history.append(cost)
            return True
        return False

    def prunes(self, lower_bound: float) -> bool:
        """Should a class with this lower bound be discarded?

        Classes whose lower bound already matches the incumbent cannot
        contain a *strictly* better solution, so they are pruned too.
        """
        return self.is_set and lower_bound >= self.cost
