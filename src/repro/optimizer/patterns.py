"""Phase 1 — access pattern selection (Sections 3.2 and 4.1).

Given a conjunctive query whose atoms name services with several
feasible access patterns, this module enumerates the *permissible*
sequences of patterns (those for which the query is executable per
Definition 3.1) and orders them by *cogency* for the "bound is better"
heuristic: sequences binding more input fields come first, since a
more cogent invocation cannot return a bigger answer set, pushes
selections toward the sources, and is likely to respond faster.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.model.query import ConjunctiveQuery
from repro.model.schema import AccessPattern, Schema
from repro.model.terms import Variable

#: A choice of one feasible access pattern per body atom, by index.
PatternSequence = tuple[AccessPattern, ...]


def is_executable(query: ConjunctiveQuery, patterns: Sequence[AccessPattern]) -> bool:
    """Definition 3.1: can every atom be called, in some order?

    Computes the least fixpoint of the *callable* relation: an atom is
    callable when each input field holds a constant or a variable that
    occurs in an output field of an already-callable atom.
    """
    if len(patterns) != len(query.atoms):
        raise ValueError(
            f"expected {len(query.atoms)} patterns, got {len(patterns)}"
        )
    pending = set(range(len(query.atoms)))
    bound: set[Variable] = set()
    progress = True
    while pending and progress:
        progress = False
        for index in sorted(pending):
            atom = query.atoms[index]
            if atom.is_callable_given(patterns[index], frozenset(bound)):
                pending.discard(index)
                bound |= atom.output_variables(patterns[index])
                # Input variables are bound too once the atom ran (they
                # had to be bound to call it, or they unify with its
                # constants — for input fields they were bound already).
                bound |= atom.input_variables(patterns[index])
                progress = True
    return not pending


def permissible_sequences(
    query: ConjunctiveQuery, schema: Schema
) -> tuple[PatternSequence, ...]:
    """All permissible pattern sequences for *query* over *schema*.

    The raw space is the product of the feasible patterns of each
    atom's service; non-permissible sequences are discarded at this
    very early stage, as in the paper.
    """
    per_atom: list[tuple[AccessPattern, ...]] = []
    for atom in query.atoms:
        signature = atom.validate_against(schema)
        per_atom.append(signature.patterns)
    result = []
    for combination in itertools.product(*per_atom):
        if is_executable(query, combination):
            result.append(tuple(combination))
    return tuple(result)


def sequence_is_more_cogent(
    first: PatternSequence, second: PatternSequence
) -> bool:
    """⊑IO lifted to sequences: componentwise cogency."""
    if len(first) != len(second):
        raise ValueError("sequences must have the same length")
    return all(
        a.is_more_cogent_than(b) for a, b in zip(first, second)
    )


def sequence_is_strictly_more_cogent(
    first: PatternSequence, second: PatternSequence
) -> bool:
    """≺IO lifted to sequences."""
    return sequence_is_more_cogent(first, second) and not sequence_is_more_cogent(
        second, first
    )


def most_cogent_sequences(
    sequences: Sequence[PatternSequence],
) -> tuple[PatternSequence, ...]:
    """Sequences not strictly dominated in cogency by another one.

    In Example 4.1 the only two most cogent permissible choices are
    α1 and α4.
    """
    result = []
    for candidate in sequences:
        dominated = any(
            sequence_is_strictly_more_cogent(other, candidate)
            for other in sequences
            if other is not candidate
        )
        if not dominated:
            result.append(candidate)
    return tuple(result)


def input_field_count(sequence: PatternSequence) -> int:
    """Total number of input positions bound by the sequence."""
    return sum(len(p.input_positions) for p in sequence)


def cogency_sorted(
    sequences: Sequence[PatternSequence],
) -> tuple[PatternSequence, ...]:
    """Sequences ordered for exploration: most cogent choices first.

    Cogency is a partial order; we linearize it by (a) most-cogent
    sequences first, then (b) decreasing total number of input fields,
    with the pattern codes as a deterministic tie-breaker.
    """
    top = set(most_cogent_sequences(sequences))

    def sort_key(sequence: PatternSequence) -> tuple:
        codes = tuple(p.code for p in sequence)
        return (sequence not in top, -input_field_count(sequence), codes)

    return tuple(sorted(sequences, key=sort_key))


@dataclass(frozen=True)
class PatternPhaseResult:
    """Outcome of phase 1: the ordered candidate sequences."""

    permissible: tuple[PatternSequence, ...]
    most_cogent: tuple[PatternSequence, ...]
    ordered: tuple[PatternSequence, ...]

    @property
    def raw_space_size(self) -> int:
        """Number of permissible sequences (after early discarding)."""
        return len(self.permissible)


def select_patterns(query: ConjunctiveQuery, schema: Schema) -> PatternPhaseResult:
    """Run phase 1 and package the result."""
    permissible = permissible_sequences(query, schema)
    return PatternPhaseResult(
        permissible=permissible,
        most_cogent=most_cogent_sequences(permissible),
        ordered=cogency_sorted(permissible),
    )


def iterate_pattern_choices(
    query: ConjunctiveQuery, schema: Schema, most_cogent_only: bool = False
) -> Iterator[PatternSequence]:
    """Candidate sequences in exploration order (phase-1 heuristic)."""
    phase = select_patterns(query, schema)
    candidates = phase.most_cogent if most_cogent_only else phase.ordered
    yield from candidates
