"""Three-phase branch-and-bound optimizer for multi-domain queries."""

from repro.optimizer.branch_and_bound import Incumbent, SearchStats
from repro.optimizer.fetches import (
    FetchContext,
    FetchResult,
    assign_fetches,
    closed_form_pair,
    closed_form_single,
    exhaustive_assignment,
    greedy_assignment,
    square_assignment,
)
from repro.optimizer.memo import PlanEntry, PlanMemo, bound_key, plan_key
from repro.optimizer.optimizer import (
    OptimizedPlan,
    Optimizer,
    OptimizerConfig,
    optimize_query,
)
from repro.optimizer.patterns import (
    PatternPhaseResult,
    PatternSequence,
    cogency_sorted,
    is_executable,
    iterate_pattern_choices,
    most_cogent_sequences,
    permissible_sequences,
    select_patterns,
    sequence_is_more_cogent,
    sequence_is_strictly_more_cogent,
)
from repro.optimizer.topology import (
    TopologyEnumerator,
    TopologyHeuristics,
    atom_callable_after,
    count_posets,
    heuristic_posets,
    maximal_parallel,
    selective_chain,
)

__all__ = [
    "FetchContext",
    "FetchResult",
    "Incumbent",
    "OptimizedPlan",
    "Optimizer",
    "OptimizerConfig",
    "PatternPhaseResult",
    "PatternSequence",
    "PlanEntry",
    "PlanMemo",
    "SearchStats",
    "bound_key",
    "plan_key",
    "TopologyEnumerator",
    "TopologyHeuristics",
    "assign_fetches",
    "atom_callable_after",
    "closed_form_pair",
    "closed_form_single",
    "cogency_sorted",
    "count_posets",
    "exhaustive_assignment",
    "greedy_assignment",
    "heuristic_posets",
    "is_executable",
    "iterate_pattern_choices",
    "maximal_parallel",
    "most_cogent_sequences",
    "optimize_query",
    "permissible_sequences",
    "select_patterns",
    "selective_chain",
    "sequence_is_more_cogent",
    "sequence_is_strictly_more_cogent",
    "square_assignment",
]
