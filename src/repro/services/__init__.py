"""Service substrate: profiles, invocation protocol, registry, profiler."""

from repro.services.base import (
    InvocationError,
    InvocationResult,
    LatencyModel,
    Service,
)
from repro.services.profile import (
    ProfileError,
    ServiceKind,
    ServiceProfile,
    exact_profile,
    search_profile,
)
from repro.services.profiler import (
    ProfileEstimate,
    ServiceProfiler,
    format_profile_table,
    profile_services,
)
from repro.services.registry import (
    DEFAULT_JOIN_SELECTIVITY,
    JoinMethod,
    RegistryError,
    ServiceRegistry,
)
from repro.services.sqlite import (
    FTS5SearchService,
    SQLiteExactService,
    SQLiteSearchService,
    SQLiteTableService,
    fts5_available,
    sqlite_exact_service,
    sqlite_search_service,
)
from repro.services.table import (
    TableExactService,
    TableSearchService,
    exact_service,
    search_service,
)

__all__ = [
    "DEFAULT_JOIN_SELECTIVITY",
    "FTS5SearchService",
    "InvocationError",
    "InvocationResult",
    "JoinMethod",
    "LatencyModel",
    "ProfileError",
    "ProfileEstimate",
    "RegistryError",
    "SQLiteExactService",
    "SQLiteSearchService",
    "SQLiteTableService",
    "Service",
    "ServiceKind",
    "ServiceProfile",
    "ServiceProfiler",
    "ServiceRegistry",
    "TableExactService",
    "TableSearchService",
    "exact_profile",
    "exact_service",
    "format_profile_table",
    "fts5_available",
    "profile_services",
    "search_profile",
    "search_service",
]
