"""Service substrate: profiles, invocation protocol, registry, profiler."""

from repro.services.base import (
    InvocationError,
    InvocationResult,
    LatencyModel,
    Service,
)
from repro.services.profile import (
    ProfileError,
    ServiceKind,
    ServiceProfile,
    exact_profile,
    search_profile,
)
from repro.services.profiler import (
    ProfileEstimate,
    ServiceProfiler,
    format_profile_table,
    profile_services,
)
from repro.services.registry import (
    DEFAULT_JOIN_SELECTIVITY,
    JoinMethod,
    RegistryError,
    ServiceRegistry,
)
from repro.services.table import (
    TableExactService,
    TableSearchService,
    exact_service,
    search_service,
)

__all__ = [
    "DEFAULT_JOIN_SELECTIVITY",
    "InvocationError",
    "InvocationResult",
    "JoinMethod",
    "LatencyModel",
    "ProfileError",
    "ProfileEstimate",
    "RegistryError",
    "Service",
    "ServiceKind",
    "ServiceProfile",
    "ServiceProfiler",
    "ServiceRegistry",
    "TableExactService",
    "TableSearchService",
    "exact_profile",
    "exact_service",
    "format_profile_table",
    "profile_services",
    "search_profile",
    "search_service",
]
