"""Service profiles: the statistics driving optimization (Sections 2.1, 3.1).

For uniformity with the paper we keep the same letters:

* ``ξ`` (xi)  — *erspi*, the expected result size per invocation;
* ``τ`` (tau) — the average response time of one invocation/fetch;
* ``cs``     — the chunk size of a chunked service;
* ``d``      — the decay of a search service: the number of tuples
  after which ranking is known to decrease below the threshold of
  interest, when available.

A service whose erspi exceeds 1 is *proliferative*; between 0 and 1 it
is *selective*.  Search services are normally highly proliferative.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from enum import Enum

from repro.digest import content_digest


class ServiceKind(Enum):
    """Exact services behave relationally; search services rank results."""

    EXACT = "exact"
    SEARCH = "search"


class ProfileError(ValueError):
    """Raised for inconsistent profile parameters."""


@dataclass(frozen=True)
class ServiceProfile:
    """Statistical characterization of a service.

    Attributes
    ----------
    kind:
        :class:`ServiceKind.EXACT` or :class:`ServiceKind.SEARCH`.
    erspi:
        Expected result size per invocation (ξ).  For chunked services
        this is the expected number of available results per call
        (what a full scan would return); per-fetch output is governed
        by ``chunk_size`` instead.
    response_time:
        Average response time of one invocation/fetch in seconds (τ).
    chunk_size:
        Tuples per fetch for chunked services, ``None`` for bulk ones.
    decay:
        Number of tuples after which a search service's ranking decays
        below interest (``None`` when unknown).
    cost_per_call:
        Monetary/abstract cost of one invocation, used by the sum cost
        metric; the request-response metric fixes this to 1.
    """

    kind: ServiceKind
    erspi: float
    response_time: float
    chunk_size: int | None = None
    decay: int | None = None
    cost_per_call: float = 1.0

    def __post_init__(self) -> None:
        if self.erspi < 0:
            raise ProfileError(f"erspi must be non-negative, got {self.erspi}")
        if self.response_time < 0:
            raise ProfileError(
                f"response time must be non-negative, got {self.response_time}"
            )
        if self.chunk_size is not None and self.chunk_size <= 0:
            raise ProfileError(f"chunk size must be positive, got {self.chunk_size}")
        if self.decay is not None and self.decay <= 0:
            raise ProfileError(f"decay must be positive, got {self.decay}")
        if self.cost_per_call < 0:
            raise ProfileError(
                f"cost per call must be non-negative, got {self.cost_per_call}"
            )
        if self.kind is ServiceKind.SEARCH and self.chunk_size is None:
            raise ProfileError("search services must be chunked (define chunk_size)")

    @property
    def is_search(self) -> bool:
        """True for search (ranked) services."""
        return self.kind is ServiceKind.SEARCH

    @property
    def is_exact(self) -> bool:
        """True for exact (relational) services."""
        return self.kind is ServiceKind.EXACT

    @property
    def is_chunked(self) -> bool:
        """True when results are returned in fixed-size pages."""
        return self.chunk_size is not None

    @property
    def is_bulk(self) -> bool:
        """True when all results come back from a single request."""
        return self.chunk_size is None

    @property
    def is_selective(self) -> bool:
        """erspi in (0, 1]: invocations shrink the tuple flow."""
        return self.erspi <= 1.0

    @property
    def is_proliferative(self) -> bool:
        """erspi above 1: invocations multiply the tuple flow."""
        return self.erspi > 1.0

    def max_fetches(self) -> int | None:
        """Upper bound on the fetching factor implied by the decay.

        After ``ceil(d / cs)`` fetches a search service returns no more
        relevant data (Section 4.3.2); ``None`` when no decay is known
        or the service is not chunked.
        """
        if self.decay is None or self.chunk_size is None:
            return None
        return max(1, math.ceil(self.decay / self.chunk_size))

    def with_cost(self, cost_per_call: float) -> "ServiceProfile":
        """Copy of the profile with a different per-call cost."""
        return replace(self, cost_per_call=cost_per_call)

    def fingerprint(self) -> str:
        """Stable content hash of the profile's statistics.

        Two profiles hash equally iff every field driving the
        optimizer's cost estimates is equal; the rendering sorts its
        keys, so the digest is independent of any construction or
        dict ordering.  Plan caches use this (via a registry epoch)
        as their invalidation key: a drifted profile changes the
        digest and strands the stale plans.
        """
        return content_digest(
            {
                "kind": self.kind.value,
                "erspi": self.erspi,
                "response_time": self.response_time,
                "chunk_size": self.chunk_size,
                "decay": self.decay,
                "cost_per_call": self.cost_per_call,
            }
        )

    def describe(self) -> str:
        """One-line rendering used by the Table 1 benchmark."""
        kind = self.kind.value
        chunk = str(self.chunk_size) if self.chunk_size is not None else "-"
        return (
            f"{kind:<7} chunk={chunk:<4} erspi={self.erspi:<7.3g} "
            f"tau={self.response_time:.3g}s"
        )


def exact_profile(
    erspi: float,
    response_time: float,
    chunk_size: int | None = None,
    cost_per_call: float = 1.0,
) -> ServiceProfile:
    """Profile of an exact service (optionally chunked)."""
    return ServiceProfile(
        kind=ServiceKind.EXACT,
        erspi=erspi,
        response_time=response_time,
        chunk_size=chunk_size,
        cost_per_call=cost_per_call,
    )


def search_profile(
    chunk_size: int,
    response_time: float,
    erspi: float | None = None,
    decay: int | None = None,
    cost_per_call: float = 1.0,
) -> ServiceProfile:
    """Profile of a (chunked, ranked) search service.

    When *erspi* is omitted it defaults to the chunk size: a single
    fetch is the unit of invocation, and search services are assumed to
    fill their first page.
    """
    return ServiceProfile(
        kind=ServiceKind.SEARCH,
        erspi=float(chunk_size) if erspi is None else erspi,
        response_time=response_time,
        chunk_size=chunk_size,
        decay=decay,
        cost_per_call=cost_per_call,
    )
