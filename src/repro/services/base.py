"""The service abstraction: invocation protocol and latency model.

A service exposes its :class:`~repro.model.schema.ServiceSignature`
(name, abstract domains, feasible access patterns) and a
:class:`~repro.services.profile.ServiceProfile`.  Invocations bind
values to the input positions of a chosen access pattern and receive a
(possibly paged) set of full-arity tuples.

Services never sleep: they *report* a latency for each invocation and
the execution engine advances a virtual clock accordingly.  This keeps
experiments deterministic and fast while reproducing the paper's
timing structure (Section 6), including the observed effect that
remote servers answer repeated identical requests from their own cache
much faster (the "Bookings.com effect").
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Mapping

from repro.model.schema import AccessPattern, SchemaError, ServiceSignature
from repro.services.profile import ServiceProfile


class InvocationError(ValueError):
    """Raised for invalid invocations (wrong pattern, missing inputs)."""


class TransientServiceError(RuntimeError):
    """A page-level failure worth retrying (timeout, dropped response).

    The resilience layer (:mod:`repro.execution.resilience`) retries
    invocations that raise this marker (or a builtin
    ``ConnectionError``/``TimeoutError``) under its
    :class:`~repro.execution.resilience.RetryPolicy`; any other
    exception — :class:`InvocationError`, schema violations — is a
    *permanent* fault and propagates immediately.  The fault-injection
    kit's :class:`~repro.testing.faults.InjectedFault` subclasses this
    marker, so injected page failures are retryable by construction.
    """


#: Fraction of the nominal response time charged for a repeated call
#: answered from the remote server's own cache.
REMOTE_CACHE_FACTOR = 0.05


@dataclass(frozen=True)
class InvocationResult:
    """Outcome of one service invocation (one fetch, if chunked).

    ``tuples`` are full-arity tuples in the signature's positional
    order.  For search services they arrive in decreasing relevance;
    the relevance measure itself stays opaque, as in the paper, but
    ``ranks`` exposes the global rank index (0-based) of each tuple in
    the service's result list so rank-aware joins can preserve order.
    """

    tuples: tuple[tuple, ...]
    latency: float
    has_more: bool
    from_remote_cache: bool = False
    ranks: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.ranks and len(self.ranks) != len(self.tuples):
            raise InvocationError("ranks must align with tuples")

    def __len__(self) -> int:
        return len(self.tuples)


@dataclass
class LatencyModel:
    """Latency of one invocation, with optional remote-side caching.

    ``remote_caching`` reproduces servers that answer repeated
    identical requests quickly; the paper observes this for
    Bookings.com but not for Expedia.

    The check-then-add on ``_seen`` is the one piece of mutable service
    state a :class:`~repro.execution.parallel.ParallelExecutor` worker
    races on, so it runs under a per-model lock — inside the model
    rather than around :meth:`Service.invoke`, because serializing
    whole invocations would also serialize any real work (e.g. a
    sleeping bench proxy) and erase the parallel speedup being
    measured.
    """

    response_time: float
    remote_caching: bool = False
    repeat_factor: float = REMOTE_CACHE_FACTOR
    _seen: set = field(default_factory=set, repr=False, compare=False)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def latency_for(self, key: object) -> tuple[float, bool]:
        """Return ``(latency, was_remote_cache_hit)`` for a call keyed by *key*."""
        with self._lock:
            if self.remote_caching and key in self._seen:
                return self.response_time * self.repeat_factor, True
            if self.remote_caching:
                self._seen.add(key)
        return self.response_time, False

    def reset(self) -> None:
        """Forget the remote server's cache (e.g. between experiments)."""
        with self._lock:
            self._seen.clear()


class Service(ABC):
    """Base class for all services (exact and search)."""

    def __init__(
        self,
        signature: ServiceSignature,
        profile: ServiceProfile,
        remote_caching: bool = False,
        pattern_profiles: Mapping[str, ServiceProfile] | None = None,
    ) -> None:
        self._signature = signature
        self._profile = profile
        self._pattern_profiles = dict(pattern_profiles or {})
        for code in self._pattern_profiles:
            signature.pattern(code)  # validate the override targets
        self._latency = LatencyModel(
            response_time=profile.response_time, remote_caching=remote_caching
        )

    @property
    def signature(self) -> ServiceSignature:
        """The service's interface."""
        return self._signature

    @property
    def profile(self) -> ServiceProfile:
        """The service's default statistical profile."""
        return self._profile

    def profile_for(self, pattern_code: str | None = None) -> ServiceProfile:
        """The profile to use when invoking with a given access pattern.

        Different patterns of the same service can return answer sets of
        very different sizes (the whole point of the "bound is better"
        heuristic), so profiles may be registered per pattern; the
        default profile is used when no override exists.
        """
        if pattern_code is not None and pattern_code in self._pattern_profiles:
            return self._pattern_profiles[pattern_code]
        return self._profile

    @property
    def name(self) -> str:
        """The service name."""
        return self._signature.name

    @property
    def latency_model(self) -> LatencyModel:
        """The latency model (exposed for experiment setup/reset)."""
        return self._latency

    def invoke(
        self,
        pattern: AccessPattern,
        inputs: Mapping[int, object],
        page: int = 0,
    ) -> InvocationResult:
        """Invoke the service.

        Parameters
        ----------
        pattern:
            One of the service's feasible access patterns.
        inputs:
            Values for every input position of *pattern* (by zero-based
            argument position).
        page:
            For chunked services, the zero-based fetch index; bulk
            services only accept page 0.
        """
        self._validate_invocation(pattern, inputs, page)
        tuples, ranks, has_more = self._compute(pattern, inputs, page)
        key = (pattern.code, tuple(sorted(inputs.items())), page)
        latency, cached = self._latency.latency_for(key)
        return InvocationResult(
            tuples=tuple(tuples),
            latency=latency,
            has_more=has_more,
            from_remote_cache=cached,
            ranks=tuple(ranks),
        )

    def reset(self) -> None:
        """Reset per-experiment state (remote cache)."""
        self._latency.reset()

    @abstractmethod
    def _compute(
        self,
        pattern: AccessPattern,
        inputs: Mapping[int, object],
        page: int,
    ) -> tuple[list[tuple], list[int], bool]:
        """Produce ``(tuples, ranks, has_more)`` for one invocation."""

    def _validate_invocation(
        self,
        pattern: AccessPattern,
        inputs: Mapping[int, object],
        page: int,
    ) -> None:
        if pattern.code not in {p.code for p in self._signature.patterns}:
            raise InvocationError(
                f"pattern {pattern.code!r} is not feasible for service {self.name!r}"
            )
        if pattern.arity != self._signature.arity:
            raise SchemaError(
                f"pattern {pattern.code!r} does not fit service {self.name!r}"
            )
        missing = [k for k in pattern.input_positions if k not in inputs]
        if missing:
            raise InvocationError(
                f"missing input positions {missing} for {self.name!r} "
                f"with pattern {pattern.code!r}"
            )
        extra = [k for k in inputs if k not in pattern.input_positions]
        if extra:
            raise InvocationError(
                f"values supplied for non-input positions {extra} of {self.name!r}"
            )
        if page < 0:
            raise InvocationError(f"page must be non-negative, got {page}")
        if page > 0 and not self._profile.is_chunked:
            raise InvocationError(
                f"service {self.name!r} is bulk: only page 0 is available"
            )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
