"""Table-backed services: relations exposed through access patterns.

These are the workhorse implementations used by the simulated deep-Web
sources: a service is a finite relation (a list of full-arity tuples)
together with a signature and a profile.  Invoking the service with an
access pattern selects the rows matching the input values.

* :class:`TableExactService` returns matching rows unranked, either in
  bulk or paged in arbitrary (storage) order.
* :class:`TableSearchService` scores matching rows with a ranking
  function, orders them by decreasing relevance, and returns them in
  chunks.  The score stays out of the visible tuple (the paper notes
  the relevance measure is normally opaque), but rank indexes are
  exposed for rank-aware joins.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from repro.model.schema import AccessPattern, ServiceSignature
from repro.services.base import InvocationError, Service
from repro.services.profile import ServiceProfile

#: Scores rows for search services: maps a full-arity tuple to a float,
#: larger meaning more relevant.
ScoreFunction = Callable[[tuple], float]


class TableService(Service):
    """Common machinery for relation-backed services."""

    def __init__(
        self,
        signature: ServiceSignature,
        profile: ServiceProfile,
        rows: Iterable[Sequence],
        remote_caching: bool = False,
        pattern_profiles: Mapping[str, ServiceProfile] | None = None,
    ) -> None:
        super().__init__(
            signature,
            profile,
            remote_caching=remote_caching,
            pattern_profiles=pattern_profiles,
        )
        self._rows: list[tuple] = []
        for row in rows:
            materialized = tuple(row)
            if len(materialized) != signature.arity:
                raise InvocationError(
                    f"row {materialized!r} has {len(materialized)} fields, "
                    f"but service {signature.name!r} has arity {signature.arity}"
                )
            self._rows.append(materialized)

    @property
    def rows(self) -> tuple[tuple, ...]:
        """The full underlying relation (for tests and profiling)."""
        return tuple(self._rows)

    def _matching_rows(
        self, pattern: AccessPattern, inputs: Mapping[int, object]
    ) -> list[tuple]:
        """Rows whose input positions equal the supplied values."""
        positions = pattern.input_positions
        return [
            row
            for row in self._rows
            if all(row[k] == inputs[k] for k in positions)
        ]

    def _page_slice(self, matches: list[tuple], page: int) -> tuple[list[tuple], bool]:
        """Slice *matches* into the requested page, honoring chunking."""
        chunk = self.profile.chunk_size
        if chunk is None:
            return matches, False
        start = page * chunk
        stop = start + chunk
        return matches[start:stop], stop < len(matches)


class TableExactService(TableService):
    """An exact service over a stored relation (bulk or chunked)."""

    def _compute(
        self,
        pattern: AccessPattern,
        inputs: Mapping[int, object],
        page: int,
    ) -> tuple[list[tuple], list[int], bool]:
        matches = self._matching_rows(pattern, inputs)
        selected, has_more = self._page_slice(matches, page)
        return selected, [], has_more


class TableSearchService(TableService):
    """A search service: ranked, chunked results over a stored relation."""

    def __init__(
        self,
        signature: ServiceSignature,
        profile: ServiceProfile,
        rows: Iterable[Sequence],
        score: ScoreFunction,
        remote_caching: bool = False,
        pattern_profiles: Mapping[str, ServiceProfile] | None = None,
    ) -> None:
        if not profile.is_search:
            raise InvocationError(
                f"TableSearchService requires a search profile for {signature.name!r}"
            )
        super().__init__(
            signature,
            profile,
            rows,
            remote_caching=remote_caching,
            pattern_profiles=pattern_profiles,
        )
        self._score = score

    def _compute(
        self,
        pattern: AccessPattern,
        inputs: Mapping[int, object],
        page: int,
    ) -> tuple[list[tuple], list[int], bool]:
        matches = self._matching_rows(pattern, inputs)
        # Decreasing relevance; ties broken by storage order for
        # determinism (sort is stable).
        ranked = sorted(matches, key=self._score, reverse=True)
        decay = self.profile.decay
        if decay is not None:
            # Beyond the decay bound, ranking is known to be below the
            # threshold of interest: the service stops serving tuples.
            ranked = ranked[:decay]
        selected, has_more = self._page_slice(ranked, page)
        chunk = self.profile.chunk_size or len(ranked)
        first_rank = page * chunk
        ranks = list(range(first_rank, first_rank + len(selected)))
        return selected, ranks, has_more


def exact_service(
    signature: ServiceSignature,
    profile: ServiceProfile,
    rows: Iterable[Sequence],
    remote_caching: bool = False,
) -> TableExactService:
    """Convenience constructor for :class:`TableExactService`."""
    return TableExactService(signature, profile, rows, remote_caching=remote_caching)


def search_service(
    signature: ServiceSignature,
    profile: ServiceProfile,
    rows: Iterable[Sequence],
    score: ScoreFunction,
    remote_caching: bool = False,
) -> TableSearchService:
    """Convenience constructor for :class:`TableSearchService`."""
    return TableSearchService(
        signature, profile, rows, score, remote_caching=remote_caching
    )
