"""Sampling-based service profiling (Section 5, "Service registration").

"The registration ... gives estimates (by sampling) of its erspi,
average response time, and chunk values.  The estimates are
periodically updated, also taking advantage of subsequent invocations."

:class:`ServiceProfiler` issues test invocations against a service with
a supplied set of sample inputs, and derives an empirical profile:
average result size per invocation (erspi), average response time, and
the observed chunk size.  The Table 1 benchmark regenerates the paper's
service characterization this way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.model.schema import AccessPattern
from repro.services.base import Service
from repro.services.profile import ServiceKind, ServiceProfile


@dataclass(frozen=True)
class ProfileEstimate:
    """Empirical estimates gathered from sample invocations."""

    service: str
    kind: ServiceKind
    invocations: int
    average_result_size: float
    average_response_time: float
    chunk_size: int | None

    def as_profile(self, decay: int | None = None) -> ServiceProfile:
        """Convert the estimate into a usable :class:`ServiceProfile`."""
        return ServiceProfile(
            kind=self.kind,
            erspi=(
                float(self.chunk_size)
                if self.kind is ServiceKind.SEARCH and self.chunk_size
                else self.average_result_size
            ),
            response_time=self.average_response_time,
            chunk_size=self.chunk_size,
            decay=decay,
        )

    def table_row(self) -> tuple[str, str, str, str, str]:
        """A Table 1-style row: name, type, chunk, avg size, avg time.

        Search services report chunk size but no average response size;
        exact services the opposite — exactly as in the paper's table.
        """
        is_search = self.kind is ServiceKind.SEARCH
        chunk = str(self.chunk_size) if is_search and self.chunk_size else "-"
        size = "-" if is_search else f"{self.average_result_size:g}"
        return (
            self.service,
            self.kind.value,
            chunk,
            size,
            f"{self.average_response_time:g}",
        )


class ServiceProfiler:
    """Estimates service statistics from sample invocations."""

    def __init__(self, service: Service) -> None:
        self._service = service

    def estimate(
        self,
        pattern: AccessPattern,
        sample_inputs: Iterable[Mapping[int, object]],
        fetches_per_input: int = 1,
    ) -> ProfileEstimate:
        """Probe the service with *sample_inputs* and summarize.

        Each sample input is invoked ``fetches_per_input`` times (or
        until the service reports no more pages).  For chunked
        services, erspi is measured per fetch; the chunk size is taken
        to be the maximum page size observed (pages are full except
        possibly the last one).
        """
        total_tuples = 0
        total_latency = 0.0
        calls = 0
        max_page = 0
        for inputs in sample_inputs:
            page = 0
            while page < fetches_per_input:
                result = self._service.invoke(pattern, inputs, page=page)
                calls += 1
                total_tuples += len(result)
                total_latency += result.latency
                max_page = max(max_page, len(result))
                if not result.has_more:
                    break
                page += 1
        if calls == 0:
            raise ValueError("at least one sample input is required")
        profile = self._service.profile
        observed_chunk = max_page if profile.is_chunked else None
        return ProfileEstimate(
            service=self._service.name,
            kind=profile.kind,
            invocations=calls,
            average_result_size=total_tuples / calls,
            average_response_time=total_latency / calls,
            chunk_size=observed_chunk,
        )


def profile_services(
    probes: Sequence[tuple[Service, AccessPattern, Sequence[Mapping[int, object]]]],
) -> list[ProfileEstimate]:
    """Profile several services; returns one estimate per probe."""
    estimates = []
    for service, pattern, samples in probes:
        estimates.append(ServiceProfiler(service).estimate(pattern, samples))
    return estimates


def format_profile_table(estimates: Iterable[ProfileEstimate]) -> str:
    """Render estimates as the paper's Table 1."""
    header = ("Service", "Type", "Chunk size", "Avg response size", "Avg response time")
    rows = [header] + [e.table_row() for e in estimates]
    widths = [max(len(row[k]) for row in rows) for k in range(len(header))]
    lines = []
    for index, row in enumerate(rows):
        line = "  ".join(cell.ljust(widths[k]) for k, cell in enumerate(row))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("-" * len(line))
    return "\n".join(lines)
