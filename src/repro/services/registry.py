"""Service registration (Section 5): the optimizer's view of the world.

The registry stores, for every known service, its implementation
object, signature, and profile; for every pair of services, the
preferred parallel-join method ("for each pair of services, it is
known which parallel join method should be used"); and estimated
selectivities for join predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Iterable, Iterator, Mapping

from repro.digest import content_digest
from repro.model.schema import Schema, SchemaError, ServiceSignature
from repro.services.base import Service
from repro.services.profile import ServiceProfile


class JoinMethod(Enum):
    """Parallel join strategies of the paper (Figure 5)."""

    NESTED_LOOP = "NL"
    MERGE_SCAN = "MS"


#: Default selectivity of an equi-join predicate between two services
#: when no estimate has been registered.  The running example uses 0.01
#: for the hotel/flight join (Example 5.1).
DEFAULT_JOIN_SELECTIVITY = 0.01


class RegistryError(KeyError):
    """Raised when a lookup fails."""


@dataclass
class ServiceRegistry:
    """Holds services, join-method choices, and join selectivities."""

    _services: dict[str, Service] = field(default_factory=dict)
    _join_methods: dict[frozenset, JoinMethod] = field(default_factory=dict)
    _join_selectivities: dict[frozenset, float] = field(default_factory=dict)
    default_join_selectivity: float = DEFAULT_JOIN_SELECTIVITY
    #: Bumped by every registration; lets :meth:`content_epoch` cache
    #: its digest instead of re-hashing per serving request.
    _revision: int = field(default=0, repr=False)
    _epoch_cache: tuple | None = field(default=None, repr=False)

    # -- registration --------------------------------------------------

    def register(self, service: Service) -> None:
        """Register *service*; names must be unique."""
        if service.name in self._services:
            raise SchemaError(f"service {service.name!r} already registered")
        self._services[service.name] = service
        self._revision += 1

    def register_join_method(
        self, service_a: str, service_b: str, method: JoinMethod
    ) -> None:
        """Fix the parallel-join method for a pair of services.

        The paper says the NL/MS choice "can be made at service
        registration time, by analyzing their statistical behavior".
        """
        self._join_methods[frozenset({service_a, service_b})] = method
        self._revision += 1

    def register_join_selectivity(
        self, service_a: str, service_b: str, selectivity: float
    ) -> None:
        """Record the estimated selectivity of the equi-join predicate."""
        if not 0.0 <= selectivity <= 1.0:
            raise ValueError(f"selectivity must be in [0, 1], got {selectivity}")
        self._join_selectivities[frozenset({service_a, service_b})] = selectivity
        self._revision += 1

    # -- lookups --------------------------------------------------------

    def service(self, name: str) -> Service:
        """The registered service object named *name*."""
        try:
            return self._services[name]
        except KeyError:
            raise RegistryError(f"service {name!r} is not registered") from None

    def profile(self, name: str, pattern_code: str | None = None) -> ServiceProfile:
        """The profile of service *name* (optionally pattern-specific)."""
        return self.service(name).profile_for(pattern_code)

    def signature(self, name: str) -> ServiceSignature:
        """The signature of service *name*."""
        return self.service(name).signature

    def __contains__(self, name: str) -> bool:
        return name in self._services

    def __iter__(self) -> Iterator[Service]:
        return iter(self._services.values())

    def __len__(self) -> int:
        return len(self._services)

    @property
    def names(self) -> tuple[str, ...]:
        """All registered service names, in registration order."""
        return tuple(self._services)

    def schema(self) -> Schema:
        """A :class:`Schema` view over all registered signatures."""
        schema = Schema()
        for service in self:
            schema.add(service.signature)
        return schema

    def join_method(self, service_a: str, service_b: str) -> JoinMethod:
        """Preferred parallel-join method for a pair of services.

        If no explicit registration exists, apply the paper's rule of
        thumb: nested loop when one side is known to produce its top
        tuples within few fetches (it has a small decay bound or is an
        exact selective service), merge-scan when there is no a priori
        distinction — "Since no decay is known for either hotel or
        flight, merge-scan is used" (Example 5.1).
        """
        key = frozenset({service_a, service_b})
        if key in self._join_methods:
            return self._join_methods[key]
        profile_a = self.profile(service_a)
        profile_b = self.profile(service_b)
        if self._tops_out_quickly(profile_a) != self._tops_out_quickly(profile_b):
            return JoinMethod.NESTED_LOOP
        return JoinMethod.MERGE_SCAN

    def join_selectivity(self, service_a: str, service_b: str) -> float:
        """Estimated selectivity of the equi-join between two services."""
        key = frozenset({service_a, service_b})
        return self._join_selectivities.get(key, self.default_join_selectivity)

    def reset_all(self) -> None:
        """Reset per-experiment state (remote caches) of every service."""
        for service in self:
            service.reset()

    def siblings(
        self, name: str, pattern_codes: Iterable[str] | None = None
    ) -> tuple[str, ...]:
        """Registered services equivalent to *name*, for fallback.

        A sibling serves the same relation shape: identical signature
        domains (same attributes in the same order) and the same
        profile kind (exact vs. search — mixing the two would change
        ranking semantics).  When ``pattern_codes`` is given, every
        listed access pattern must be feasible on the sibling too, so
        a rerouted unit can be invoked with the unit's own inputs
        unchanged.  Candidates come back in registration order (the
        deterministic preference order) and never include *name*
        itself.  Whether a sibling's *content* matches is the
        operator's contract — the certificate records every
        substitution precisely so that contract is auditable.
        """
        base = self.signature(name)
        base_kind = self.profile(name).kind
        codes = tuple(pattern_codes) if pattern_codes is not None else ()
        candidates = []
        for other in self.names:
            if other == name:
                continue
            sig = self.signature(other)
            if tuple(sig.domains) != tuple(base.domains):
                continue
            if self.profile(other).kind is not base_kind:
                continue
            try:
                for code in codes:
                    sig.pattern(code)
            except SchemaError:
                continue
            candidates.append(other)
        return tuple(candidates)

    def content_epoch(self) -> str:
        """Stable content hash of everything the optimizer reads.

        Covers, for every registered service, its signature (name,
        domains, feasible patterns) and the per-pattern profile
        fingerprints, plus the registered join methods, join
        selectivities, and the default selectivity.  Every collection
        is serialized in sorted order, so the digest is independent of
        registration order and of dict iteration order — two
        registries with the same content always agree.

        This is the *epoch* a persistent plan cache keys on: plans
        optimized under one epoch are only replayed while the epoch is
        unchanged, and any profile drift (re-profiled services, new
        selectivity estimates) strands them automatically.

        The digest is cached per registration revision (profiles are
        frozen and content changes only enter through ``register*``
        calls or ``default_join_selectivity``), so the serving hot
        path pays a dict probe, not a re-hash, per request.
        """
        cache_key = (self._revision, self.default_join_selectivity)
        if self._epoch_cache is not None and self._epoch_cache[0] == cache_key:
            return self._epoch_cache[1]
        services = []
        for name in sorted(self._services):
            service = self._services[name]
            sig = service.signature
            codes = sorted(p.code for p in sig.patterns)
            services.append(
                {
                    "name": name,
                    "domains": list(sig.domains),
                    "patterns": codes,
                    "profiles": {
                        code: service.profile_for(code).fingerprint()
                        for code in codes
                    },
                    "default_profile": service.profile.fingerprint(),
                }
            )
        payload = {
            "services": services,
            "join_methods": sorted(
                (sorted(pair), method.value)
                for pair, method in self._join_methods.items()
            ),
            "join_selectivities": sorted(
                (sorted(pair), selectivity)
                for pair, selectivity in self._join_selectivities.items()
            ),
            "default_join_selectivity": self.default_join_selectivity,
        }
        digest = content_digest(payload)
        self._epoch_cache = (cache_key, digest)
        return digest

    @staticmethod
    def _tops_out_quickly(profile: ServiceProfile) -> bool:
        max_fetches = profile.max_fetches()
        if max_fetches is not None and max_fetches <= 2:
            return True
        return profile.is_exact and profile.is_selective


class AdjustedRegistry:
    """A registry view with observed response-time overrides.

    The adaptivity layer's bridge from *observed* service health back
    into *plan costs*: :meth:`profile` returns the base registry's
    profile with ``response_time`` raised to the observed value (never
    lowered — a service answering faster than profiled needs no
    re-plan), so an :class:`~repro.optimizer.optimizer.Optimizer` or
    :class:`~repro.plans.builder.PlanBuilder` run against the view
    costs plans at what the service is *actually* doing.

    :meth:`content_epoch` folds the overrides into the base epoch, so
    every plan-cache key resolved under an adjusted view is distinct
    from (and never poisons) the unadjusted epoch's entries, and the
    moment the adjustments change — a breaker opens, closes, or
    re-observes — stale adjusted plans strand automatically, exactly
    like any other profile drift.  With no overrides the view is
    transparent: base profiles, base epoch, bit-identical costing.

    Everything else (service objects, signatures, join methods, ...)
    delegates to the base registry via ``__getattr__``; executions
    against the view invoke the *real* services.
    """

    def __init__(
        self, base: ServiceRegistry, response_times: Mapping[str, float]
    ) -> None:
        self._base = base
        self._response_times = {
            name: rt for name, rt in response_times.items() if rt > 0
        }

    @property
    def adjustments(self) -> dict[str, float]:
        """The active response-time overrides (a copy)."""
        return dict(self._response_times)

    def profile(
        self, name: str, pattern_code: str | None = None
    ) -> ServiceProfile:
        profile = self._base.profile(name, pattern_code)
        observed = self._response_times.get(name)
        if observed is None or observed <= profile.response_time:
            return profile
        return replace(profile, response_time=observed)

    def content_epoch(self) -> str:
        base_epoch = self._base.content_epoch()
        if not self._response_times:
            return base_epoch
        return content_digest(
            {
                "base": base_epoch,
                "adjusted_response_times": sorted(
                    self._response_times.items()
                ),
            }
        )

    def __contains__(self, name: str) -> bool:
        return name in self._base

    def __iter__(self) -> Iterator[Service]:
        return iter(self._base)

    def __len__(self) -> int:
        return len(self._base)

    def __getattr__(self, attribute: str):
        return getattr(self._base, attribute)
