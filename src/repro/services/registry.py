"""Service registration (Section 5): the optimizer's view of the world.

The registry stores, for every known service, its implementation
object, signature, and profile; for every pair of services, the
preferred parallel-join method ("for each pair of services, it is
known which parallel join method should be used"); and estimated
selectivities for join predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator

from repro.model.schema import Schema, SchemaError, ServiceSignature
from repro.services.base import Service
from repro.services.profile import ServiceProfile


class JoinMethod(Enum):
    """Parallel join strategies of the paper (Figure 5)."""

    NESTED_LOOP = "NL"
    MERGE_SCAN = "MS"


#: Default selectivity of an equi-join predicate between two services
#: when no estimate has been registered.  The running example uses 0.01
#: for the hotel/flight join (Example 5.1).
DEFAULT_JOIN_SELECTIVITY = 0.01


class RegistryError(KeyError):
    """Raised when a lookup fails."""


@dataclass
class ServiceRegistry:
    """Holds services, join-method choices, and join selectivities."""

    _services: dict[str, Service] = field(default_factory=dict)
    _join_methods: dict[frozenset, JoinMethod] = field(default_factory=dict)
    _join_selectivities: dict[frozenset, float] = field(default_factory=dict)
    default_join_selectivity: float = DEFAULT_JOIN_SELECTIVITY

    # -- registration --------------------------------------------------

    def register(self, service: Service) -> None:
        """Register *service*; names must be unique."""
        if service.name in self._services:
            raise SchemaError(f"service {service.name!r} already registered")
        self._services[service.name] = service

    def register_join_method(
        self, service_a: str, service_b: str, method: JoinMethod
    ) -> None:
        """Fix the parallel-join method for a pair of services.

        The paper says the NL/MS choice "can be made at service
        registration time, by analyzing their statistical behavior".
        """
        self._join_methods[frozenset({service_a, service_b})] = method

    def register_join_selectivity(
        self, service_a: str, service_b: str, selectivity: float
    ) -> None:
        """Record the estimated selectivity of the equi-join predicate."""
        if not 0.0 <= selectivity <= 1.0:
            raise ValueError(f"selectivity must be in [0, 1], got {selectivity}")
        self._join_selectivities[frozenset({service_a, service_b})] = selectivity

    # -- lookups --------------------------------------------------------

    def service(self, name: str) -> Service:
        """The registered service object named *name*."""
        try:
            return self._services[name]
        except KeyError:
            raise RegistryError(f"service {name!r} is not registered") from None

    def profile(self, name: str, pattern_code: str | None = None) -> ServiceProfile:
        """The profile of service *name* (optionally pattern-specific)."""
        return self.service(name).profile_for(pattern_code)

    def signature(self, name: str) -> ServiceSignature:
        """The signature of service *name*."""
        return self.service(name).signature

    def __contains__(self, name: str) -> bool:
        return name in self._services

    def __iter__(self) -> Iterator[Service]:
        return iter(self._services.values())

    def __len__(self) -> int:
        return len(self._services)

    @property
    def names(self) -> tuple[str, ...]:
        """All registered service names, in registration order."""
        return tuple(self._services)

    def schema(self) -> Schema:
        """A :class:`Schema` view over all registered signatures."""
        schema = Schema()
        for service in self:
            schema.add(service.signature)
        return schema

    def join_method(self, service_a: str, service_b: str) -> JoinMethod:
        """Preferred parallel-join method for a pair of services.

        If no explicit registration exists, apply the paper's rule of
        thumb: nested loop when one side is known to produce its top
        tuples within few fetches (it has a small decay bound or is an
        exact selective service), merge-scan when there is no a priori
        distinction — "Since no decay is known for either hotel or
        flight, merge-scan is used" (Example 5.1).
        """
        key = frozenset({service_a, service_b})
        if key in self._join_methods:
            return self._join_methods[key]
        profile_a = self.profile(service_a)
        profile_b = self.profile(service_b)
        if self._tops_out_quickly(profile_a) != self._tops_out_quickly(profile_b):
            return JoinMethod.NESTED_LOOP
        return JoinMethod.MERGE_SCAN

    def join_selectivity(self, service_a: str, service_b: str) -> float:
        """Estimated selectivity of the equi-join between two services."""
        key = frozenset({service_a, service_b})
        return self._join_selectivities.get(key, self.default_join_selectivity)

    def reset_all(self) -> None:
        """Reset per-experiment state (remote caches) of every service."""
        for service in self:
            service.reset()

    @staticmethod
    def _tops_out_quickly(profile: ServiceProfile) -> bool:
        max_fetches = profile.max_fetches()
        if max_fetches is not None and max_fetches <= 2:
            return True
        return profile.is_exact and profile.is_selective
