"""Persistent indexed service backends: SQLite B-trees and FTS5 BM25.

Every service so far has been an in-memory synthetic table
(:mod:`repro.services.table`): the right oracle, but nothing in the
repo ever exercised the lazy-cursor, caching, and resilience machinery
against a *real indexed store* or a dataset beyond toy scale.  This
module provides drop-in :class:`~repro.services.base.Service`
implementations backed by SQLite:

* :class:`SQLiteExactService` — an exact service over a ``rows(pos
  INTEGER PRIMARY KEY, c0, .., cn)`` table with one composite B-tree
  index per access pattern's input positions; matching is an index
  scan, paging is ``ORDER BY pos LIMIT .. OFFSET ..`` over the
  insertion order — exactly the storage order the in-memory
  :class:`~repro.services.table.TableExactService` pages through;
* :class:`SQLiteSearchService` — a search service whose opaque
  relevance score is materialized into a ``score REAL`` column at load
  time (the score function is a pure function of the stored tuple);
  each page is ``ORDER BY score DESC, pos LIMIT .. OFFSET ..`` driven
  by a ``(inputs.., score DESC, pos)`` composite index, reproducing
  the oracle's stable descending sort (ties broken by storage order)
  without ever materializing the full ranking in Python;
* :class:`FTS5SearchService` — a search service over an FTS5
  full-text index: the single input position is a MATCH query, pages
  come back ``ORDER BY rank, rowid`` (ascending BM25 ``rank`` is most
  relevant first, ties broken by insertion order), so the exposed
  global rank indexes ``page * chunk + offset`` are rank-monotone by
  construction — exactly what the streamed pipeline's cursor
  certificates require.

**Equivalence contract.**  Over the same rows, profile, and score
function, the SQLite-backed services are *bit-identical* to their
in-memory oracles — same tuples, same ranks, same ``has_more`` flags,
page by page — for values of SQLite-exact types (``str``, ``int``,
``float``; SQLite has no bool/None equality semantics matching
Python's, so relations using those stay on the in-memory backend).
``tests/test_sqlite_services.py`` enforces this differentially, at the
invocation level and through full plan executions under every engine
mode.  The FTS5 service has no Python scoring oracle (BM25 lives in
SQLite); its contract is *internal* consistency: paged output equals
the eagerly drained ranking, and rank indexes are the gap-free
0-based sequence the cursor guards certify.

**Concurrency.**  Connections mirror
:class:`~repro.serving.sqlite_cache.SQLiteDiskTier`: one connection
per thread (sqlite3 connections must not be shared mid-transaction),
kept in a :class:`threading.local`, opened in autocommit, registered
centrally so :meth:`close` can tear everything down; file-backed
databases get ``journal_mode=WAL`` + ``synchronous=NORMAL`` + a busy
timeout, in-memory databases are shared between threads through a
named ``cache=shared`` URI held open by an anchor connection.
Invocations after load are pure reads, so any number of engine or
:class:`~repro.execution.parallel.ParallelExecutor` worker threads
can invoke one service concurrently.
"""

from __future__ import annotations

import itertools
import sqlite3
import threading
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

from repro.model.schema import AccessPattern, ServiceSignature
from repro.services.base import InvocationError, Service
from repro.services.profile import ServiceProfile

#: Scores rows for search services (same contract as
#: :data:`repro.services.table.ScoreFunction`): maps a full-arity
#: tuple to a float, larger meaning more relevant.
ScoreFunction = Callable[[tuple], float]

#: ``PRAGMA user_version`` stamped on databases this module creates.
_SCHEMA_VERSION = 1

#: Distinguishes the shared in-memory databases of live service
#: instances within one process.
_memory_names = itertools.count()


def fts5_available() -> bool:
    """Whether this build of sqlite3 can create FTS5 virtual tables."""
    try:
        with sqlite3.connect(":memory:") as connection:
            connection.execute(
                "CREATE VIRTUAL TABLE probe USING fts5(body)"
            )
        return True
    except sqlite3.OperationalError:
        return False


class _ConnectionPool:
    """Per-thread SQLite connections over one database (file or memory).

    The :class:`~repro.serving.sqlite_cache.SQLiteDiskTier` idiom,
    factored out so the service family can share it: a
    ``threading.local`` holds each thread's lazily opened connection,
    a central registry list lets :meth:`close` shut every connection
    down, and all connections run in autocommit (``isolation_level=
    None``) so no statement ever holds a transaction open across
    Python code — which is also what lets N threads read one
    ``cache=shared`` in-memory database without tripping its
    table-level locks.
    """

    def __init__(
        self, path: Path | str | None, busy_timeout_ms: int = 30_000
    ) -> None:
        if busy_timeout_ms < 0:
            raise ValueError(
                f"busy_timeout_ms must be >= 0, got {busy_timeout_ms}"
            )
        self.busy_timeout_ms = busy_timeout_ms
        self._local = threading.local()
        self._connections: list[sqlite3.Connection] = []
        self._registry_lock = threading.Lock()
        self._anchor: sqlite3.Connection | None = None
        if path is None:
            # A process-unique shared-cache memory database: every
            # thread's connection sees the same data, and the anchor
            # connection keeps the database alive between invocations.
            self._uri = (
                f"file:repro-service-{next(_memory_names)}"
                "?mode=memory&cache=shared"
            )
            self._is_memory = True
            self._anchor = self.connection()
        else:
            self.path = Path(path)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._uri = None
            self._is_memory = False

    @property
    def is_memory(self) -> bool:
        """True for in-memory (``cache=shared``) databases."""
        return self._is_memory

    def connection(self) -> sqlite3.Connection:
        """This thread's connection, opened (and pragma'd) on demand."""
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            return connection
        if self._is_memory:
            connection = sqlite3.connect(
                self._uri, uri=True, isolation_level=None,
                check_same_thread=False,
            )
        else:
            connection = sqlite3.connect(
                self.path,
                timeout=self.busy_timeout_ms / 1000.0,
                isolation_level=None,
                check_same_thread=False,  # used per-thread; closed centrally
            )
            try:
                connection.execute(
                    f"PRAGMA busy_timeout={int(self.busy_timeout_ms)}"
                )
                connection.execute("PRAGMA journal_mode=WAL")
                connection.execute("PRAGMA synchronous=NORMAL")
            except BaseException:
                connection.close()
                raise
        self._local.connection = connection
        with self._registry_lock:
            self._connections.append(connection)
        return connection

    def close(self) -> None:
        """Close every connection ever opened (checkpointing WAL files)."""
        if not self._is_memory:
            try:
                self.connection().execute("PRAGMA wal_checkpoint(TRUNCATE)")
            except sqlite3.Error:
                pass
        self._local.connection = None
        self._anchor = None
        with self._registry_lock:
            for connection in self._connections:
                try:
                    connection.close()
                except sqlite3.Error:
                    pass
            self._connections.clear()


def _quote(identifier: str) -> str:
    """SQL-quote an identifier (service names feed index names)."""
    return '"' + identifier.replace('"', '""') + '"'


class SQLiteTableService(Service):
    """Common machinery of the indexed relational backends.

    The relation lives in a ``rows`` table whose ``pos INTEGER PRIMARY
    KEY`` is the 0-based insertion order — the same storage order the
    in-memory services iterate — and whose value columns ``c0..cn``
    are declared *without* a type affinity, so ``str``/``int``/
    ``float`` values round-trip exactly.  One composite B-tree index
    per feasible access pattern covers that pattern's input positions
    (subclasses may extend the index with ordering columns), so every
    invocation is an index scan, not a table scan.

    ``rows=None`` attaches to an existing database at *path* (the
    persistence path: build once, reopen across processes); otherwise
    the rows are loaded in one transaction and any previous content
    replaced.
    """

    def __init__(
        self,
        signature: ServiceSignature,
        profile: ServiceProfile,
        rows: Iterable[Sequence] | None,
        path: Path | str | None = None,
        remote_caching: bool = False,
        pattern_profiles: Mapping[str, ServiceProfile] | None = None,
        busy_timeout_ms: int = 30_000,
    ) -> None:
        super().__init__(
            signature,
            profile,
            remote_caching=remote_caching,
            pattern_profiles=pattern_profiles,
        )
        if rows is None and path is None:
            raise InvocationError(
                f"service {signature.name!r}: rows are required unless "
                "attaching to an existing database file"
            )
        self._pool = _ConnectionPool(path, busy_timeout_ms=busy_timeout_ms)
        self._columns = [f"c{i}" for i in range(signature.arity)]
        self._select_list = ", ".join(self._columns)
        connection = self._pool.connection()
        if rows is not None:
            self._create_schema(connection)
            self._load(connection, rows)
        else:
            self._check_attached(connection)

    # -- schema and loading ----------------------------------------------

    def _value_columns(self) -> list[str]:
        """Declared value columns beyond ``pos`` (hook for subclasses)."""
        return list(self._columns)

    def _order_columns(self) -> list[str]:
        """Index suffix ordering the pattern scans (hook for subclasses)."""
        return ["pos"]

    def _create_schema(self, connection: sqlite3.Connection) -> None:
        connection.execute("DROP TABLE IF EXISTS rows")
        declared = ", ".join(self._value_columns())
        connection.execute(
            f"CREATE TABLE rows (pos INTEGER PRIMARY KEY, {declared})"
        )
        for pattern in self.signature.patterns:
            positions = pattern.input_positions
            if not positions:
                continue  # pos is the primary key: full scans need no index
            index_columns = [f"c{k}" for k in positions]
            index_columns += [
                column
                for column in self._order_columns()
                if column.split()[0] not in index_columns
            ]
            connection.execute(
                f"CREATE INDEX IF NOT EXISTS "
                f"{_quote(f'{self.name}_{pattern.code}')} "
                f"ON rows ({', '.join(index_columns)})"
            )
        connection.execute(f"PRAGMA user_version={_SCHEMA_VERSION}")

    def _row_values(self, position: int, row: tuple) -> tuple:
        """The stored column values of one relation row (hook)."""
        return (position, *row)

    def _load(
        self, connection: sqlite3.Connection, rows: Iterable[Sequence]
    ) -> None:
        arity = self.signature.arity
        placeholders = ", ".join("?" for _ in range(len(self._value_columns()) + 1))
        payload = []
        for position, row in enumerate(rows):
            materialized = tuple(row)
            if len(materialized) != arity:
                raise InvocationError(
                    f"row {materialized!r} has {len(materialized)} fields, "
                    f"but service {self.name!r} has arity {arity}"
                )
            payload.append(self._row_values(position, materialized))
        connection.execute("BEGIN IMMEDIATE")
        try:
            connection.executemany(
                f"INSERT INTO rows VALUES ({placeholders})", payload
            )
            connection.execute("COMMIT")
        except BaseException:
            connection.execute("ROLLBACK")
            raise

    def _check_attached(self, connection: sqlite3.Connection) -> None:
        try:
            version = connection.execute("PRAGMA user_version").fetchone()[0]
            connection.execute("SELECT pos FROM rows LIMIT 1").fetchone()
        except sqlite3.Error as error:
            raise InvocationError(
                f"service {self.name!r}: cannot attach to database "
                f"({error})"
            ) from error
        if version != _SCHEMA_VERSION:
            raise InvocationError(
                f"service {self.name!r}: unknown schema version {version}"
            )

    # -- introspection ----------------------------------------------------

    @property
    def rows(self) -> tuple[tuple, ...]:
        """The full relation in storage order (tests and profiling)."""
        return tuple(
            self._pool.connection().execute(
                f"SELECT {self._select_list} FROM rows ORDER BY pos"
            )
        )

    def __len__(self) -> int:
        return self._pool.connection().execute(
            "SELECT COUNT(*) FROM rows"
        ).fetchone()[0]

    def close(self) -> None:
        """Release every database connection this service opened."""
        self._pool.close()

    # -- querying ---------------------------------------------------------

    def _where(
        self, pattern: AccessPattern, inputs: Mapping[int, object]
    ) -> tuple[str, list]:
        positions = pattern.input_positions
        if not positions:
            return "", []
        clause = " AND ".join(f"c{k} = ?" for k in positions)
        return f"WHERE {clause}", [inputs[k] for k in positions]

    def _page_window(self, page: int, cap: int | None) -> tuple[int, int] | None:
        """``(limit, offset)`` of one page; None when past the cap.

        Fetches ``chunk + 1`` rows so ``has_more`` needs no second
        query (a row beyond the page proves more exist), clamped at the
        *cap* (a search service's decay bound): beyond it the ranking
        is below interest and the oracle truncates, so the backend must
        neither return row ``cap`` nor report more after ``cap - 1``.
        """
        chunk = self.profile.chunk_size
        assert chunk is not None
        start = page * chunk
        limit = chunk + 1
        if cap is not None:
            if start >= cap:
                return None
            limit = min(limit, cap - start)
        return limit, start


class SQLiteExactService(SQLiteTableService):
    """An exact service over an indexed SQLite relation.

    Bit-identical to :class:`~repro.services.table.TableExactService`
    over the same rows: matches are the rows whose input positions
    equal the bound values, in storage (``pos``) order, paged by the
    profile's chunk size.
    """

    def _compute(
        self,
        pattern: AccessPattern,
        inputs: Mapping[int, object],
        page: int,
    ) -> tuple[list[tuple], list[int], bool]:
        where, parameters = self._where(pattern, inputs)
        connection = self._pool.connection()
        if self.profile.chunk_size is None:
            selected = list(
                connection.execute(
                    f"SELECT {self._select_list} FROM rows {where} "
                    "ORDER BY pos",
                    parameters,
                )
            )
            return selected, [], False
        window = self._page_window(page, cap=None)
        assert window is not None  # no cap: every page has a window
        limit, offset = window
        fetched = list(
            connection.execute(
                f"SELECT {self._select_list} FROM rows {where} "
                "ORDER BY pos LIMIT ? OFFSET ?",
                [*parameters, limit, offset],
            )
        )
        chunk = self.profile.chunk_size
        return fetched[:chunk], [], len(fetched) > chunk


class SQLiteSearchService(SQLiteTableService):
    """A search service ranked by a materialized score column.

    The relevance score — opaque to callers, as in the paper — is
    computed once per row at load time and stored in a ``score REAL``
    column; each access pattern's composite index ends in ``(score
    DESC, pos)`` so a page is one forward index scan.  Output is
    bit-identical to :class:`~repro.services.table.TableSearchService`
    with the same score function: decreasing relevance, ties broken by
    storage order (Python's stable descending sort), truncated at the
    decay bound, with global rank indexes ``page * chunk + offset``.

    Attach mode (``rows=None``) reuses the scores stored in the file,
    so reopening does not need the score function; pass ``score=None``
    explicitly in that case.
    """

    def __init__(
        self,
        signature: ServiceSignature,
        profile: ServiceProfile,
        rows: Iterable[Sequence] | None,
        score: ScoreFunction | None,
        path: Path | str | None = None,
        remote_caching: bool = False,
        pattern_profiles: Mapping[str, ServiceProfile] | None = None,
        busy_timeout_ms: int = 30_000,
    ) -> None:
        if not profile.is_search:
            raise InvocationError(
                f"SQLiteSearchService requires a search profile for "
                f"{signature.name!r}"
            )
        if rows is not None and score is None:
            raise InvocationError(
                f"service {signature.name!r}: a score function is "
                "required to load rows"
            )
        self._score = score
        super().__init__(
            signature,
            profile,
            rows,
            path=path,
            remote_caching=remote_caching,
            pattern_profiles=pattern_profiles,
            busy_timeout_ms=busy_timeout_ms,
        )

    def _value_columns(self) -> list[str]:
        return [*self._columns, "score REAL"]

    def _order_columns(self) -> list[str]:
        return ["score DESC", "pos"]

    def _row_values(self, position: int, row: tuple) -> tuple:
        assert self._score is not None
        return (position, *row, float(self._score(row)))

    def _compute(
        self,
        pattern: AccessPattern,
        inputs: Mapping[int, object],
        page: int,
    ) -> tuple[list[tuple], list[int], bool]:
        chunk = self.profile.chunk_size
        assert chunk is not None  # search profiles are always chunked
        window = self._page_window(page, cap=self.profile.decay)
        if window is None:
            return [], [], False
        limit, offset = window
        where, parameters = self._where(pattern, inputs)
        fetched = list(
            self._pool.connection().execute(
                f"SELECT {self._select_list} FROM rows {where} "
                "ORDER BY score DESC, pos LIMIT ? OFFSET ?",
                [*parameters, limit, offset],
            )
        )
        selected = fetched[:chunk]
        first_rank = page * chunk
        ranks = list(range(first_rank, first_rank + len(selected)))
        return selected, ranks, len(fetched) > chunk


class FTS5SearchService(Service):
    """A search service over an FTS5 full-text index (BM25 ranking).

    The signature's single input position is the *query column*: the
    bound value is matched against the indexed document text, and the
    output tuples are the stored document columns with the query value
    re-inserted at the query position — the same shape a
    ``pubsearch(Keyword, Paper, Title, Year)``-style search service
    exposes.  Documents are the full-arity tuples *minus* the query
    column, given in storage order; ``text_of`` renders the text that
    gets indexed (default: every ``str`` field of the document, space
    joined).

    Pages come back ``ORDER BY rank, rowid`` — FTS5's ``rank`` is the
    BM25 score (more negative = more relevant), so ascending order is
    decreasing relevance with ties broken by insertion order — and the
    exposed rank indexes are the gap-free global sequence ``page *
    chunk + offset``.  Both are fixed for a given (keyword, corpus),
    which makes the paging rank-monotone: exactly the property the
    lazy cursors' certificates need, and what
    ``tests/test_sqlite_services.py`` certifies against an eager full
    drain.

    Match queries are *token-quoted*: the query value is split on
    whitespace and each token double-quoted, so user values can never
    inject FTS5 query syntax (``AND``, ``NEAR``, column filters);
    multiple tokens combine as FTS5's implicit conjunction.
    """

    def __init__(
        self,
        signature: ServiceSignature,
        profile: ServiceProfile,
        documents: Iterable[Sequence],
        query_position: int = 0,
        text_of: Callable[[tuple], str] | None = None,
        path: Path | str | None = None,
        remote_caching: bool = False,
        pattern_profiles: Mapping[str, ServiceProfile] | None = None,
        busy_timeout_ms: int = 30_000,
    ) -> None:
        if not profile.is_search:
            raise InvocationError(
                f"FTS5SearchService requires a search profile for "
                f"{signature.name!r}"
            )
        if not fts5_available():  # pragma: no cover - env dependent
            raise InvocationError(
                "this sqlite3 build does not support FTS5"
            )
        super().__init__(
            signature,
            profile,
            remote_caching=remote_caching,
            pattern_profiles=pattern_profiles,
        )
        arity = signature.arity
        if not 0 <= query_position < arity:
            raise InvocationError(
                f"query position {query_position} outside arity {arity}"
            )
        for pattern in signature.patterns:
            if pattern.input_positions != (query_position,):
                raise InvocationError(
                    f"FTS5 pattern {pattern.code!r} must bind exactly "
                    f"the query position {query_position}"
                )
        self._query_position = query_position
        self._doc_arity = arity - 1
        self._doc_columns = [f"c{i}" for i in range(self._doc_arity)]
        self._select_list = ", ".join(self._doc_columns)
        self._pool = _ConnectionPool(path, busy_timeout_ms=busy_timeout_ms)
        connection = self._pool.connection()
        unindexed = ", ".join(f"{c} UNINDEXED" for c in self._doc_columns)
        connection.execute("DROP TABLE IF EXISTS docs")
        connection.execute(
            f"CREATE VIRTUAL TABLE docs USING fts5(body, {unindexed})"
        )
        render = text_of if text_of is not None else self._default_text
        placeholders = ", ".join("?" for _ in range(self._doc_arity + 1))
        payload = []
        for document in documents:
            materialized = tuple(document)
            if len(materialized) != self._doc_arity:
                raise InvocationError(
                    f"document {materialized!r} has {len(materialized)} "
                    f"fields, but service {signature.name!r} stores "
                    f"{self._doc_arity} (arity minus the query column)"
                )
            payload.append((render(materialized), *materialized))
        connection.execute("BEGIN IMMEDIATE")
        try:
            connection.executemany(
                f"INSERT INTO docs VALUES ({placeholders})", payload
            )
            connection.execute("COMMIT")
        except BaseException:
            connection.execute("ROLLBACK")
            raise

    @staticmethod
    def _default_text(document: tuple) -> str:
        return " ".join(str(field) for field in document if isinstance(field, str))

    @staticmethod
    def match_query(value: object) -> str:
        """The sanitized FTS5 MATCH expression for one query value."""
        tokens = str(value).split()
        if not tokens:
            return '""'
        return " ".join('"' + token.replace('"', '""') + '"' for token in tokens)

    def close(self) -> None:
        """Release every database connection this service opened."""
        self._pool.close()

    def __len__(self) -> int:
        return self._pool.connection().execute(
            "SELECT COUNT(*) FROM docs"
        ).fetchone()[0]

    def _compute(
        self,
        pattern: AccessPattern,
        inputs: Mapping[int, object],
        page: int,
    ) -> tuple[list[tuple], list[int], bool]:
        chunk = self.profile.chunk_size
        assert chunk is not None  # search profiles are always chunked
        keyword = inputs[self._query_position]
        start = page * chunk
        limit = chunk + 1
        decay = self.profile.decay
        if decay is not None:
            if start >= decay:
                return [], [], False
            limit = min(limit, decay - start)
        fetched = list(
            self._pool.connection().execute(
                f"SELECT {self._select_list} FROM docs WHERE docs MATCH ? "
                "ORDER BY rank, rowid LIMIT ? OFFSET ?",
                (self.match_query(keyword), limit, start),
            )
        )
        position = self._query_position
        selected = [
            (*document[:position], keyword, *document[position:])
            for document in fetched[:chunk]
        ]
        ranks = list(range(start, start + len(selected)))
        return selected, ranks, len(fetched) > chunk


def sqlite_exact_service(
    signature: ServiceSignature,
    profile: ServiceProfile,
    rows: Iterable[Sequence] | None,
    path: Path | str | None = None,
    remote_caching: bool = False,
) -> SQLiteExactService:
    """Convenience constructor for :class:`SQLiteExactService`."""
    return SQLiteExactService(
        signature, profile, rows, path=path, remote_caching=remote_caching
    )


def sqlite_search_service(
    signature: ServiceSignature,
    profile: ServiceProfile,
    rows: Iterable[Sequence] | None,
    score: ScoreFunction | None,
    path: Path | str | None = None,
    remote_caching: bool = False,
) -> SQLiteSearchService:
    """Convenience constructor for :class:`SQLiteSearchService`."""
    return SQLiteSearchService(
        signature, profile, rows, score, path=path,
        remote_caching=remote_caching,
    )
