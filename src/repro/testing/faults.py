"""Deterministic fault injection for registry services.

The lazy/streamed pipeline's core promise is *oracle equivalence*: any
subset of the remote work it chooses to skip must not change the
answers.  That promise is only testable against misbehaving services
if every execution path observes the **same** misbehavior — so the
:class:`FaultSchedule` decides faults as a pure function of
``(seed, service, pattern, inputs, page)``, never of call order or
call count.  The lazy path, the eager streamed path, and the
full-fetch oracle each pull their own subset of pages out of one and
the same faulted world.

Injected fault kinds (applied to one page's
:class:`~repro.services.base.InvocationResult`):

* ``fail`` — the fetch raises :class:`InjectedFault` instead of
  returning a page (a remote error surfacing mid-walk);
* ``truncate`` — the page silently loses its last tuple (short reads);
* ``duplicate`` — the page repeats its last tuple and rank (at-least-
  once delivery);
* ``reorder`` — the page's tuples and ranks are reversed in place
  (out-of-order ranks: within the page the rank sequence regresses,
  which must trip the lazy cursors' monotonicity guard and force the
  full-fetch fallback for the offending block);
* ``delay`` — the page arrives intact but its reported latency is
  multiplied by ``delay_factor`` (a straggling remote — the stimulus
  the resilience layer's hedging responds to).  Data and rank floors
  are untouched, so all differential contracts are unaffected; only
  virtual time changes.

``truncate``/``duplicate``/``reorder``/``delay`` keep the reported
rank floors *sound* (a truncated or reversed page only under-reports
the smallest later rank — never over-reports it), so the differential
contract stays exact: all execution paths must return bit-identical
answers over the faulted world.  ``fail`` is the only fault allowed to
change an outcome, and then only into a clean :class:`InjectedFault` —
never into silently dropped answers.

**Retries and the ``attempt`` dimension.**  The schedule's purity in
``(seed, service, pattern, inputs, page)`` means a failed page would
fail *forever* — correct for cross-path differentials, useless for
testing retry.  :meth:`FaultSchedule.decide` therefore accepts an
``attempt`` index which enters the hash key **only when positive**, so
attempt 0 reproduces the historical decisions bit-for-bit while
re-attempts get fresh independent draws.  :class:`FlakyService` counts
invocations per ``(pattern, inputs, page)`` key (under a lock — retry
and hedge duplicates may race) when constructed with
``attempt_aware=True``; the default remains the pure call-count-free
behavior the oracle-equivalence suites rely on.
"""

from __future__ import annotations

import hashlib
import threading
from collections import Counter
from dataclasses import dataclass, replace
from typing import Mapping

from repro.model.schema import AccessPattern
from repro.services.base import (
    InvocationResult,
    Service,
    TransientServiceError,
)


class InjectedFault(TransientServiceError):
    """Raised in place of a page result by a scheduled page failure."""


#: Order in which the schedule's rate bands are consumed.  ``delay``
#: was appended last so older seeds keep their historical decisions
#: for the original four kinds.
FAULT_KINDS = ("fail", "truncate", "duplicate", "reorder", "delay")


@dataclass(frozen=True)
class FaultSchedule:
    """Seeded, call-order-independent fault decisions.

    Each fetch key is hashed to a uniform draw in ``[0, 1)``; the
    kinds' rate bands are consumed in :data:`FAULT_KINDS` order, so
    the per-kind probabilities are exactly the configured rates (as
    long as they sum to at most 1).
    """

    seed: int
    fail_rate: float = 0.0
    truncate_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    delay_rate: float = 0.0
    #: Multiplier applied to a delayed page's reported latency.
    delay_factor: float = 25.0

    def decide(
        self,
        service: str,
        pattern_code: str,
        inputs: Mapping[int, object],
        page: int,
        attempt: int = 0,
    ) -> str | None:
        """The fault kind for this fetch, or None for a clean page.

        ``attempt`` joins the hash key only when positive: attempt 0
        decisions are identical to the attempt-free historical ones,
        and each re-attempt of the same page draws independently.
        """
        base = (self.seed, service, pattern_code, sorted(inputs.items()), page)
        key = repr(base if attempt == 0 else base + (attempt,))
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        draw = int.from_bytes(digest[:8], "big") / 2.0**64
        for kind, rate in zip(
            FAULT_KINDS,
            (
                self.fail_rate,
                self.truncate_rate,
                self.duplicate_rate,
                self.reorder_rate,
                self.delay_rate,
            ),
        ):
            if draw < rate:
                return kind
            draw -= rate
        return None


class FlakyService:
    """A registry service wrapper that injects page-level faults.

    Everything except :meth:`invoke` delegates to the wrapped service,
    so the wrapper can be registered in a
    :class:`~repro.services.registry.ServiceRegistry` like any other
    service (signature, profiles, latency model, and resets all pass
    through).  ``injected`` counts the faults that actually fired on
    this instance — note that different execution paths pull different
    page subsets, so the counter is per-run evidence that faults were
    exercised, not a cross-path invariant.

    With ``attempt_aware=True`` the wrapper counts invocations per
    ``(pattern, inputs, page)`` key and feeds the count to
    :meth:`FaultSchedule.decide` as the ``attempt`` index, so a page
    that failed once can succeed on retry (each attempt draws
    independently).  The default False keeps decisions a pure function
    of the fetch key — what the cross-path differential suites need.
    """

    def __init__(
        self,
        inner: Service,
        schedule: FaultSchedule,
        attempt_aware: bool = False,
    ) -> None:
        self._inner = inner
        self._schedule = schedule
        self._attempt_aware = attempt_aware
        self._attempts: Counter = Counter()
        self._attempts_lock = threading.Lock()
        self.injected: Counter[str] = Counter()

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    def invoke(
        self,
        pattern: AccessPattern,
        inputs: Mapping[int, object],
        page: int = 0,
    ) -> InvocationResult:
        result = self._inner.invoke(pattern, inputs, page=page)
        attempt = 0
        if self._attempt_aware:
            key = (pattern.code, tuple(sorted(inputs.items())), page)
            with self._attempts_lock:
                attempt = self._attempts[key]
                self._attempts[key] += 1
        kind = self._schedule.decide(
            self._inner.name, pattern.code, inputs, page, attempt=attempt
        )
        if kind is None:
            return result
        self.injected[kind] += 1
        if kind == "fail":
            raise InjectedFault(
                f"injected page failure: {self._inner.name} page {page}"
            )
        if kind == "delay":
            return replace(
                result, latency=result.latency * self._schedule.delay_factor
            )
        if not result.tuples:
            return result  # nothing to corrupt on an empty page
        if kind == "truncate":
            return replace(
                result,
                tuples=result.tuples[:-1],
                ranks=result.ranks[:-1] if result.ranks else (),
            )
        if kind == "duplicate":
            return replace(
                result,
                tuples=result.tuples + (result.tuples[-1],),
                ranks=(
                    result.ranks + (result.ranks[-1],) if result.ranks else ()
                ),
            )
        assert kind == "reorder"
        return replace(
            result,
            tuples=tuple(reversed(result.tuples)),
            ranks=tuple(reversed(result.ranks)) if result.ranks else (),
        )


def wrap_registry_flaky(
    registry, schedule: FaultSchedule, attempt_aware: bool = False
) -> dict:
    """Wrap every service of *registry* in-place; returns the wrappers.

    Reaches into the registry's service table deliberately: the
    wrappers must replace the originals under the same names without
    bumping the registration revision semantics tests rely on.
    """
    wrappers = {}
    for name in registry.names:
        wrapper = FlakyService(
            registry.service(name), schedule, attempt_aware=attempt_aware
        )
        registry._services[name] = wrapper
        wrappers[name] = wrapper
    return wrappers
