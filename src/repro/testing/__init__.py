"""Importable test instrumentation (fault injection, flaky wrappers).

Promoted out of ``tests/`` so benchmarks, the serving suites, and
downstream experiments can inject deterministic faults without path
hacks.
"""

from repro.testing.faults import (
    FAULT_KINDS,
    FaultSchedule,
    FlakyService,
    InjectedFault,
    wrap_registry_flaky,
)

__all__ = [
    "FAULT_KINDS",
    "FaultSchedule",
    "FlakyService",
    "InjectedFault",
    "wrap_registry_flaky",
]
