"""Service signatures, access patterns, and schemas (paper Section 3.1).

Each service ``s`` is equipped with a signature ``s^alpha(A1, ..., An)``
where ``n`` is the arity, each ``Ai`` is an *abstract domain* (a named
type such as ``City`` or ``Date``), and ``alpha`` is a set of feasible
*access patterns*.  An access pattern is a string over ``{'i', 'o'}`` of
length ``n``: position ``k`` is an input argument if the k-th symbol is
``'i'`` and an output argument otherwise.

The module also implements the *cogency* preorder between access
patterns used by the "bound is better" heuristic (Section 4.1.1):
``a1`` is *more cogent* than ``a2`` (written ``a1 ⊑IO a2`` in the
paper) when every field marked input in ``a2`` is also input in ``a1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator


class SchemaError(ValueError):
    """Raised for malformed signatures, patterns, or schema lookups."""


@dataclass(frozen=True, slots=True)
class AccessPattern:
    """An i/o adornment for a service signature.

    >>> p = AccessPattern("iooio")
    >>> p.input_positions
    (0, 3)
    >>> p.output_positions
    (1, 2, 4)
    """

    code: str

    def __post_init__(self) -> None:
        if not self.code:
            raise SchemaError("access pattern must be non-empty")
        bad = set(self.code) - {"i", "o"}
        if bad:
            raise SchemaError(
                f"access pattern may only contain 'i' and 'o', got {self.code!r}"
            )

    @property
    def arity(self) -> int:
        """Number of arguments the pattern adorns."""
        return len(self.code)

    @property
    def input_positions(self) -> tuple[int, ...]:
        """Zero-based positions of input (bound) arguments."""
        return tuple(k for k, c in enumerate(self.code) if c == "i")

    @property
    def output_positions(self) -> tuple[int, ...]:
        """Zero-based positions of output (free) arguments."""
        return tuple(k for k, c in enumerate(self.code) if c == "o")

    def is_input(self, position: int) -> bool:
        """True if *position* is an input argument under this pattern."""
        return self.code[position] == "i"

    def is_more_cogent_than(self, other: "AccessPattern") -> bool:
        """The ⊑IO relation: every input of *other* is an input of self.

        Note this is reflexive: a pattern is more cogent than itself.
        """
        if self.arity != other.arity:
            raise SchemaError(
                f"cannot compare patterns of different arity: {self.code} vs {other.code}"
            )
        return all(self.code[k] == "i" for k in other.input_positions)

    def is_strictly_more_cogent_than(self, other: "AccessPattern") -> bool:
        """The ≺IO relation: ⊑IO holds one way but not the other."""
        return self.is_more_cogent_than(other) and not other.is_more_cogent_than(self)

    def __str__(self) -> str:
        return self.code


@dataclass(frozen=True)
class ServiceSignature:
    """The interface of a service: name, abstract domains, patterns.

    ``domains[k]`` names the abstract domain of the k-th argument; the
    paper uses these to detect "off-query" services that can seed input
    fields of the same domain (Section 7).
    """

    name: str
    domains: tuple[str, ...]
    patterns: tuple[AccessPattern, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("service name must be non-empty")
        if not self.patterns:
            raise SchemaError(f"service {self.name!r} must have at least one pattern")
        for pattern in self.patterns:
            if pattern.arity != self.arity:
                raise SchemaError(
                    f"pattern {pattern.code!r} has arity {pattern.arity}, "
                    f"but service {self.name!r} has arity {self.arity}"
                )
        if len(set(p.code for p in self.patterns)) != len(self.patterns):
            raise SchemaError(f"duplicate access patterns for service {self.name!r}")

    @property
    def arity(self) -> int:
        """Number of arguments of the service."""
        return len(self.domains)

    def pattern(self, code: str) -> AccessPattern:
        """Return the feasible pattern with the given code.

        Raises :class:`SchemaError` if the pattern is not feasible for
        this service.
        """
        for candidate in self.patterns:
            if candidate.code == code:
                return candidate
        raise SchemaError(f"service {self.name!r} has no access pattern {code!r}")

    def most_cogent_patterns(self) -> tuple[AccessPattern, ...]:
        """Feasible patterns that are maximal under the cogency order."""
        result = []
        for candidate in self.patterns:
            dominated = any(
                other.is_strictly_more_cogent_than(candidate)
                for other in self.patterns
            )
            if not dominated:
                result.append(candidate)
        return tuple(result)

    def domain_of(self, position: int) -> str:
        """Abstract domain name of the argument at *position*."""
        return self.domains[position]

    def describe(self) -> str:
        """Human-readable rendering, e.g. ``conf{ioooo,ooooi}(Topic, ...)``."""
        codes = ",".join(p.code for p in self.patterns)
        args = ", ".join(self.domains)
        return f"{self.name}{{{codes}}}({args})"


def signature(
    name: str,
    domains: Iterable[str],
    patterns: Iterable[str],
) -> ServiceSignature:
    """Convenience constructor from plain strings.

    >>> sig = signature("conf", ["Topic", "Name", "Start", "End", "City"],
    ...                 ["ioooo", "ooooi"])
    >>> sig.arity
    5
    """
    return ServiceSignature(
        name=name,
        domains=tuple(domains),
        patterns=tuple(AccessPattern(code) for code in patterns),
    )


@dataclass
class Schema:
    """A set of service signatures, indexed by service name."""

    _signatures: dict[str, ServiceSignature] = field(default_factory=dict)

    def add(self, sig: ServiceSignature) -> None:
        """Register a signature; names must be unique."""
        if sig.name in self._signatures:
            raise SchemaError(f"duplicate service {sig.name!r} in schema")
        self._signatures[sig.name] = sig

    def get(self, name: str) -> ServiceSignature:
        """Look up the signature of service *name*."""
        try:
            return self._signatures[name]
        except KeyError:
            raise SchemaError(f"unknown service {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._signatures

    def __iter__(self) -> Iterator[ServiceSignature]:
        return iter(self._signatures.values())

    def __len__(self) -> int:
        return len(self._signatures)

    @property
    def names(self) -> tuple[str, ...]:
        """Names of all registered services, in insertion order."""
        return tuple(self._signatures)

    def services_outputting_domain(self, domain: str) -> tuple[ServiceSignature, ...]:
        """Signatures having *domain* in an output position of some pattern.

        Used by off-query expansion (Section 7) to find services whose
        outputs can seed input fields of the same abstract domain.
        """
        found = []
        for sig in self:
            for pattern in sig.patterns:
                if any(sig.domains[k] == domain for k in pattern.output_positions):
                    found.append(sig)
                    break
        return tuple(found)


def schema_of(signatures: Iterable[ServiceSignature]) -> Schema:
    """Build a :class:`Schema` from an iterable of signatures."""
    result = Schema()
    for sig in signatures:
        result.add(sig)
    return result
