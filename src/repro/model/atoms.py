"""Atoms: service invocations inside conjunctive queries (Section 3.1).

An atom for a schema ``S`` is an expression ``s(t1, ..., tn)`` where
``s`` names a service with a signature of arity ``n`` in ``S`` and each
``ti`` is a term (variable or constant).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.schema import AccessPattern, Schema, SchemaError, ServiceSignature
from repro.model.terms import Constant, Term, Variable


@dataclass(frozen=True)
class Atom:
    """A service atom ``service(terms...)``.

    Atoms are immutable; the same service may occur several times in a
    query body, so plan-level code identifies atoms by their *position*
    in the body (see :class:`repro.model.query.ConjunctiveQuery`).
    """

    service: str
    terms: tuple[Term, ...]

    def __post_init__(self) -> None:
        for term in self.terms:
            if not isinstance(term, (Variable, Constant)):
                raise TypeError(f"atom argument is not a term: {term!r}")

    @property
    def arity(self) -> int:
        """Number of arguments."""
        return len(self.terms)

    @property
    def variables(self) -> tuple[Variable, ...]:
        """Variables in argument order (with duplicates)."""
        return tuple(t for t in self.terms if isinstance(t, Variable))

    @property
    def variable_set(self) -> frozenset[Variable]:
        """The set of distinct variables of the atom."""
        return frozenset(self.variables)

    @property
    def constants(self) -> tuple[Constant, ...]:
        """Constants in argument order (with duplicates)."""
        return tuple(t for t in self.terms if isinstance(t, Constant))

    def term_at(self, position: int) -> Term:
        """The term at a zero-based argument *position*."""
        return self.terms[position]

    def positions_of(self, variable: Variable) -> tuple[int, ...]:
        """All argument positions where *variable* occurs."""
        return tuple(k for k, t in enumerate(self.terms) if t == variable)

    def input_terms(self, pattern: AccessPattern) -> tuple[Term, ...]:
        """Terms at the input positions of *pattern*."""
        self._check_pattern(pattern)
        return tuple(self.terms[k] for k in pattern.input_positions)

    def output_terms(self, pattern: AccessPattern) -> tuple[Term, ...]:
        """Terms at the output positions of *pattern*."""
        self._check_pattern(pattern)
        return tuple(self.terms[k] for k in pattern.output_positions)

    def input_variables(self, pattern: AccessPattern) -> frozenset[Variable]:
        """Distinct variables at input positions of *pattern*."""
        return frozenset(
            t for t in self.input_terms(pattern) if isinstance(t, Variable)
        )

    def output_variables(self, pattern: AccessPattern) -> frozenset[Variable]:
        """Distinct variables at output positions of *pattern*."""
        return frozenset(
            t for t in self.output_terms(pattern) if isinstance(t, Variable)
        )

    def is_callable_given(
        self, pattern: AccessPattern, bound: frozenset[Variable]
    ) -> bool:
        """Definition 3.1 test for one atom.

        The atom is callable when each input field is filled with a
        constant or with a variable already bound (i.e. occurring in an
        output field of a previously callable atom, or in the user
        input).
        """
        self._check_pattern(pattern)
        for position in pattern.input_positions:
            term = self.terms[position]
            if isinstance(term, Constant):
                continue
            if term not in bound:
                return False
        return True

    def validate_against(self, schema: Schema) -> ServiceSignature:
        """Check arity against *schema* and return the signature."""
        sig = schema.get(self.service)
        if sig.arity != self.arity:
            raise SchemaError(
                f"atom {self} has arity {self.arity}, "
                f"but service {self.service!r} has arity {sig.arity}"
            )
        return sig

    def _check_pattern(self, pattern: AccessPattern) -> None:
        if pattern.arity != self.arity:
            raise SchemaError(
                f"pattern {pattern.code!r} does not fit atom {self} "
                f"of arity {self.arity}"
            )

    def __str__(self) -> str:
        args = ", ".join(str(t) for t in self.terms)
        return f"{self.service}({args})"


def atom(service: str, *args: object) -> Atom:
    """Convenience constructor: uppercase strings become variables.

    >>> a = atom("conf", "db", "Name", "Start", "End", "City")
    >>> str(a)
    "conf('db', Name, Start, End, City)"
    """
    from repro.model.terms import term_from_literal

    return Atom(service=service, terms=tuple(term_from_literal(a) for a in args))
