"""Conjunctive queries over Web services (Section 3.1).

A conjunctive query (CQ) of arity ``n`` over a schema ``S`` is written

    q(X) <- conj(X, Y)

where the body is a conjunction of atoms for ``S`` plus comparison
predicates.  Queries must be *safe*: each head variable appears in at
least one body atom.  A CQ whose atoms span different services is a
*multi-domain query*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model.atoms import Atom
from repro.model.predicates import Comparison
from repro.model.schema import Schema
from repro.model.terms import Variable


class QueryError(ValueError):
    """Raised for malformed (e.g. unsafe) queries."""


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A safe conjunctive query with selection predicates.

    Attributes
    ----------
    name:
        Name of the head predicate (``q`` in the paper).
    head:
        Head variables, defining the output tuple shape.
    atoms:
        Body atoms, i.e. service invocations.  Atoms are identified by
        their index in this tuple (the same service can occur twice).
    predicates:
        Comparison predicates of the body (selections and arithmetic
        filters such as ``FPrice + HPrice < 2000``).
    """

    name: str
    head: tuple[Variable, ...]
    atoms: tuple[Atom, ...]
    predicates: tuple[Comparison, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.atoms:
            raise QueryError("query body must contain at least one atom")
        body_variables = self.body_variables
        for variable in self.head:
            if variable not in body_variables:
                raise QueryError(
                    f"unsafe query: head variable {variable} not in any body atom"
                )
        for predicate in self.predicates:
            if not predicate.variables <= body_variables:
                missing = predicate.variables - body_variables
                raise QueryError(
                    f"unsafe query: predicate {predicate} uses variables "
                    f"{sorted(v.name for v in missing)} not in any body atom"
                )

    @property
    def arity(self) -> int:
        """Arity of the head."""
        return len(self.head)

    @property
    def body_variables(self) -> frozenset[Variable]:
        """All variables occurring in body atoms."""
        result: set[Variable] = set()
        for body_atom in self.atoms:
            result.update(body_atom.variables)
        return frozenset(result)

    @property
    def services(self) -> tuple[str, ...]:
        """Service names used in the body, in atom order (with repeats)."""
        return tuple(a.service for a in self.atoms)

    @property
    def is_multi_domain(self) -> bool:
        """True when the body spans at least two distinct services."""
        return len(set(self.services)) > 1

    def atom_index(self, body_atom: Atom) -> int:
        """Index of *body_atom* in the body (first occurrence)."""
        return self.atoms.index(body_atom)

    def atoms_with_variable(self, variable: Variable) -> tuple[int, ...]:
        """Indices of body atoms mentioning *variable*."""
        return tuple(
            k for k, body_atom in enumerate(self.atoms)
            if variable in body_atom.variable_set
        )

    def join_variables(self) -> frozenset[Variable]:
        """Variables shared by at least two body atoms (equi-join vars)."""
        seen: set[Variable] = set()
        shared: set[Variable] = set()
        for body_atom in self.atoms:
            for variable in body_atom.variable_set:
                if variable in seen:
                    shared.add(variable)
                else:
                    seen.add(variable)
        return frozenset(shared)

    def predicates_on(self, variables: frozenset[Variable]) -> tuple[Comparison, ...]:
        """Predicates evaluable once *variables* are all bound."""
        return tuple(p for p in self.predicates if p.variables <= variables)

    def validate_against(self, schema: Schema) -> None:
        """Check every atom against *schema* (service known, arity ok)."""
        for body_atom in self.atoms:
            body_atom.validate_against(schema)

    def __str__(self) -> str:
        head_args = ", ".join(v.name for v in self.head)
        body_parts = [str(a) for a in self.atoms] + [str(p) for p in self.predicates]
        return f"{self.name}({head_args}) :- " + ", ".join(body_parts)


def query(
    name: str,
    head: tuple[Variable, ...] | list[Variable],
    atoms: tuple[Atom, ...] | list[Atom],
    predicates: tuple[Comparison, ...] | list[Comparison] = (),
) -> ConjunctiveQuery:
    """Convenience constructor accepting lists."""
    return ConjunctiveQuery(
        name=name,
        head=tuple(head),
        atoms=tuple(atoms),
        predicates=tuple(predicates),
    )
