"""Terms of the query language: variables and constants.

The paper (Section 3.1) denotes variables by uppercase letters and
constants by lowercase identifiers, numbers, or quoted strings.
Variables and constants are collectively called *terms*.  Terms are
immutable value objects so they can be used as dictionary keys and in
frozen sets throughout the optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, slots=True)
class Variable:
    """A query variable, written with an initial uppercase letter."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")
        if not (self.name[0].isupper() or self.name[0] == "_"):
            raise ValueError(
                f"variable name must start with an uppercase letter or '_': {self.name!r}"
            )

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


@dataclass(frozen=True, slots=True)
class Constant:
    """A constant value (string, number, date-as-string, ...)."""

    value: object

    def __post_init__(self) -> None:
        # Constants must be hashable: they are used in cache keys and
        # in frozen bindings.
        hash(self.value)

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"


Term = Union[Variable, Constant]


def is_variable(term: object) -> bool:
    """Return True if *term* is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: object) -> bool:
    """Return True if *term* is a :class:`Constant`."""
    return isinstance(term, Constant)


def term_from_literal(value: object) -> Term:
    """Build a term from a plain Python value or an uppercase name.

    Strings that look like variable names (initial uppercase letter,
    alphanumeric) become :class:`Variable`; everything else becomes a
    :class:`Constant`.  Quoted strings should be unquoted by the caller
    (the datalog parser does this) and passed as ``Constant``.
    """
    if isinstance(value, Variable) or isinstance(value, Constant):
        return value
    if isinstance(value, str) and value and value[0].isupper() and value.isidentifier():
        return Variable(value)
    return Constant(value)


def variables_of(terms: tuple[Term, ...]) -> tuple[Variable, ...]:
    """Return the variables occurring in *terms*, in order, with duplicates."""
    return tuple(t for t in terms if isinstance(t, Variable))


def constants_of(terms: tuple[Term, ...]) -> tuple[Constant, ...]:
    """Return the constants occurring in *terms*, in order, with duplicates."""
    return tuple(t for t in terms if isinstance(t, Constant))
