"""Selection and comparison predicates of conjunctive queries.

The running example (Figure 3) uses predicates such as::

    Start >= '2007/3/14'
    Temperature >= 28
    FPrice + HPrice < 2000

We support comparisons between *linear expressions* over terms:
an expression is a term, or a sum/difference/product of expressions.
Each predicate can evaluate itself against a binding of variables to
values and can report its estimated *selectivity* (used by the cost
model, Section 3.4: "The selection predicates applied to all service
invocations are included for convenience in the notion of erspi").
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Mapping, Union

from repro.model.terms import Constant, Term, Variable


class PredicateError(ValueError):
    """Raised on malformed predicates or evaluation of unbound variables."""


#: Default selectivity assumed for predicates when no estimate is given.
#: Mirrors the classical System-R style defaults for range predicates.
DEFAULT_SELECTIVITY: dict[str, float] = {
    "==": 0.1,
    "!=": 0.9,
    "<": 1.0 / 3.0,
    "<=": 1.0 / 3.0,
    ">": 1.0 / 3.0,
    ">=": 1.0 / 3.0,
}

_OPERATORS: dict[str, Callable[[object, object], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_ARITH: dict[str, Callable[[object, object], object]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
}


@dataclass(frozen=True)
class BinaryExpression:
    """An arithmetic combination of two sub-expressions."""

    op: str
    left: "Expression"
    right: "Expression"

    def __post_init__(self) -> None:
        if self.op not in _ARITH:
            raise PredicateError(f"unknown arithmetic operator {self.op!r}")

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


Expression = Union[Term, BinaryExpression]


def expression_variables(expr: Expression) -> frozenset[Variable]:
    """All variables occurring in *expr*."""
    if isinstance(expr, Variable):
        return frozenset({expr})
    if isinstance(expr, Constant):
        return frozenset()
    return expression_variables(expr.left) | expression_variables(expr.right)


def evaluate_expression(expr: Expression, binding: Mapping[Variable, object]) -> object:
    """Evaluate *expr* under *binding*; raise if a variable is unbound."""
    if isinstance(expr, Constant):
        return expr.value
    if isinstance(expr, Variable):
        if expr not in binding:
            raise PredicateError(f"unbound variable {expr} in predicate expression")
        return binding[expr]
    left = evaluate_expression(expr.left, binding)
    right = evaluate_expression(expr.right, binding)
    return _ARITH[expr.op](left, right)


@dataclass(frozen=True)
class Comparison:
    """A comparison predicate ``left op right`` over expressions."""

    left: Expression
    op: str
    right: Expression
    selectivity: float | None = None

    def __post_init__(self) -> None:
        if self.op not in _OPERATORS:
            raise PredicateError(f"unknown comparison operator {self.op!r}")
        if self.selectivity is not None and not 0.0 <= self.selectivity <= 1.0:
            raise PredicateError(
                f"selectivity must be in [0, 1], got {self.selectivity}"
            )

    @property
    def variables(self) -> frozenset[Variable]:
        """All variables mentioned by the predicate."""
        return expression_variables(self.left) | expression_variables(self.right)

    def estimated_selectivity(self) -> float:
        """Explicit selectivity if given, else the default for the operator."""
        if self.selectivity is not None:
            return self.selectivity
        return DEFAULT_SELECTIVITY[self.op]

    def is_evaluable(self, bound: frozenset[Variable]) -> bool:
        """True when every variable of the predicate is in *bound*."""
        return self.variables <= bound

    def holds(self, binding: Mapping[Variable, object]) -> bool:
        """Evaluate the predicate under *binding*."""
        left = evaluate_expression(self.left, binding)
        right = evaluate_expression(self.right, binding)
        try:
            return bool(_OPERATORS[self.op](left, right))
        except TypeError as exc:
            raise PredicateError(
                f"cannot compare {left!r} {self.op} {right!r}: {exc}"
            ) from exc

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


def comparison(
    left: object, op: str, right: object, selectivity: float | None = None
) -> Comparison:
    """Convenience constructor turning plain values into terms.

    >>> c = comparison("Temperature", ">=", 28)
    >>> str(c)
    'Temperature >= 28'
    """
    from repro.model.terms import term_from_literal

    def as_expression(value: object) -> Expression:
        if isinstance(value, BinaryExpression):
            return value
        return term_from_literal(value)

    return Comparison(
        left=as_expression(left),
        op=op,
        right=as_expression(right),
        selectivity=selectivity,
    )


def add(left: object, right: object) -> BinaryExpression:
    """Build ``left + right`` as an expression."""
    from repro.model.terms import term_from_literal

    def as_expression(value: object) -> Expression:
        if isinstance(value, BinaryExpression):
            return value
        return term_from_literal(value)

    return BinaryExpression(op="+", left=as_expression(left), right=as_expression(right))


def combined_selectivity(predicates: tuple[Comparison, ...]) -> float:
    """Product of the selectivities, assuming predicate independence.

    The paper assumes "domain uniformity and independence" (Section
    2.2), so the joint selectivity of several predicates is the product
    of individual selectivities.
    """
    result = 1.0
    for predicate in predicates:
        result *= predicate.estimated_selectivity()
    return result
