"""Query and service model: terms, atoms, schemas, queries, parser."""

from repro.model.atoms import Atom, atom
from repro.model.parser import ParseError, parse_query
from repro.model.predicates import (
    BinaryExpression,
    Comparison,
    PredicateError,
    add,
    combined_selectivity,
    comparison,
)
from repro.model.query import ConjunctiveQuery, QueryError, query
from repro.model.template import (
    Parameter,
    QueryTemplate,
    TemplateError,
    parameter,
)
from repro.model.schema import (
    AccessPattern,
    Schema,
    SchemaError,
    ServiceSignature,
    schema_of,
    signature,
)
from repro.model.terms import Constant, Term, Variable, term_from_literal

__all__ = [
    "AccessPattern",
    "Atom",
    "BinaryExpression",
    "Comparison",
    "ConjunctiveQuery",
    "Constant",
    "Parameter",
    "ParseError",
    "PredicateError",
    "QueryError",
    "QueryTemplate",
    "Schema",
    "SchemaError",
    "ServiceSignature",
    "TemplateError",
    "Term",
    "Variable",
    "add",
    "atom",
    "combined_selectivity",
    "comparison",
    "parameter",
    "parse_query",
    "query",
    "schema_of",
    "signature",
    "term_from_literal",
]
