"""Query templates (Section 2.2).

"Constant values appearing in a query are either presented by the user
through a form or set within a query template; optimization is
performed for each query template under suitable assumptions of domain
uniformity and independence."

A :class:`QueryTemplate` is a conjunctive query whose constants may be
*parameters* — named placeholders filled in at submission time.  The
optimizer's decisions (a :class:`~repro.plans.spec.PlanSpec`) are
computed once per template and reused across instantiations, which is
exactly the deployment mode the paper assumes: the same plan answers
"DB conferences from Milano" and "AI conferences from Roma".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.model.atoms import Atom
from repro.model.predicates import BinaryExpression, Comparison, Expression
from repro.model.query import ConjunctiveQuery
from repro.model.terms import Constant, Term


class TemplateError(ValueError):
    """Raised for missing or unknown template parameters."""


@dataclass(frozen=True)
class Parameter:
    """A named placeholder for a constant value.

    Parameters are hashable, so a ``Constant(Parameter("topic"))`` is a
    legal term; instantiation replaces it with the supplied value.
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise TemplateError("parameter name must be non-empty")

    def __str__(self) -> str:
        return f"${self.name}"


def parameter(name: str) -> Constant:
    """A constant term standing for the template parameter *name*."""
    return Constant(Parameter(name))


@dataclass(frozen=True)
class QueryTemplate:
    """A query with named parameters in constant positions."""

    query: ConjunctiveQuery

    @property
    def parameters(self) -> tuple[str, ...]:
        """Names of all parameters, sorted."""
        names: set[str] = set()
        for atom in self.query.atoms:
            for term in atom.terms:
                if isinstance(term, Constant) and isinstance(term.value, Parameter):
                    names.add(term.value.name)
        for predicate in self.query.predicates:
            for expr in (predicate.left, predicate.right):
                names.update(_expression_parameters(expr))
        return tuple(sorted(names))

    def instantiate(self, values: Mapping[str, object]) -> ConjunctiveQuery:
        """Fill every parameter with the given value.

        Raises :class:`TemplateError` on missing or unknown names.
        """
        expected = set(self.parameters)
        given = set(values)
        if expected - given:
            raise TemplateError(
                f"missing parameter values: {sorted(expected - given)}"
            )
        if given - expected:
            raise TemplateError(
                f"unknown parameters supplied: {sorted(given - expected)}"
            )
        atoms = tuple(
            Atom(
                atom.service,
                tuple(_substitute_term(term, values) for term in atom.terms),
            )
            for atom in self.query.atoms
        )
        predicates = tuple(
            Comparison(
                left=_substitute_expression(p.left, values),
                op=p.op,
                right=_substitute_expression(p.right, values),
                selectivity=p.selectivity,
            )
            for p in self.query.predicates
        )
        return ConjunctiveQuery(
            name=self.query.name,
            head=self.query.head,
            atoms=atoms,
            predicates=predicates,
        )

    def __str__(self) -> str:
        return str(self.query)


def _expression_parameters(expr: Expression) -> set[str]:
    if isinstance(expr, Constant) and isinstance(expr.value, Parameter):
        return {expr.value.name}
    if isinstance(expr, BinaryExpression):
        return _expression_parameters(expr.left) | _expression_parameters(
            expr.right
        )
    return set()


def _substitute_term(term: Term, values: Mapping[str, object]) -> Term:
    if isinstance(term, Constant) and isinstance(term.value, Parameter):
        return Constant(values[term.value.name])
    return term


def _substitute_expression(
    expr: Expression, values: Mapping[str, object]
) -> Expression:
    if isinstance(expr, BinaryExpression):
        return BinaryExpression(
            op=expr.op,
            left=_substitute_expression(expr.left, values),
            right=_substitute_expression(expr.right, values),
        )
    if isinstance(expr, Constant):
        return _substitute_term(expr, values)  # type: ignore[return-value]
    return expr
