"""A small parser for the datalog-like query notation of the paper.

Accepts queries written as in Figure 3::

    q(Conf, City, HPrice) :-
        flight('Milano', City, Start, End, STime, ETime, FPrice),
        hotel(Hotel, City, 'luxury', Start, End, HPrice),
        conf('DB', Conf, Start, End, City),
        weather(City, Temperature, Start),
        Temperature >= 28, FPrice + HPrice < 2000.

Conventions:

* identifiers starting with an uppercase letter are variables;
* quoted strings and numbers are constants;
* bare lowercase identifiers appearing as arguments are string
  constants (datalog convention);
* body items are atoms ``name(arg, ...)`` or comparisons between
  arithmetic expressions over terms (``+``, ``-``, ``*``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.model.atoms import Atom
from repro.model.predicates import BinaryExpression, Comparison, Expression
from repro.model.query import ConjunctiveQuery
from repro.model.terms import Constant, Term, Variable


class ParseError(ValueError):
    """Raised when the query text does not conform to the grammar."""


_TOKEN_SPEC = [
    ("WS", r"[ \t\r\n]+"),
    ("IMPLIES", r":-|<-"),
    ("NUMBER", r"\d+\.\d+|\d+"),
    ("STRING", r"'(?:[^'\\]|\\.)*'|\"(?:[^\"\\]|\\.)*\""),
    ("COMPARE", r"==|!=|>=|<=|>|<|="),
    ("ARITH", r"[+\-*]"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("DOT", r"\."),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_]*"),
]

_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r} at {position}")
        kind = match.lastgroup or ""
        if kind != "WS":
            tokens.append(_Token(kind=kind, text=match.group(), position=position))
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[_Token], text: str) -> None:
        self._tokens = tokens
        self._text = text
        self._index = 0

    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of query text")
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind} at position {token.position}, got {token.text!r}"
            )
        return token

    def parse_query(self) -> ConjunctiveQuery:
        """Parse ``head :- body.`` and build the query object."""
        name, head_terms = self._parse_atom_shape()
        head: list[Variable] = []
        for term in head_terms:
            if not isinstance(term, Variable):
                raise ParseError(f"head arguments must be variables, got {term}")
            head.append(term)
        self._expect("IMPLIES")
        atoms: list[Atom] = []
        predicates: list[Comparison] = []
        while True:
            item = self._parse_body_item()
            if isinstance(item, Atom):
                atoms.append(item)
            else:
                predicates.append(item)
            token = self._peek()
            if token is None:
                break
            if token.kind == "COMMA":
                self._next()
                continue
            if token.kind == "DOT":
                self._next()
                break
            raise ParseError(
                f"expected ',' or '.' at position {token.position}, got {token.text!r}"
            )
        trailing = self._peek()
        if trailing is not None:
            raise ParseError(
                f"trailing input at position {trailing.position}: {trailing.text!r}"
            )
        return ConjunctiveQuery(
            name=name,
            head=tuple(head),
            atoms=tuple(atoms),
            predicates=tuple(predicates),
        )

    def _parse_atom_shape(self) -> tuple[str, tuple[Term, ...]]:
        name = self._expect("IDENT").text
        self._expect("LPAREN")
        terms: list[Term] = []
        if self._peek() is not None and self._peek().kind != "RPAREN":  # type: ignore[union-attr]
            terms.append(self._parse_term())
            while self._peek() is not None and self._peek().kind == "COMMA":  # type: ignore[union-attr]
                self._next()
                terms.append(self._parse_term())
        self._expect("RPAREN")
        return name, tuple(terms)

    def _parse_body_item(self) -> Atom | Comparison:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of body")
        if token.kind == "IDENT" and self._lookahead_is_lparen():
            name, terms = self._parse_atom_shape()
            return Atom(service=name, terms=terms)
        return self._parse_comparison()

    def _lookahead_is_lparen(self) -> bool:
        if self._index + 1 < len(self._tokens):
            return self._tokens[self._index + 1].kind == "LPAREN"
        return False

    def _parse_comparison(self) -> Comparison:
        left = self._parse_expression()
        op_token = self._expect("COMPARE")
        op = "==" if op_token.text == "=" else op_token.text
        right = self._parse_expression()
        return Comparison(left=left, op=op, right=right)

    def _parse_expression(self) -> Expression:
        expr = self._parse_primary()
        while self._peek() is not None and self._peek().kind == "ARITH":  # type: ignore[union-attr]
            op = self._next().text
            right = self._parse_primary()
            expr = BinaryExpression(op=op, left=expr, right=right)
        return expr

    def _parse_primary(self) -> Expression:
        token = self._next()
        if token.kind == "NUMBER":
            if "." in token.text:
                return Constant(float(token.text))
            return Constant(int(token.text))
        if token.kind == "STRING":
            return Constant(_unquote(token.text))
        if token.kind == "IDENT":
            return _term_from_ident(token.text)
        if token.kind == "LPAREN":
            expr = self._parse_expression()
            self._expect("RPAREN")
            return expr
        raise ParseError(
            f"expected a term at position {token.position}, got {token.text!r}"
        )

    def _parse_term(self) -> Term:
        token = self._next()
        if token.kind == "NUMBER":
            if "." in token.text:
                return Constant(float(token.text))
            return Constant(int(token.text))
        if token.kind == "STRING":
            return Constant(_unquote(token.text))
        if token.kind == "IDENT":
            return _term_from_ident(token.text)
        raise ParseError(
            f"expected a term at position {token.position}, got {token.text!r}"
        )


def _unquote(text: str) -> str:
    body = text[1:-1]
    return body.replace("\\'", "'").replace('\\"', '"').replace("\\\\", "\\")


def _term_from_ident(name: str) -> Term:
    if name[0].isupper() or name[0] == "_":
        return Variable(name)
    return Constant(name)


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse a datalog-style query string into a :class:`ConjunctiveQuery`.

    >>> q = parse_query("q(X) :- s(X, 'a'), X >= 10.")
    >>> q.arity
    1
    """
    tokens = _tokenize(text)
    return _Parser(tokens, text).parse_query()
