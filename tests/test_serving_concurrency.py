"""Threaded stress suites for the serving layer (``-m concurrency``).

Tier-1 stays serial; these suites hammer the locks under real threads
and pin the two concurrency contracts of the serving layer:

* **bit-identity** — answers are a pure function of (registry
  content, query, k); logical caches change call counts, never
  tuples.  Any threaded interleaving must therefore produce, request
  by request, exactly the responses a sequential replay of the same
  per-thread request streams produces.
* **sequential accounting** — plan resolution is single-flight per
  key, so optimizer runs and plan-cache hit/miss/store counts match
  the sequential replay under any schedule (no double-optimizes, no
  double-counted stores).

Every schedule knob is seeded; the only nondeterminism left is the
OS thread scheduler, which these contracts are quantified over.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.serving import PlanCache, QueryService, SessionManager
from repro.sources.news import market_moving_news_query, news_registry
from repro.sources.weekend import mahler_weekend_query, weekend_registry

pytestmark = pytest.mark.concurrency

_TOPICS = ("merger", "earnings", "recall", "lawsuit")
_SECTORS = ("tech", "energy", "retail")


def _answer_signature(response):
    return (
        response.columns,
        response.rows,
        response.rank_keys,
        tuple(
            tuple(rank for _, rank in row_ranks) for row_ranks in response.ranks
        ),
        response.complete,
    )


def _run_workers(count, work):
    """Run ``work(thread_index)`` on *count* barrier-started threads."""
    barrier = threading.Barrier(count)
    errors = []

    def runner(index):
        try:
            barrier.wait()
            work(index)
        except BaseException as error:  # pragma: no cover - fail loudly
            errors.append(error)

    threads = [
        threading.Thread(target=runner, args=(index,), name=f"stress-{index}")
        for index in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


def _service(registry_builder, **kwargs):
    kwargs.setdefault("k_default", 3)
    kwargs.setdefault(
        "sessions", SessionManager(capacity=10_000, ttl=None)
    )
    return QueryService(registry=registry_builder(), **kwargs)


class TestSingleFlight:
    """ISSUE satellite: concurrent misses must optimize exactly once."""

    def test_one_optimize_per_key_per_race(self):
        service = _service(news_registry)
        query = market_moving_news_query()
        workers = 8
        responses = [None] * workers

        def work(index):
            responses[index] = service.submit(query, k=3)

        _run_workers(workers, work)
        # Exactly one thread ran the optimizer and stored; the other
        # seven waited on the key lock and then hit the memory tier.
        assert service.stats.optimizer_runs == 1
        assert service.plan_cache.stats.misses == 1
        assert service.plan_cache.stats.stores == 1
        assert service.plan_cache.stats.memory_hits == workers - 1
        assert sum(r.provenance == "optimized" for r in responses) == 1
        assert len({_answer_signature(r) for r in responses}) == 1

    def test_repeated_races_never_double_count(self):
        # Re-race a fresh key (new k) several times: counts must stay
        # exactly one optimize/store/miss per distinct key.
        service = _service(news_registry)
        query = market_moving_news_query()
        for round_index, k in enumerate((1, 2, 4, 5), start=1):
            _run_workers(6, lambda _i, k=k: service.submit(query, k=k))
            assert service.stats.optimizer_runs == round_index
            assert service.plan_cache.stats.misses == round_index
            assert service.plan_cache.stats.stores == round_index

    def test_distinct_keys_resolve_independently(self):
        service = _service(news_registry)

        def work(index):
            query = market_moving_news_query(_TOPICS[index % 4], "tech")
            service.submit(query, k=3)

        _run_workers(8, work)
        assert service.stats.optimizer_runs == 4
        assert service.plan_cache.stats.misses == 4
        assert service.plan_cache.stats.memory_hits == 4


class TestThreadedReplayBitIdentity:
    """N threads replaying seeded streams == sequential replay."""

    WORKERS = 8
    REQUESTS_PER_WORKER = 12

    def _streams(self):
        rng = random.Random(20080808)
        population = [
            (market_moving_news_query(topic, sector), k)
            for topic in _TOPICS
            for sector in _SECTORS
            for k in (2, 4)
        ]
        return [
            [rng.choice(population) for _ in range(self.REQUESTS_PER_WORKER)]
            for _ in range(self.WORKERS)
        ]

    def test_threaded_submits_match_sequential_replay(self):
        streams = self._streams()
        # Sequential oracle: same per-thread streams, one after another.
        sequential = _service(news_registry)
        expected = [
            [_answer_signature(sequential.submit(query, k=k))
             for query, k in stream]
            for stream in streams
        ]
        shared = _service(news_registry)
        got = [[None] * len(stream) for stream in streams]

        def work(index):
            for position, (query, k) in enumerate(streams[index]):
                got[index][position] = _answer_signature(
                    shared.submit(query, k=k)
                )

        _run_workers(self.WORKERS, work)
        assert got == expected
        # Accounting matches the sequential schedule exactly.
        total = self.WORKERS * self.REQUESTS_PER_WORKER
        assert shared.plan_cache.stats.lookups == total
        assert (shared.plan_cache.stats.misses
                == sequential.plan_cache.stats.misses)
        assert shared.stats.optimizer_runs == sequential.stats.optimizer_runs
        assert shared.stats.requests == total
        assert shared.sessions.stats.created == total


class TestSessionInterleavings:
    """Seeded submit/ask_for_more/release/prefetch interleavings."""

    WORKERS = 6
    OPS_PER_WORKER = 16

    def _op_streams(self):
        streams = []
        for worker in range(self.WORKERS):
            rng = random.Random(1000 + worker)
            ops = []
            live = 0  # this worker's live-session count, simulated
            for _ in range(self.OPS_PER_WORKER):
                choices = ["submit", "prefetch"]
                if live:
                    choices += ["more", "more", "release"]
                op = rng.choice(choices)
                if op == "submit":
                    ops.append(
                        ("submit",
                         (rng.choice(_TOPICS), rng.choice(_SECTORS)),
                         rng.randint(1, 4))
                    )
                    live += 1
                elif op == "prefetch":
                    ops.append(
                        ("prefetch",
                         (rng.choice(_TOPICS), rng.choice(_SECTORS)),
                         rng.randint(1, 4))
                    )
                elif op == "more":
                    ops.append(("more", None, rng.randint(1, 3)))
                else:
                    ops.append(("release", None, None))
                    live -= 1
            streams.append(ops)
        return streams

    def _replay(self, service, ops):
        """Run one worker's op stream; returns one signature per op.

        Sessions are worker-local (each worker only resumes/releases
        its own), so the stream is deterministic even while other
        workers interleave arbitrarily against the same service.
        """
        signatures = []
        sessions = []  # this worker's live session ids, newest last
        for op, template, argument in ops:
            if op == "submit":
                response = service.submit(
                    market_moving_news_query(*template), k=argument
                )
                sessions.append(response.session_id)
                signatures.append(("submit", _answer_signature(response)))
            elif op == "prefetch":
                summary = service.prefetch(
                    market_moving_news_query(*template), k=argument
                )
                signatures.append(
                    ("prefetch", summary["answers_available"],
                     summary["skipped"])
                )
            elif op == "more":
                response = service.ask_for_more(sessions[-1], argument)
                signatures.append(("more", _answer_signature(response)))
            else:
                signatures.append(("release", service.release(sessions.pop())))
        return signatures

    def test_interleaved_sessions_match_sequential_replay(self):
        streams = self._op_streams()
        sequential = _service(news_registry)
        expected = [self._replay(sequential, ops) for ops in streams]
        shared = _service(news_registry)
        got = [None] * self.WORKERS

        def work(index):
            got[index] = self._replay(shared, streams[index])

        _run_workers(self.WORKERS, work)
        assert got == expected
        assert (shared.sessions.stats.created
                == sequential.sessions.stats.created)
        assert (shared.sessions.stats.released
                == sequential.sessions.stats.released)
        assert len(shared.sessions) == len(sequential.sessions)

    def test_concurrent_resumes_of_one_session_serialize(self):
        # Many threads asking the same session for more: every resume
        # must see a strictly growing prefix of one answer stream
        # (the session lock serializes them; no interleaved corruption).
        service = _service(weekend_registry, k_default=1)
        first = service.submit(mahler_weekend_query(), k=1)
        workers = 6
        results = [None] * workers

        def work(index):
            results[index] = service.ask_for_more(first.session_id, 1)

        _run_workers(workers, work)
        lengths = sorted(len(r.rows) for r in results)
        by_length = {len(r.rows): r for r in results}
        longest = by_length[lengths[-1]]
        for response in results:
            assert longest.rows[: len(response.rows)] == response.rows
        assert service.stats.continuations == workers

    def test_release_racing_resume_never_corrupts(self):
        # One thread resumes while others release the same session:
        # every call either succeeds or raises SessionError; no other
        # outcome (and no deadlock).
        from repro.serving import SessionError

        for _ in range(5):
            service = _service(weekend_registry, k_default=2)
            session_id = service.submit(mahler_weekend_query()).session_id
            outcomes = []
            lock = threading.Lock()

            def work(index):
                try:
                    if index % 2:
                        service.release(session_id)
                        outcome = "released"
                    else:
                        service.ask_for_more(session_id, 1)
                        outcome = "resumed"
                except SessionError:
                    outcome = "gone"
                with lock:
                    outcomes.append(outcome)

            _run_workers(4, work)
            assert len(outcomes) == 4
            assert set(outcomes) <= {"released", "resumed", "gone"}


class TestSQLiteTierConcurrency:
    """The WAL tier under many threads and many sibling instances."""

    def test_concurrent_stores_all_land(self, tmp_path):
        from repro.plans.spec import PlanSpec

        cache = PlanCache(path=tmp_path / "plans.sqlite")
        spec = PlanSpec(
            pattern_codes=("io",), precedence_pairs=(), fetches=((0, 2),)
        )
        workers, per_worker = 8, 20

        def work(index):
            for i in range(per_worker):
                cache.store(f"w{index}-k{i}", spec, float(i), "time", "e")

        _run_workers(workers, work)
        assert cache.stats.stores == workers * per_worker
        fresh = PlanCache(path=tmp_path / "plans.sqlite")
        assert fresh.disk_entries == workers * per_worker
        for index in range(workers):
            assert fresh.lookup(f"w{index}-k{per_worker - 1}") is not None

    def test_sibling_instances_write_concurrently(self, tmp_path):
        from repro.plans.spec import PlanSpec

        path = tmp_path / "plans.sqlite"
        spec = PlanSpec(
            pattern_codes=("io",), precedence_pairs=(), fetches=()
        )
        siblings = [PlanCache(path=path) for _ in range(4)]

        def work(index):
            for i in range(15):
                siblings[index].store(
                    f"s{index}-k{i}", spec, 1.0, "time", "e"
                )

        _run_workers(4, work)
        fresh = PlanCache(path=path)
        assert fresh.disk_entries == 60

    def test_threaded_service_restarts_warm_from_sqlite(self, tmp_path):
        path = tmp_path / "plans.sqlite"
        templates = [
            market_moving_news_query(topic, sector)
            for topic in _TOPICS
            for sector in ("tech", "energy")
        ]
        first = _service(news_registry, plan_cache=PlanCache(path=path))

        def work(index):
            rng = random.Random(index)
            for _ in range(10):
                first.submit(rng.choice(templates), k=3)

        _run_workers(6, work)
        assert first.plan_cache.stats.misses == len(templates)
        first.plan_cache.close()
        # A restarted service over the same database starts 0-miss.
        restarted = _service(news_registry, plan_cache=PlanCache(path=path))
        for template in templates:
            assert restarted.submit(template, k=3).provenance == "disk"
        assert restarted.plan_cache.stats.misses == 0
        assert restarted.stats.optimizer_runs == 0


class TestSessionManagerLocking:
    def test_lifecycle_counters_stay_coherent_under_races(self):
        # create/get/release hammered from 8 threads: every session is
        # accounted for exactly once (created == released + evicted +
        # expired + still-live).
        manager = SessionManager(capacity=32, ttl=None)
        service = _service(weekend_registry, sessions=manager, k_default=2)
        query = mahler_weekend_query()
        submits = [0] * 8

        def work(index):
            rng = random.Random(index)
            mine = []
            for _ in range(12):
                if mine and rng.random() < 0.4:
                    service.release(mine.pop())
                else:
                    mine.append(service.submit(query).session_id)
                    submits[index] += 1

        _run_workers(8, work)
        stats = manager.stats
        assert stats.created == sum(submits)
        assert (stats.released + stats.evicted + stats.expired
                + len(manager)) == stats.created


class TestResilientServingConcurrency:
    """Hedged/retried serving under threads (ISSUE 8 satellite).

    Hedged duplicates and retried attempts run *below* the shared
    ``ThreadSafeCache``, so threaded resilient submits must stay
    request-by-request bit-identical to a sequential replay without
    the resilience layer — and the shared cache must end up with
    exactly the entries the sequential run stores (a duplicate that
    double-stored or double-counted would show up here).
    """

    WORKERS = 6
    REQUESTS_PER_WORKER = 8

    def _streams(self, seed):
        rng = random.Random(seed)
        population = [
            (market_moving_news_query(topic, sector), k)
            for topic in _TOPICS
            for sector in _SECTORS
            for k in (2, 4)
        ]
        return [
            [rng.choice(population) for _ in range(self.REQUESTS_PER_WORKER)]
            for _ in range(self.WORKERS)
        ]

    def _replay_threaded(self, service, streams):
        got = [[None] * len(stream) for stream in streams]
        responses = [[None] * len(stream) for stream in streams]

        def work(index):
            for position, (query, k) in enumerate(streams[index]):
                response = service.submit(query, k=k)
                responses[index][position] = response
                got[index][position] = _answer_signature(response)

        _run_workers(self.WORKERS, work)
        return got, [r for row in responses for r in row]

    def test_threaded_hedged_submits_match_unhedged_replay(self):
        from repro.execution.resilience import HedgePolicy, ResilienceConfig
        from repro.testing import FaultSchedule, wrap_registry_flaky

        # One deterministic faulted world (delay only: latency moves,
        # tuples never do), served twice.
        def flaky_news():
            registry = news_registry()
            wrap_registry_flaky(
                registry, FaultSchedule(seed=80, delay_rate=1.0)
            )
            return registry

        streams = self._streams(20260808)
        sequential = _service(flaky_news)
        expected = [
            [_answer_signature(sequential.submit(query, k=k))
             for query, k in stream]
            for stream in streams
        ]
        hedged = _service(
            flaky_news,
            resilience=ResilienceConfig(hedge=HedgePolicy(threshold=5.0)),
        )
        got, responses = self._replay_threaded(hedged, streams)
        assert got == expected
        # Hedging fired, losers were traced as wasted work only.
        assert sum(r.stats["hedged_pulls"] for r in responses) > 0
        for response in responses:
            assert response.stats["wasted_fetches"] >= (
                response.stats["hedged_wins"]
            )
        # The shared cache holds exactly the sequential run's pages:
        # no hedged duplicate ever stored an extra entry.
        assert (hedged.snapshot()["service_cache"]["entries"]
                == sequential.snapshot()["service_cache"]["entries"])
        assert hedged.stats.optimizer_runs == sequential.stats.optimizer_runs

    def test_threaded_retried_submits_match_fault_free_replay(self):
        from repro.execution.resilience import ResilienceConfig, RetryPolicy
        from repro.testing import FaultSchedule, wrap_registry_flaky

        def flaky_news():
            registry = news_registry()
            wrap_registry_flaky(
                registry, FaultSchedule(seed=81, fail_rate=0.3),
                attempt_aware=True,
            )
            return registry

        streams = self._streams(20260809)
        clean = _service(news_registry)
        expected = [
            [_answer_signature(clean.submit(query, k=k))
             for query, k in stream]
            for stream in streams
        ]
        resilient = _service(
            flaky_news,
            resilience=ResilienceConfig(retry=RetryPolicy(attempts=40)),
        )
        got, responses = self._replay_threaded(resilient, streams)
        assert got == expected
        # Failed attempts appear only in the wasted-work trace; the
        # per-service accounting matches the fault-free replay.
        assert sum(r.stats["retries"] for r in responses) > 0
        assert (resilient.snapshot()["service_cache"]["entries"]
                == clean.snapshot()["service_cache"]["entries"])
