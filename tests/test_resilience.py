"""Resilience layer: retry/backoff, hedging, honest partial results.

Differential contracts pinned here (see
:mod:`repro.execution.resilience` for the arguments):

* **Zero-fault bit-identity** — an engine with every resilience layer
  switched on, run over a fault-free registry, is bit-identical to the
  plain engine: rows, ranks, per-service calls/fetches/cache-hits,
  and virtual time.  The certificate it attaches is then a
  *completeness* witness (nothing dropped).
* **Sufficient retries** — under any seeded attempt-aware fault
  schedule with fail-rate < 1, enough retries make the resilient run
  bit-identical to the fault-free oracle, answers *and* accounting
  (failed attempts land in ``wasted_fetches``, never in the
  per-service counters).
* **Capped retries + partial mode** — the partial answer is *exactly*
  the top-k of the plan over the registry with the certificate's
  dropped units excluded up front: re-running on a clean registry with
  those units pre-masked reproduces it bit-for-bit, and no returned
  answer is ever attributed to a dropped unit.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.testing.faults as faults
from repro.execution.engine import ExecutionEngine, ExecutionMode
from repro.execution.lazy import LazyServiceCursor, ListPageSource
from repro.execution.resilience import (
    HedgePolicy,
    ResilienceConfig,
    RetryPolicy,
    RetryingPageSource,
    UnresponsiveService,
    resilient_fetch,
    unit_token,
)
from repro.execution.stats import ExecutionStats
from repro.model.schema import signature
from repro.model.terms import Variable
from repro.services.base import InvocationResult, TransientServiceError
from repro.services.profile import search_profile
from repro.services.table import TableSearchService
from repro.testing import FaultSchedule, FlakyService, wrap_registry_flaky

from tests.test_fault_injection import PLAN_SHAPES, _pair_plan, _serial_plan
from tests.test_lazy import _paged, _rows


def _sig(rows):
    """Cross-registry row signature.

    Rank *labels* are registry-local (auto-assigned service ids), so a
    differential between independently built registries compares
    bindings and rank values only.
    """
    return [
        (dict(r.bindings), tuple(rank for _, rank in r.ranks)) for r in rows
    ]

RETRY_ALWAYS = ResilienceConfig(retry=RetryPolicy(attempts=40))
#: Retry + hedging + partial mode, tuned so nothing fires on a clean
#: run (no faults to retry, no latency above the hedge threshold).
ALL_ON_QUIET = ResilienceConfig(
    retry=RetryPolicy(attempts=3),
    hedge=HedgePolicy(threshold=1e9),
    partial_results=True,
)


def _counters(stats, with_remote=True):
    """Per-service accounting; hedging excludes the remote-side view
    (a hedged duplicate legitimately warms the remote's own cache)."""
    return {
        name: (
            (s.calls, s.fetches, s.cache_hits, s.tuples_fetched)
            + ((s.remote_cache_hits, s.busy_time) if with_remote else ())
        )
        for name, s in stats.per_service.items()
    }


def _page_result(latency=1.0):
    return InvocationResult(
        tuples=((0, "a"),), latency=latency, has_more=False, ranks=(0,)
    )


def _flaky_invoke(failures, latencies=(1.0,)):
    """An invoke() failing *failures* times, then serving *latencies*."""
    state = {"calls": 0}

    def invoke():
        state["calls"] += 1
        if state["calls"] <= failures:
            raise TransientServiceError(f"boom #{state['calls']}")
        index = min(state["calls"] - failures, len(latencies)) - 1
        return _page_result(latency=latencies[index])

    return invoke, state


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=0.5, multiplier=2.0, jitter=0.1)
        key = ("ioo", ((0, "q"),))
        for attempt in range(1, 6):
            delay = policy.backoff("svc", key, attempt)
            assert delay == policy.backoff("svc", key, attempt)
            nominal = min(30.0, 0.5 * 2.0 ** (attempt - 1))
            assert nominal * 0.9 <= delay <= nominal * 1.1

    def test_no_jitter_is_exact_exponential(self):
        policy = RetryPolicy(
            base_delay=1.0, multiplier=3.0, max_delay=10.0, jitter=0.0
        )
        delays = [policy.backoff("svc", (), n) for n in (1, 2, 3, 4)]
        assert delays == [1.0, 3.0, 9.0, 10.0]  # capped by max_delay

    def test_seed_and_key_vary_the_jitter(self):
        base = RetryPolicy(seed=0)
        other = RetryPolicy(seed=1)
        assert any(
            base.backoff("svc", (), n) != other.backoff("svc", (), n)
            for n in range(1, 6)
        )
        assert any(
            base.backoff("svc", (), n) != base.backoff("other", (), n)
            for n in range(1, 6)
        )

    def test_per_service_attempt_caps(self):
        policy = RetryPolicy(attempts=5, per_service={"slow": 9, "none": 0})
        assert policy.attempts_for("anything") == 5
        assert policy.attempts_for("slow") == 9
        assert policy.attempts_for("none") == 1  # floor: one attempt


class TestResilientFetch:
    def test_transient_failures_are_retried_and_charged(self):
        policy = RetryPolicy(attempts=5)
        config = ResilienceConfig(retry=policy)
        invoke, state = _flaky_invoke(failures=2)
        stats = ExecutionStats()
        result = resilient_fetch(config, "svc", ("ioo", ()), 0, invoke, stats)
        assert state["calls"] == 3
        assert stats.retries == 2
        assert stats.wasted_fetches == 2
        expected_backoff = sum(
            policy.backoff("svc", ("ioo", ()), n) for n in (1, 2)
        )
        assert stats.retry_backoff == pytest.approx(expected_backoff)
        # Backoff is charged to virtual time on the winning fetch.
        assert result.latency == pytest.approx(1.0 + expected_backoff)
        assert result.tuples == ((0, "a"),)

    def test_exhausted_retries_raise_the_original_error(self):
        config = ResilienceConfig(retry=RetryPolicy(attempts=3))
        invoke, state = _flaky_invoke(failures=10)
        with pytest.raises(TransientServiceError, match="boom #3"):
            resilient_fetch(
                config, "svc", ("ioo", ()), 0, invoke, ExecutionStats()
            )
        assert state["calls"] == 3

    def test_partial_mode_raises_unresponsive_service(self):
        config = ResilienceConfig(
            retry=RetryPolicy(attempts=2), partial_results=True
        )
        invoke, _ = _flaky_invoke(failures=10)
        with pytest.raises(UnresponsiveService) as excinfo:
            resilient_fetch(
                config, "svc", ("ioo", ((0, "q"),)), 3, invoke,
                ExecutionStats(),
            )
        failure = excinfo.value
        assert failure.unit == ("svc", ("ioo", ((0, "q"),)))
        assert failure.page == 3
        assert failure.attempts == 2
        assert isinstance(failure.cause, TransientServiceError)

    def test_no_retry_policy_fails_on_first_transient(self):
        invoke, state = _flaky_invoke(failures=1)
        stats = ExecutionStats()
        with pytest.raises(TransientServiceError):
            resilient_fetch(
                ResilienceConfig(), "svc", ("ioo", ()), 0, invoke, stats
            )
        assert state["calls"] == 1
        assert stats.wasted_fetches == 1
        assert stats.retries == 0

    def test_deadline_bounds_cumulative_backoff(self):
        config = ResilienceConfig(
            retry=RetryPolicy(attempts=9, deadline=0.0)
        )
        invoke, state = _flaky_invoke(failures=10)
        with pytest.raises(TransientServiceError):
            resilient_fetch(
                config, "svc", ("ioo", ()), 0, invoke, ExecutionStats()
            )
        assert state["calls"] == 1  # any backoff would exceed the deadline


class TestHedging:
    def _config(self, threshold=4.0, max_hedges=1):
        return ResilienceConfig(
            hedge=HedgePolicy(threshold=threshold, max_hedges=max_hedges)
        )

    def test_fast_primary_is_never_hedged(self):
        invoke, state = _flaky_invoke(failures=0, latencies=(1.0,))
        stats = ExecutionStats()
        result = resilient_fetch(
            self._config(), "svc", ("ioo", ()), 0, invoke, stats
        )
        assert state["calls"] == 1
        assert result.latency == 1.0
        assert stats.hedged_pulls == 0

    def test_straggler_is_hedged_and_faster_backup_wins(self):
        invoke, state = _flaky_invoke(failures=0, latencies=(10.0, 1.0))
        stats = ExecutionStats()
        result = resilient_fetch(
            self._config(), "svc", ("ioo", ()), 0, invoke, stats
        )
        assert state["calls"] == 2
        assert result.latency == 1.0
        assert stats.hedged_pulls == 1
        assert stats.hedged_wins == 1
        assert stats.wasted_fetches == 1  # the losing half of the pair

    def test_slower_backup_loses_and_tie_keeps_the_primary(self):
        for backup_latency in (20.0, 10.0):
            invoke, _ = _flaky_invoke(
                failures=0, latencies=(10.0, backup_latency)
            )
            stats = ExecutionStats()
            result = resilient_fetch(
                self._config(), "svc", ("ioo", ()), 0, invoke, stats
            )
            assert result.latency == 10.0
            assert stats.hedged_wins == 0
            assert stats.wasted_fetches == 1

    def test_failed_backup_is_wasted_but_harmless(self):
        state = {"calls": 0}

        def invoke():
            state["calls"] += 1
            if state["calls"] == 2:  # only the duplicate fails
                raise TransientServiceError("hedge died")
            return _page_result(latency=10.0)

        stats = ExecutionStats()
        result = resilient_fetch(
            self._config(max_hedges=2), "svc", ("ioo", ()), 0, invoke, stats
        )
        assert result.latency == 10.0
        assert stats.hedged_pulls == 2  # the failed one, then a retry hedge
        assert stats.wasted_fetches == 2


class _FlakyPageSource:
    """A PageSource whose every page fails *fail_times* before serving."""

    def __init__(self, inner, fail_times=1):
        self._inner = inner
        self._fail_times = fail_times
        self._failures: dict[int, int] = {}

    @property
    def budget(self):
        return self._inner.budget

    def swap_stats(self, stats):
        self._inner.swap_stats(stats)

    def fetch(self, page):
        seen = self._failures.get(page, 0)
        if seen < self._fail_times:
            self._failures[page] = seen + 1
            raise TransientServiceError(f"flaky page {page}")
        return self._inner.fetch(page)


class TestRetryingPageSource:
    def _pages(self):
        return _paged(_rows([0, 1, 3, 4, 6, 7], "L"), chunk=2)

    def test_cursor_over_flaky_source_matches_clean(self):
        clean = LazyServiceCursor(ListPageSource(self._pages()))
        clean.ensure_all()
        stats = ExecutionStats()
        retrying = RetryingPageSource(
            _FlakyPageSource(ListPageSource(self._pages()), fail_times=2),
            ResilienceConfig(retry=RetryPolicy(attempts=3)),
            stats,
            service="lefts",
        )
        cursor = LazyServiceCursor(retrying)
        cursor.ensure_all()
        assert cursor.rows == clean.rows
        assert cursor.ranks == clean.ranks
        assert stats.retries == 2 * len(self._pages())
        assert stats.wasted_fetches == 2 * len(self._pages())
        assert retrying.budget == len(self._pages())

    def test_capped_retries_propagate_the_transient_error(self):
        source = RetryingPageSource(
            _FlakyPageSource(ListPageSource(self._pages()), fail_times=5),
            ResilienceConfig(retry=RetryPolicy(attempts=2)),
            ExecutionStats(),
        )
        with pytest.raises(TransientServiceError):
            LazyServiceCursor(source).ensure(1)

    def test_partial_mode_raises_unresponsive_service(self):
        source = RetryingPageSource(
            _FlakyPageSource(ListPageSource(self._pages()), fail_times=5),
            ResilienceConfig(
                retry=RetryPolicy(attempts=2), partial_results=True
            ),
            ExecutionStats(),
            service="lefts",
            input_key=("ioo", ((0, "q"),)),
        )
        with pytest.raises(UnresponsiveService) as excinfo:
            LazyServiceCursor(source).ensure(1)
        assert excinfo.value.unit == ("lefts", ("ioo", ((0, "q"),)))

    def test_swap_stats_rebinds_the_retry_accounting(self):
        """Regression: ``swap_stats`` rebound only the wrapped source's
        stats, so retries/wasted fetches of a resumed round were
        charged to the *previous* round's statistics object."""
        first = ExecutionStats()
        source = RetryingPageSource(
            _FlakyPageSource(ListPageSource(self._pages()), fail_times=1),
            ResilienceConfig(retry=RetryPolicy(attempts=3)),
            first,
            service="lefts",
        )
        cursor = LazyServiceCursor(source)
        cursor.ensure(2)  # page 0: its one failure lands on `first`
        assert first.retries == 1
        assert first.wasted_fetches == 1
        resumed = ExecutionStats()
        source.swap_stats(resumed)
        cursor.ensure(4)  # page 1: its failure must land on `resumed`
        assert resumed.retries == 1
        assert resumed.wasted_fetches == 1
        # The round that created the source keeps its frozen counters.
        assert first.retries == 1
        assert first.wasted_fetches == 1


class TestPromotedFaultKit:
    def test_injected_fault_is_transient(self):
        assert issubclass(faults.InjectedFault, TransientServiceError)

    def _service(self):
        return TableSearchService(
            signature("spots", ["Q", "S"], ["io"]),
            search_profile(chunk_size=3, response_time=1.0),
            [("q", i) for i in range(7)],
            score=lambda row: float(-row[1]),
        )

    def test_delay_kind_stretches_latency_only(self):
        inner = self._service()
        flaky = FlakyService(
            inner, FaultSchedule(seed=1, delay_rate=1.0, delay_factor=10.0)
        )
        pattern = inner.signature.pattern("io")
        clean = inner.invoke(pattern, {0: "q"}, page=0)
        inner.reset()
        delayed = flaky.invoke(pattern, {0: "q"}, page=0)
        assert delayed.tuples == clean.tuples
        assert delayed.ranks == clean.ranks
        assert delayed.has_more == clean.has_more
        assert delayed.latency == pytest.approx(clean.latency * 10.0)
        assert flaky.injected["delay"] == 1

    def test_attempt_aware_decisions_draw_independently(self):
        schedule = FaultSchedule(seed=5, fail_rate=0.5)
        base = schedule.decide("svc", "io", {0: "q"}, 0)
        assert base == schedule.decide("svc", "io", {0: "q"}, 0, attempt=0)
        draws = {
            schedule.decide("svc", "io", {0: "q"}, 0, attempt=n)
            for n in range(12)
        }
        assert None in draws and "fail" in draws  # retries can recover

    def test_attempt_aware_flaky_service_eventually_succeeds(self):
        inner = self._service()
        flaky = FlakyService(
            inner, FaultSchedule(seed=5, fail_rate=0.5), attempt_aware=True
        )
        pattern = inner.signature.pattern("io")
        outcomes = []
        for _ in range(12):
            try:
                outcomes.append(len(flaky.invoke(pattern, {0: "q"}, page=0)))
            except faults.InjectedFault:
                outcomes.append(None)
        assert None in outcomes  # some attempts fail ...
        assert any(o is not None for o in outcomes)  # ... but not all


class TestZeroFaultBitIdentity:
    """All resilience layers on + no faults == the plain engine."""

    @pytest.mark.parametrize("shape", sorted(PLAN_SHAPES))
    @pytest.mark.parametrize(
        "mode_kwargs",
        [
            {"mode": ExecutionMode.PARALLEL},
            {"mode": ExecutionMode.STREAMED},
            {"mode": ExecutionMode.STREAMED, "lazy_streaming": False},
        ],
        ids=("full", "lazy", "eager"),
    )
    def test_resilient_engine_is_bit_identical(self, shape, mode_kwargs):
        k = 5
        registry, head, plan = PLAN_SHAPES[shape]()
        plain = ExecutionEngine(registry, **mode_kwargs).execute(
            plan, head=head, k=k
        )
        registry2, head2, plan2 = PLAN_SHAPES[shape]()
        resilient = ExecutionEngine(
            registry2, resilience=ALL_ON_QUIET, **mode_kwargs
        ).execute(plan2, head=head2, k=k)
        assert _sig(resilient.rows) == _sig(plain.rows)
        assert _counters(resilient.stats) == _counters(plain.stats)
        assert resilient.stats.elapsed == plain.stats.elapsed
        for counter in ("retries", "hedged_pulls", "wasted_fetches",
                        "demoted_blocks"):
            assert getattr(resilient.stats, counter) == 0
        # The certificate is present and witnesses completeness.
        certificate = resilient.certificate
        assert plain.certificate is None
        assert certificate is not None and not certificate.is_partial
        assert certificate.dropped == ()
        assert certificate.dropped_services == ()
        assert len(certificate.answer_units) == len(resilient.rows)
        payload = json.loads(json.dumps(certificate.to_dict()))
        assert payload["partial"] is False and payload["dropped"] == []


class TestRetryDifferential:
    """Sufficient retries == the fault-free oracle, bit for bit."""

    @given(
        st.integers(0, 10**6),
        st.sampled_from(sorted(PLAN_SHAPES)),
        st.sampled_from([0.1, 0.25, 0.4]),
        st.integers(1, 8),
        st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_retries_recover_the_oracle(self, seed, shape, rate, k, lazy):
        mode_kwargs = (
            {"mode": ExecutionMode.STREAMED}
            if lazy
            else {"mode": ExecutionMode.PARALLEL}
        )
        oracle_registry, head, oracle_plan = PLAN_SHAPES[shape]()
        oracle = ExecutionEngine(oracle_registry, **mode_kwargs).execute(
            oracle_plan, head=head, k=k
        )
        registry, head, plan = PLAN_SHAPES[shape]()
        wrappers = wrap_registry_flaky(
            registry, FaultSchedule(seed=seed, fail_rate=rate),
            attempt_aware=True,
        )
        resilient = ExecutionEngine(
            registry, resilience=RETRY_ALWAYS, **mode_kwargs
        ).execute(plan, head=head, k=k)
        assert _sig(resilient.rows) == _sig(oracle.rows)
        # Failed attempts are wasted work, never per-service accounting
        # (busy/remote excluded: backoff is charged to virtual time).
        assert _counters(resilient.stats, with_remote=False) == _counters(
            oracle.stats, with_remote=False
        )
        injected = sum(w.injected["fail"] for w in wrappers.values())
        assert resilient.stats.retries == injected
        assert resilient.stats.wasted_fetches == injected
        assert resilient.stats.elapsed >= oracle.stats.elapsed


class TestPartialResults:
    """Capped retries demote honestly: top-k over the responsive rest."""

    PARTIAL = ResilienceConfig(
        retry=RetryPolicy(attempts=2), partial_results=True
    )

    def test_everything_dead_yields_empty_certified_answer(self):
        registry, head, plan = _pair_plan()
        wrap_registry_flaky(
            registry, FaultSchedule(seed=3, fail_rate=1.0),
            attempt_aware=True,
        )
        result = ExecutionEngine(
            registry, mode=ExecutionMode.STREAMED,
            resilience=self.PARTIAL,
        ).execute(plan, head=head, k=4)
        assert result.rows == []
        certificate = result.certificate
        assert certificate is not None and certificate.is_partial
        assert certificate.dropped_services == ("lefts",) or set(
            certificate.dropped_services
        ) == {"lefts", "rights"}
        assert certificate.responsive_services == tuple(
            s for s in ("lefts", "rights")
            if s not in certificate.dropped_services
        )
        assert result.stats.demoted_blocks == len(certificate.dropped)

    @given(
        st.integers(0, 10**6),
        st.sampled_from(sorted(PLAN_SHAPES)),
        st.integers(1, 8),
    )
    @settings(max_examples=25, deadline=None)
    def test_partial_answer_is_topk_over_responsive_subset(
        self, seed, shape, k
    ):
        registry, head, plan = PLAN_SHAPES[shape]()
        wrap_registry_flaky(
            registry, FaultSchedule(seed=seed, fail_rate=0.3),
            attempt_aware=True,
        )
        partial = ExecutionEngine(
            registry, mode=ExecutionMode.STREAMED, resilience=self.PARTIAL,
        ).execute(plan, head=head, k=k)
        certificate = partial.certificate
        assert certificate is not None

        # Oracle: a clean registry with the dropped units masked up
        # front must reproduce the partial answer bit-for-bit.
        oracle_registry, head, oracle_plan = PLAN_SHAPES[shape]()
        oracle_engine = ExecutionEngine(
            oracle_registry, mode=ExecutionMode.STREAMED,
            resilience=ResilienceConfig(partial_results=True),
        )
        for unit in certificate.dropped:
            oracle_engine.mask_unit(unit.service, unit.input_key)
        oracle = oracle_engine.execute(oracle_plan, head=head, k=k)
        assert _sig(partial.rows) == _sig(oracle.rows)

        # The oracle's certificate names the same dropped units.
        assert oracle.certificate is not None
        assert [u.token for u in oracle.certificate.dropped] == [
            u.token for u in certificate.dropped
        ]
        # No returned answer is ever attributed to a dropped unit.
        dropped_tokens = {u.token for u in certificate.dropped}
        for units in certificate.answer_units:
            assert not dropped_tokens.intersection(units)
        assert partial.stats.demoted_blocks == len(certificate.dropped)

    def test_serial_plan_keeps_responsive_blocks_of_a_flaky_service(self):
        """A service with one dead block still answers from the others
        (dropped_services names it, yet answers cite its live units)."""
        registry, head, plan = _serial_plan()
        engine = ExecutionEngine(
            registry, mode=ExecutionMode.STREAMED,
            resilience=ResilienceConfig(partial_results=True),
        )
        dead_key = ("ioo", ((0, 0),))  # the lefts block fed by X=0
        engine.mask_unit("lefts", dead_key)
        result = engine.execute(plan, head=head, k=6)
        certificate = result.certificate
        assert certificate is not None and certificate.is_partial
        assert certificate.dropped_services == ("lefts",)
        assert [u.token for u in certificate.dropped] == [
            unit_token("lefts", dead_key)
        ]
        assert result.rows  # the X=1, X=2 blocks still produce answers
        x = Variable("X")
        assert all(row.bindings[x] != 0 for row in result.rows)
        live_tokens = {
            token for units in certificate.answer_units for token in units
        }
        assert any(token.startswith("lefts[") for token in live_tokens)


class TestServingPartialResults:
    def _registry_plan(self):
        return _pair_plan()

    def test_response_carries_the_certificate_json(self):
        from repro.serving import QueryService
        from repro.sources.weekend import (
            mahler_weekend_query,
            weekend_registry,
        )

        service = QueryService(
            registry=weekend_registry(),
            k_default=3,
            resilience=ResilienceConfig(partial_results=True),
        )
        response = service.submit(mahler_weekend_query())
        assert response.partial is not None
        assert response.partial["partial"] is False
        assert response.partial["dropped"] == []
        assert response.partial["responsive_services"]
        decoded = json.loads(response.to_json())
        assert decoded["partial"] == response.partial

    def test_faulted_serving_demotes_and_reports_honestly(self):
        from repro.serving import QueryService
        from repro.sources.weekend import (
            mahler_weekend_query,
            weekend_registry,
        )

        registry = weekend_registry()
        wrap_registry_flaky(
            registry, FaultSchedule(seed=9, fail_rate=1.0),
            attempt_aware=True,
        )
        service = QueryService(
            registry=registry,
            k_default=3,
            resilience=ResilienceConfig(
                retry=RetryPolicy(attempts=2), partial_results=True
            ),
        )
        response = service.submit(mahler_weekend_query())
        assert response.partial is not None
        assert response.partial["partial"] is True
        assert response.partial["dropped"]
        assert response.rows == ()
        json.loads(response.to_json())  # stays serializable

    def test_without_resilience_the_field_stays_none(self):
        from repro.serving import QueryService
        from repro.sources.weekend import (
            mahler_weekend_query,
            weekend_registry,
        )

        service = QueryService(registry=weekend_registry(), k_default=3)
        response = service.submit(mahler_weekend_query())
        assert response.partial is None
        assert json.loads(response.to_json())["partial"] is None
