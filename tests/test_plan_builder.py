"""Unit tests for the plan builder (posets → executable DAGs)."""

import pytest

from repro.model.terms import Variable
from repro.plans.builder import PlanBuilder, Poset, chain_poset
from repro.plans.dag import PlanError
from repro.plans.nodes import JoinNode, ServiceNode
from repro.services.registry import JoinMethod
from repro.sources.travel import (
    CONF_ATOM,
    FLIGHT_ATOM,
    HOTEL_ATOM,
    WEATHER_ATOM,
    alpha1_patterns,
    poset_optimal,
    poset_parallel,
    poset_serial,
    running_example_query,
)


@pytest.fixture()
def builder(registry, travel_query):
    return PlanBuilder(travel_query, registry)


class TestTinyPlans:
    def test_two_atom_chain(self, tiny_registry, tiny_query):
        builder = PlanBuilder(tiny_query, tiny_registry)
        patterns = (
            tiny_registry.signature("cities").pattern("io"),
            tiny_registry.signature("spots").pattern("ioo"),
        )
        plan = builder.build(patterns, chain_poset(2, [0, 1]))
        plan.validate()
        assert len(plan.service_nodes) == 2
        assert len(plan.join_nodes) == 0  # pure pipe join

    def test_predicate_assigned_to_earliest_node(self, tiny_registry, tiny_query):
        builder = PlanBuilder(tiny_query, tiny_registry)
        patterns = (
            tiny_registry.signature("cities").pattern("io"),
            tiny_registry.signature("spots").pattern("ioo"),
        )
        plan = builder.build(patterns, chain_poset(2, [0, 1]))
        spots_node = plan.service_node_for_atom(1)
        assert len(spots_node.predicates) == 1  # Score >= 7 lands on spots

    def test_callability_enforced(self, tiny_registry, tiny_query):
        builder = PlanBuilder(tiny_query, tiny_registry)
        patterns = (
            tiny_registry.signature("cities").pattern("io"),
            tiny_registry.signature("spots").pattern("ioo"),
        )
        # spots first: City unbound -> not callable
        with pytest.raises(PlanError):
            builder.build(patterns, chain_poset(2, [1, 0]))

    def test_fetches_applied_to_chunked_nodes(self, tiny_registry, tiny_query):
        builder = PlanBuilder(tiny_query, tiny_registry)
        patterns = (
            tiny_registry.signature("cities").pattern("io"),
            tiny_registry.signature("spots").pattern("ioo"),
        )
        plan = builder.build(patterns, chain_poset(2, [0, 1]), fetches={1: 3})
        assert plan.service_node_for_atom(1).fetches == 3
        assert plan.service_node_for_atom(0).fetches == 1  # bulk stays 1


class TestRunningExamplePlans:
    def test_serial_plan_is_pure_chain(self, builder):
        plan = builder.build(alpha1_patterns(), poset_serial())
        assert len(plan.join_nodes) == 0
        assert len(plan.paths()) == 1

    def test_optimal_plan_has_one_merge_scan(self, builder):
        plan = builder.build(alpha1_patterns(), poset_optimal())
        joins = plan.join_nodes
        assert len(joins) == 1
        assert joins[0].method is JoinMethod.MERGE_SCAN

    def test_parallel_plan_has_two_joins(self, builder):
        plan = builder.build(alpha1_patterns(), poset_parallel())
        assert len(plan.join_nodes) == 2

    def test_optimal_plan_wiring(self, builder):
        plan = builder.build(alpha1_patterns(), poset_optimal())
        weather = plan.service_node_for_atom(WEATHER_ATOM)
        flight = plan.service_node_for_atom(FLIGHT_ATOM)
        hotel = plan.service_node_for_atom(HOTEL_ATOM)
        assert {n.node_id for n in plan.successors(weather)} == {
            flight.node_id, hotel.node_id
        }
        join = plan.join_nodes[0]
        assert {n.node_id for n in plan.predecessors(join)} == {
            flight.node_id, hotel.node_id
        }

    def test_price_predicate_lands_on_join_in_plan_o(self, builder):
        plan = builder.build(alpha1_patterns(), poset_optimal())
        join = plan.join_nodes[0]
        rendered = [str(p) for p in join.predicates]
        assert any("FPrice + HPrice" in text for text in rendered)
        assert join.selectivity == pytest.approx(0.01)

    def test_price_predicate_lands_on_hotel_in_serial_plan(self, builder):
        plan = builder.build(alpha1_patterns(), poset_serial())
        hotel = plan.service_node_for_atom(HOTEL_ATOM)
        rendered = [str(p) for p in hotel.predicates]
        assert any("FPrice + HPrice" in text for text in rendered)

    def test_temperature_predicate_on_weather(self, builder):
        plan = builder.build(alpha1_patterns(), poset_optimal())
        weather = plan.service_node_for_atom(WEATHER_ATOM)
        assert any("Temperature" in str(p) for p in weather.predicates)

    def test_conf_first_in_all_plans(self, builder):
        for poset in (poset_serial(), poset_parallel(), poset_optimal()):
            plan = builder.build(alpha1_patterns(), poset)
            first = plan.successors(plan.input_node)
            assert len(first) == 1
            assert isinstance(first[0], ServiceNode)
            assert first[0].atom_index == CONF_ATOM


class TestValidationErrors:
    def test_pattern_count_mismatch(self, builder):
        with pytest.raises(PlanError):
            builder.build(alpha1_patterns()[:2], poset_serial())

    def test_poset_size_mismatch(self, builder):
        with pytest.raises(PlanError):
            builder.build(alpha1_patterns(), Poset(n=2))

    def test_non_callable_order_rejected(self, builder):
        # weather first: City unbound.
        bad = chain_poset(4, [WEATHER_ATOM, CONF_ATOM, FLIGHT_ATOM, HOTEL_ATOM])
        with pytest.raises(PlanError):
            builder.build(alpha1_patterns(), bad)


class TestJoinVariables:
    def test_join_variables_cover_branch_overlap(self, builder):
        plan = builder.build(alpha1_patterns(), poset_optimal())
        join = plan.join_nodes[0]
        assert Variable("City") in join.variables
        assert Variable("Start") in join.variables
