"""Property-based tests for access patterns and cogency (Section 4.1)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.atoms import Atom
from repro.model.query import ConjunctiveQuery
from repro.model.schema import AccessPattern, schema_of, signature
from repro.model.terms import Constant, Variable
from repro.optimizer.patterns import (
    is_executable,
    most_cogent_sequences,
    permissible_sequences,
    sequence_is_more_cogent,
)

_codes = st.text(alphabet="io", min_size=1, max_size=6)


class TestCogencyOrder:
    @given(_codes)
    def test_reflexive(self, code):
        pattern = AccessPattern(code)
        assert pattern.is_more_cogent_than(pattern)

    @given(_codes, _codes, _codes)
    def test_transitive(self, a, b, c):
        size = min(len(a), len(b), len(c))
        pa, pb, pc = (AccessPattern(x[:size]) for x in (a, b, c))
        if pa.is_more_cogent_than(pb) and pb.is_more_cogent_than(pc):
            assert pa.is_more_cogent_than(pc)

    @given(_codes, _codes)
    def test_antisymmetric_up_to_equality(self, a, b):
        size = min(len(a), len(b))
        pa, pb = AccessPattern(a[:size]), AccessPattern(b[:size])
        if pa.is_more_cogent_than(pb) and pb.is_more_cogent_than(pa):
            assert pa.code == pb.code

    @given(_codes)
    def test_all_input_pattern_dominates_everything(self, code):
        all_input = AccessPattern("i" * len(code))
        assert all_input.is_more_cogent_than(AccessPattern(code))


def _random_queries():
    """Small random chain-shaped queries with random i/o adornments."""

    @st.composite
    def build(draw):
        n = draw(st.integers(1, 4))
        atoms = []
        signatures = []
        variables = [Variable(f"V{i}") for i in range(n + 1)]
        for index in range(n):
            # Each atom links variable index to index+1 plus a constant.
            name = f"s{index}"
            patterns = draw(
                st.lists(
                    st.sampled_from(["iio", "oio", "ooo", "iio"]),
                    min_size=1, max_size=3, unique=True,
                )
            )
            signatures.append(signature(name, ["A", "B", "C"], patterns))
            atoms.append(
                Atom(name, (variables[index], variables[index + 1], Constant(index)))
            )
        query = ConjunctiveQuery(name="q", head=(), atoms=tuple(atoms))
        return query, schema_of(signatures)

    return build()


class TestPermissibility:
    @given(_random_queries())
    @settings(max_examples=50)
    def test_permissible_sequences_are_executable(self, query_and_schema):
        query, schema = query_and_schema
        for patterns in permissible_sequences(query, schema):
            assert is_executable(query, patterns)

    @given(_random_queries())
    @settings(max_examples=50)
    def test_most_cogent_is_antichain(self, query_and_schema):
        query, schema = query_and_schema
        sequences = permissible_sequences(query, schema)
        top = most_cogent_sequences(sequences)
        for first in top:
            for second in top:
                if first is second:
                    continue
                assert not (
                    sequence_is_more_cogent(first, second)
                    and not sequence_is_more_cogent(second, first)
                )

    @given(_random_queries())
    @settings(max_examples=50)
    def test_most_cogent_nonempty_when_permissible(self, query_and_schema):
        query, schema = query_and_schema
        sequences = permissible_sequences(query, schema)
        if sequences:
            assert most_cogent_sequences(sequences)
