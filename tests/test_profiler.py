"""Unit tests for the sampling-based service profiler (Section 5)."""

import pytest

from repro.model.schema import AccessPattern, signature
from repro.services.profile import ServiceKind, exact_profile, search_profile
from repro.services.profiler import (
    ServiceProfiler,
    format_profile_table,
    profile_services,
)
from repro.services.table import TableExactService, TableSearchService


@pytest.fixture()
def conf_like():
    rows = []
    for topic, size in [("AI", 25), ("IR", 20), ("SE", 15)]:
        rows.extend((topic, f"{topic}-{i}") for i in range(size))
    return TableExactService(
        signature("conf", ["Topic", "Name"], ["io"]),
        exact_profile(erspi=20.0, response_time=1.2),
        rows,
    )


@pytest.fixture()
def flight_like():
    rows = [("MIL", f"f{i}") for i in range(60)]
    return TableSearchService(
        signature("flight", ["From", "Name"], ["io"]),
        search_profile(chunk_size=25, response_time=9.7),
        rows,
        score=lambda row: -float(row[1][1:]),
    )


class TestEstimates:
    def test_erspi_estimate_is_sample_mean(self, conf_like):
        estimate = ServiceProfiler(conf_like).estimate(
            AccessPattern("io"), [{0: "AI"}, {0: "IR"}, {0: "SE"}]
        )
        assert estimate.average_result_size == pytest.approx(20.0)
        assert estimate.invocations == 3

    def test_response_time_estimate(self, conf_like):
        estimate = ServiceProfiler(conf_like).estimate(
            AccessPattern("io"), [{0: "AI"}]
        )
        assert estimate.average_response_time == pytest.approx(1.2)

    def test_chunk_size_observed(self, flight_like):
        estimate = ServiceProfiler(flight_like).estimate(
            AccessPattern("io"), [{0: "MIL"}], fetches_per_input=2
        )
        assert estimate.chunk_size == 25
        assert estimate.kind is ServiceKind.SEARCH

    def test_no_samples_rejected(self, conf_like):
        with pytest.raises(ValueError):
            ServiceProfiler(conf_like).estimate(AccessPattern("io"), [])

    def test_as_profile_roundtrip(self, flight_like):
        estimate = ServiceProfiler(flight_like).estimate(
            AccessPattern("io"), [{0: "MIL"}]
        )
        profile = estimate.as_profile(decay=50)
        assert profile.chunk_size == 25
        assert profile.decay == 50
        assert profile.response_time == pytest.approx(9.7)


class TestTableRendering:
    def test_table_rows_follow_paper_conventions(self, conf_like, flight_like):
        estimates = profile_services(
            [
                (conf_like, AccessPattern("io"), [{0: "AI"}]),
                (flight_like, AccessPattern("io"), [{0: "MIL"}]),
            ]
        )
        conf_row = estimates[0].table_row()
        flight_row = estimates[1].table_row()
        # Exact services report avg size, no chunk; search the opposite.
        assert conf_row[2] == "-" and conf_row[3] != "-"
        assert flight_row[2] == "25" and flight_row[3] == "-"

    def test_format_profile_table(self, conf_like):
        estimates = profile_services(
            [(conf_like, AccessPattern("io"), [{0: "AI"}])]
        )
        text = format_profile_table(estimates)
        assert "Service" in text and "conf" in text
        assert len(text.splitlines()) == 3  # header, rule, one row
