"""Indexed SQLite/FTS5 backends: differential conformance.

The persistent backends (:mod:`repro.services.sqlite`) claim *bit
identity* with the in-memory oracles of :mod:`repro.services.table`:
same tuples, same ranks, same ``has_more`` flags, page by page, for
any relation over the SQLite-exact value domain (str/int/float).
Pinned here:

* **Invocation-level differentials** (hypothesis): random relations,
  random chunk/decay geometry, scored with deliberate ties — every
  page of the SQLite service equals the oracle's, including the page
  past the end.
* **Plan-level differentials**: the bibliographic domain served from
  the ``sqlite`` backend is bit-identical to the ``memory`` backend
  through full plan executions under PARALLEL, STREAMED (lazy and
  eager), and the thread-pool :class:`ParallelExecutor`.
* **FTS5 internal consistency**: no Python BM25 oracle exists, so the
  full-text service is held to rank-monotone paging — paged output
  equals an eager drain, rank indexes are the gap-free global
  sequence, the decay bound truncates — plus match-query
  sanitization (user values cannot inject FTS5 syntax).
* **Persistence**: a database built on disk and re-attached by a
  fresh process-like service answers identically (search attach needs
  no score function: scores are materialized).
* **Thread-safety**: concurrent invocations from many threads against
  one service all equal the oracle.
"""

from __future__ import annotations

import sqlite3
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execution.engine import ExecutionEngine, ExecutionMode
from repro.execution.parallel import ParallelExecutor
from repro.model.schema import signature
from repro.services.base import InvocationError
from repro.services.profile import exact_profile, search_profile
from repro.services.sqlite import (
    FTS5SearchService,
    SQLiteExactService,
    SQLiteSearchService,
    fts5_available,
)
from repro.services.table import TableExactService, TableSearchService
from repro.sources.biblio import biblio_registry, experts_query, generate_corpus

SIG = signature("rel", ["K", "N", "X"], ["ioo", "iio", "ooo"])

# Few distinct values → dense key collisions; scores collide too, so
# the stable-sort tie-break (storage order) is genuinely exercised.
_VALUES = st.one_of(
    st.sampled_from(["a", "b", "c"]),
    st.integers(min_value=-3, max_value=3),
    st.sampled_from([0.5, -1.5, 2.0]),
)
_ROWS = st.lists(st.tuples(_VALUES, _VALUES, _VALUES), max_size=40)


def _drain(service, pattern, inputs):
    """Every page of an invocation, plus one past the reported end."""
    pages = []
    page = 0
    while True:
        result = service.invoke(pattern, inputs, page)
        pages.append((result.tuples, result.ranks, result.has_more))
        if not result.has_more or page > 60:
            break
        page += 1
    # One page beyond the end must agree too (empty vs empty).
    extra = service.invoke(pattern, inputs, page + 1)
    pages.append((extra.tuples, extra.ranks, extra.has_more))
    return pages


class TestExactDifferential:
    @settings(max_examples=25, deadline=None)
    @given(rows=_ROWS, chunk=st.sampled_from([None, 1, 2, 3, 7]),
           key=st.sampled_from(["a", "b", 1]), data=st.data())
    def test_matches_oracle_page_by_page(self, rows, chunk, key, data):
        profile = exact_profile(erspi=2.0, response_time=1.0, chunk_size=chunk)
        oracle = TableExactService(SIG, profile, rows)
        backend = SQLiteExactService(SIG, profile, rows)
        try:
            pattern = SIG.pattern(data.draw(st.sampled_from(["ioo", "iio", "ooo"])))
            inputs = {k: key if k == 0 else data.draw(_VALUES)
                      for k in pattern.input_positions}
            if chunk is None:
                a = oracle.invoke(pattern, inputs)
                b = backend.invoke(pattern, inputs)
                assert (a.tuples, a.ranks, a.has_more) == (
                    b.tuples, b.ranks, b.has_more
                )
            else:
                assert _drain(oracle, pattern, inputs) == _drain(
                    backend, pattern, inputs
                )
        finally:
            backend.close()

    def test_rows_property_and_len(self):
        rows = [("a", 1, 0.5), ("b", 2, 1.5)]
        backend = SQLiteExactService(
            SIG, exact_profile(erspi=2.0, response_time=1.0, chunk_size=2), rows
        )
        assert backend.rows == tuple(rows)
        assert len(backend) == 2
        backend.close()

    def test_arity_mismatch_rejected(self):
        with pytest.raises(InvocationError, match="arity"):
            SQLiteExactService(
                SIG, exact_profile(erspi=1.0, response_time=1.0), [("a", 1)]
            )

    def test_rows_or_path_required(self):
        with pytest.raises(InvocationError, match="rows are required"):
            SQLiteExactService(
                SIG, exact_profile(erspi=1.0, response_time=1.0), None
            )


class TestSearchDifferential:
    @settings(max_examples=25, deadline=None)
    @given(rows=_ROWS, chunk=st.integers(min_value=1, max_value=5),
           decay=st.sampled_from([None, 1, 3, 8, 100]),
           key=st.sampled_from(["a", "b", 1]))
    def test_matches_oracle_page_by_page(self, rows, chunk, decay, key):
        # Coarse score → many ties → the DESC sort must fall back to
        # storage order exactly as Python's stable sort does.
        score = lambda row: float(hash(str(row[1])) % 3)  # noqa: E731
        profile = search_profile(chunk_size=chunk, response_time=1.0, decay=decay)
        oracle = TableSearchService(SIG, profile, rows, score)
        backend = SQLiteSearchService(SIG, profile, rows, score)
        try:
            pattern = SIG.pattern("ioo")
            assert _drain(oracle, pattern, {0: key}) == _drain(
                backend, pattern, {0: key}
            )
        finally:
            backend.close()

    def test_requires_search_profile(self):
        with pytest.raises(InvocationError, match="search profile"):
            SQLiteSearchService(
                SIG, exact_profile(erspi=1.0, response_time=1.0, chunk_size=2),
                [("a", 1, 2)], score=lambda row: 0.0,
            )

    def test_score_required_to_load_rows(self):
        with pytest.raises(InvocationError, match="score function"):
            SQLiteSearchService(
                SIG, search_profile(chunk_size=2, response_time=1.0),
                [("a", 1, 2)], score=None,
            )


def _plan_rows(registry, mode, lazy=True, parallel_pool=False, k=12):
    from repro.costs.time_cost import ExecutionTimeMetric
    from repro.optimizer.optimizer import Optimizer, OptimizerConfig

    query = experts_query()
    best = Optimizer(
        registry, ExecutionTimeMetric(), OptimizerConfig(k=k)
    ).optimize(query)
    if parallel_pool:
        executor = ParallelExecutor(registry, workers=4)
        result = executor.execute(best.plan, head=query.head, k=k)
    else:
        engine = ExecutionEngine(registry, mode=mode, lazy_streaming=lazy)
        result = engine.execute(best.plan, head=query.head, k=k)
    return [
        (dict(row.bindings), tuple(rank for _, rank in row.ranks))
        for row in result.rows
    ]


class TestPlanLevelBitIdentity:
    """biblio on sqlite == biblio on memory, through whole plans."""

    CORPUS = None  # built once per class (generate_corpus is pure)

    @classmethod
    def corpus(cls):
        if cls.CORPUS is None:
            cls.CORPUS = generate_corpus(400, seed=3)
        return cls.CORPUS

    @pytest.mark.parametrize(
        "mode,lazy,pool",
        [
            (ExecutionMode.PARALLEL, True, False),
            (ExecutionMode.STREAMED, True, False),
            (ExecutionMode.STREAMED, False, False),
            (ExecutionMode.PARALLEL, True, True),
        ],
        ids=["parallel", "streamed-lazy", "streamed-eager", "thread-pool"],
    )
    def test_backends_agree(self, mode, lazy, pool):
        corpus = self.corpus()
        memory = _plan_rows(
            biblio_registry(backend="memory", corpus=corpus), mode, lazy, pool
        )
        sqlite_ = _plan_rows(
            biblio_registry(backend="sqlite", corpus=corpus), mode, lazy, pool
        )
        assert memory == sqlite_
        assert memory  # the planted ground truth produces answers


@pytest.mark.skipif(not fts5_available(), reason="sqlite3 lacks FTS5")
class TestFTS5:
    SIG = signature("pub", ["Keyword", "Paper", "Title", "Year"], ["iooo"])

    def _docs(self, n=37):
        return [
            (
                f"P{i:03d}",
                f"ranking {'query optimization ' * (i % 3)}paper number {i}",
                2000 + i % 9,
            )
            for i in range(n)
        ]

    def _service(self, chunk=4, decay=None, docs=None):
        return FTS5SearchService(
            self.SIG,
            search_profile(chunk_size=chunk, response_time=1.0, decay=decay),
            self._docs() if docs is None else docs,
            query_position=0,
            text_of=lambda document: str(document[1]),
        )

    def test_paged_equals_eager_and_ranks_monotone(self):
        service = self._service(chunk=4)
        try:
            pattern = self.SIG.pattern("iooo")
            paged, page = [], 0
            while True:
                result = service.invoke(pattern, {0: "optimization"}, page)
                assert list(result.ranks) == list(
                    range(page * 4, page * 4 + len(result.tuples))
                )
                paged.extend(result.tuples)
                if not result.has_more:
                    break
                page += 1
            # One eager drain with a huge chunk sees the same ranking.
            eager = self._service(chunk=1000)
            try:
                whole = eager.invoke(pattern, {0: "optimization"})
                assert list(whole.tuples) == paged
            finally:
                eager.close()
            assert all(t[0] == "optimization" and len(t) == 4 for t in paged)
        finally:
            service.close()

    def test_decay_truncates(self):
        service = self._service(chunk=4, decay=6)
        try:
            pattern = self.SIG.pattern("iooo")
            first = service.invoke(pattern, {0: "paper"}, 0)
            second = service.invoke(pattern, {0: "paper"}, 1)
            beyond = service.invoke(pattern, {0: "paper"}, 2)
            assert len(first) == 4 and first.has_more
            assert len(second) == 2 and not second.has_more
            assert beyond.tuples == () and not beyond.has_more
        finally:
            service.close()

    def test_match_query_is_sanitized(self):
        assert FTS5SearchService.match_query("query optimization") == (
            '"query" "optimization"'
        )
        assert FTS5SearchService.match_query('a"b AND c') == '"a""b" "AND" "c"'
        assert FTS5SearchService.match_query("   ") == '""'
        service = self._service()
        try:
            pattern = self.SIG.pattern("iooo")
            # FTS5 operators arrive as literal tokens, not syntax.
            result = service.invoke(pattern, {0: "paper NEAR nothing)"}, 0)
            assert result.tuples == ()
            assert service.invoke(pattern, {0: "zzz-no-hit"}, 0).tuples == ()
        finally:
            service.close()

    def test_rejects_multi_input_patterns(self):
        bad = signature("pub", ["Keyword", "Paper", "Title", "Year"], ["iioo"])
        with pytest.raises(InvocationError, match="must bind exactly"):
            FTS5SearchService(
                bad, search_profile(chunk_size=2, response_time=1.0), [],
            )

    def test_document_arity_checked(self):
        with pytest.raises(InvocationError, match="fields"):
            self._service(docs=[("only", "two")])

    def test_len(self):
        service = self._service()
        try:
            assert len(service) == 37
        finally:
            service.close()


class TestPersistence:
    def test_exact_roundtrip(self, tmp_path):
        rows = [("a", i, float(i)) for i in range(25)]
        profile = exact_profile(erspi=2.0, response_time=1.0, chunk_size=4)
        path = tmp_path / "rel.db"
        built = SQLiteExactService(SIG, profile, rows, path=path)
        built.close()
        oracle = TableExactService(SIG, profile, rows)
        attached = SQLiteExactService(SIG, profile, None, path=path)
        try:
            pattern = SIG.pattern("ioo")
            assert _drain(oracle, pattern, {0: "a"}) == _drain(
                attached, pattern, {0: "a"}
            )
        finally:
            attached.close()

    def test_search_attach_reuses_materialized_scores(self, tmp_path):
        rows = [("a", i % 4, float(i)) for i in range(30)]
        score = lambda row: float(row[1])  # noqa: E731
        profile = search_profile(chunk_size=3, response_time=1.0, decay=11)
        path = tmp_path / "search.db"
        SQLiteSearchService(SIG, profile, rows, score, path=path).close()
        oracle = TableSearchService(SIG, profile, rows, score)
        attached = SQLiteSearchService(SIG, profile, None, None, path=path)
        try:
            pattern = SIG.pattern("ioo")
            assert _drain(oracle, pattern, {0: "a"}) == _drain(
                attached, pattern, {0: "a"}
            )
        finally:
            attached.close()

    def test_attach_missing_database_rejected(self, tmp_path):
        with pytest.raises(InvocationError, match="cannot attach"):
            SQLiteExactService(
                SIG, exact_profile(erspi=1.0, response_time=1.0),
                None, path=tmp_path / "absent.db",
            )

    def test_attach_unknown_schema_version_rejected(self, tmp_path):
        path = tmp_path / "weird.db"
        with sqlite3.connect(path) as connection:
            connection.execute("CREATE TABLE rows (pos INTEGER PRIMARY KEY, c0)")
            connection.execute("PRAGMA user_version=99")
        with pytest.raises(InvocationError, match="schema version"):
            SQLiteExactService(
                signature("rel", ["K"], ["i"]),
                exact_profile(erspi=1.0, response_time=1.0), None, path=path,
            )


class TestThreadSafety:
    def test_concurrent_invocations_match_oracle(self):
        rows = [(k, i % 5, float(i)) for i in range(60) for k in "ab"]
        score = lambda row: float(row[1])  # noqa: E731
        profile = search_profile(chunk_size=4, response_time=1.0, decay=30)
        oracle = TableSearchService(SIG, profile, rows, score)
        backend = SQLiteSearchService(SIG, profile, rows, score)
        pattern = SIG.pattern("ioo")
        expected = {
            (key, page): oracle.invoke(pattern, {0: key}, page)
            for key in "ab" for page in range(4)
        }
        errors = []

        def hammer():
            try:
                for _ in range(20):
                    for (key, page), want in expected.items():
                        got = backend.invoke(pattern, {0: key}, page)
                        assert got.tuples == want.tuples
                        assert got.ranks == want.ranks
            except Exception as error:  # surfaced on the main thread
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        backend.close()
        assert not errors
