"""Unit tests for phase 1: permissibility and cogency (Example 4.1)."""

import pytest

from repro.model.atoms import atom
from repro.model.query import query
from repro.model.schema import schema_of, signature
from repro.model.terms import Variable
from repro.optimizer.patterns import (
    cogency_sorted,
    is_executable,
    most_cogent_sequences,
    permissible_sequences,
    select_patterns,
    sequence_is_more_cogent,
    sequence_is_strictly_more_cogent,
)
from repro.sources.travel import running_example_query, travel_schema


class TestExecutability:
    def test_constant_seed_chain(self):
        schema = schema_of(
            [
                signature("a", ["K", "X"], ["io"]),
                signature("b", ["X", "Y"], ["io"]),
            ]
        )
        q = query("q", [Variable("Y")], [atom("a", "k", "X"), atom("b", "X", "Y")])
        patterns = (schema.get("a").pattern("io"), schema.get("b").pattern("io"))
        assert is_executable(q, patterns)

    def test_circular_inputs_not_executable(self):
        schema = schema_of(
            [
                signature("a", ["X", "Y"], ["io"]),
                signature("b", ["Y", "X"], ["io"]),
            ]
        )
        q = query(
            "q", [Variable("X")], [atom("a", "X", "Y"), atom("b", "Y", "X")]
        )
        patterns = (schema.get("a").pattern("io"), schema.get("b").pattern("io"))
        assert not is_executable(q, patterns)

    def test_order_independence_of_fixpoint(self):
        # b must run first even though it appears second.
        schema = schema_of(
            [
                signature("a", ["X", "Y"], ["io"]),
                signature("b", ["X"], ["o"]),
            ]
        )
        q = query("q", [Variable("Y")], [atom("a", "X", "Y"), atom("b", "X")])
        patterns = (schema.get("a").pattern("io"), schema.get("b").pattern("o"))
        assert is_executable(q, patterns)

    def test_pattern_count_checked(self):
        q = query("q", [Variable("X")], [atom("a", "X")])
        with pytest.raises(ValueError):
            is_executable(q, ())


class TestExample41:
    """The paper's Example 4.1, on the real running-example schema."""

    def test_three_permissible_sequences(self):
        q = running_example_query()
        sequences = permissible_sequences(q, travel_schema())
        # conf has 2 patterns x hotel has 2 patterns = 4 combinations;
        # α3 = (conf City-driven, hotel City-driven) is not permissible.
        assert len(sequences) == 3
        codes = {(s[2].code, s[1].code) for s in sequences}
        assert ("ooooi", "oiiiio") not in codes

    def test_alpha3_not_permissible(self):
        q = running_example_query()
        schema = travel_schema()
        alpha3 = (
            schema.get("flight").pattern("iiiiooo"),
            schema.get("hotel").pattern("oiiiio"),
            schema.get("conf").pattern("ooooi"),
            schema.get("weather").pattern("ioi"),
        )
        assert not is_executable(q, alpha3)

    def test_most_cogent_are_alpha1_and_alpha4(self):
        q = running_example_query()
        sequences = permissible_sequences(q, travel_schema())
        top = most_cogent_sequences(sequences)
        assert len(top) == 2
        codes = {(s[2].code, s[1].code) for s in top}
        assert codes == {("ioooo", "oiiiio"), ("ooooi", "oooooo")}

    def test_alpha1_dominates_alpha2(self):
        q = running_example_query()
        schema = travel_schema()
        alpha1 = (
            schema.get("flight").pattern("iiiiooo"),
            schema.get("hotel").pattern("oiiiio"),
            schema.get("conf").pattern("ioooo"),
            schema.get("weather").pattern("ioi"),
        )
        alpha2 = (
            schema.get("flight").pattern("iiiiooo"),
            schema.get("hotel").pattern("oooooo"),
            schema.get("conf").pattern("ioooo"),
            schema.get("weather").pattern("ioi"),
        )
        assert sequence_is_strictly_more_cogent(alpha1, alpha2)
        assert not sequence_is_more_cogent(alpha2, alpha1)
        del q


class TestOrdering:
    def test_cogency_sorted_puts_most_cogent_first(self):
        q = running_example_query()
        sequences = permissible_sequences(q, travel_schema())
        ordered = cogency_sorted(sequences)
        top = set(most_cogent_sequences(sequences))
        boundary = len(top)
        assert all(s in top for s in ordered[:boundary])
        assert all(s not in top for s in ordered[boundary:])

    def test_select_patterns_packaging(self):
        q = running_example_query()
        phase = select_patterns(q, travel_schema())
        assert phase.raw_space_size == 3
        assert len(phase.most_cogent) == 2
        assert len(phase.ordered) == 3

    def test_sequences_of_different_length_rejected(self):
        from repro.model.schema import AccessPattern

        with pytest.raises(ValueError):
            sequence_is_more_cogent(
                (AccessPattern("i"),), (AccessPattern("i"), AccessPattern("o"))
            )
