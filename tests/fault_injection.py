"""Re-export shim: the fault-injection kit now lives in the package.

The harness was promoted to :mod:`repro.testing.faults` (PR 8) so
benchmarks and the serving suites can inject faults without path
hacks; this module keeps every historical import site working.
"""

from repro.testing.faults import (  # noqa: F401
    FAULT_KINDS,
    FaultSchedule,
    FlakyService,
    InjectedFault,
    wrap_registry_flaky,
)

__all__ = [
    "FAULT_KINDS",
    "FaultSchedule",
    "FlakyService",
    "InjectedFault",
    "wrap_registry_flaky",
]
