"""Tests for the travel services (Figure 2 schema, Table 1 profiles)."""

import pytest

from repro.model.schema import AccessPattern
from repro.services.registry import JoinMethod
from repro.sources.travel import (
    CONF_TAU,
    FLIGHT_CHUNK,
    FLIGHT_TAU,
    HOTEL_CHUNK,
    HOTEL_TAU,
    WEATHER_TAU,
    travel_registry,
    travel_schema,
)


class TestSchema:
    def test_figure2_services(self):
        schema = travel_schema()
        assert set(schema.names) == {"conf", "weather", "flight", "hotel"}

    def test_conf_has_two_patterns(self):
        codes = {p.code for p in travel_schema().get("conf").patterns}
        assert codes == {"ioooo", "ooooi"}

    def test_hotel_second_pattern_all_output(self):
        codes = {p.code for p in travel_schema().get("hotel").patterns}
        assert "oooooo" in codes


class TestProfiles:
    """The Table 1 characterization."""

    def test_conf_profile(self, registry):
        profile = registry.profile("conf")
        assert profile.is_exact and profile.is_bulk
        assert profile.erspi == pytest.approx(20.0)
        assert profile.response_time == pytest.approx(CONF_TAU)

    def test_weather_profile(self, registry):
        profile = registry.profile("weather")
        assert profile.is_exact
        assert profile.response_time == pytest.approx(WEATHER_TAU)

    def test_flight_profile(self, registry):
        profile = registry.profile("flight")
        assert profile.is_search
        assert profile.chunk_size == FLIGHT_CHUNK
        assert profile.response_time == pytest.approx(FLIGHT_TAU)

    def test_hotel_profile(self, registry):
        profile = registry.profile("hotel")
        assert profile.is_search
        assert profile.chunk_size == HOTEL_CHUNK
        assert profile.response_time == pytest.approx(HOTEL_TAU)

    def test_city_driven_conf_is_less_proliferative(self, registry):
        assert registry.profile("conf", "ooooi").erspi < registry.profile(
            "conf", "ioooo"
        ).erspi


class TestBehaviour:
    def test_conf_db_call_returns_71(self, registry):
        result = registry.service("conf").invoke(
            AccessPattern("ioooo"), {0: "DB"}
        )
        assert len(result) == 71

    def test_weather_lookup(self, registry, world):
        city = world.hot_cities[0]
        from repro.sources.world import city_dates

        start, _ = city_dates(city)
        result = registry.service("weather").invoke(
            AccessPattern("ioi"), {0: city, 2: start}
        )
        assert len(result) == 1
        assert result.tuples[0][1] >= 28

    def test_flight_ranked_by_price(self, registry, world):
        from repro.sources.world import city_dates

        city = "Cancun"
        start, end = city_dates(city)
        result = registry.service("flight").invoke(
            AccessPattern("iiiiooo"),
            {0: "Milano", 1: city, 2: start, 3: end},
        )
        prices = [row[6] for row in result.tuples]
        assert prices == sorted(prices)
        assert len(result) == 20  # within one chunk of 25

    def test_hotel_chunking(self, registry, world):
        from repro.sources.world import city_dates

        city = "Cancun"
        start, end = city_dates(city)
        result = registry.service("hotel").invoke(
            AccessPattern("oiiiio"),
            {1: city, 2: "luxury", 3: start, 4: end},
        )
        assert len(result) == 5
        assert not result.has_more  # exactly one chunk of luxury hotels

    def test_hotel_has_remote_caching_flight_does_not(self, registry, world):
        from repro.sources.world import city_dates

        city = "Cancun"
        start, end = city_dates(city)
        hotel_inputs = {1: city, 2: "luxury", 3: start, 4: end}
        hotel = registry.service("hotel")
        hotel.invoke(AccessPattern("oiiiio"), hotel_inputs)
        repeat = hotel.invoke(AccessPattern("oiiiio"), hotel_inputs)
        assert repeat.from_remote_cache

        flight_inputs = {0: "Milano", 1: city, 2: start, 3: end}
        flight = registry.service("flight")
        flight.invoke(AccessPattern("iiiiooo"), flight_inputs)
        again = flight.invoke(AccessPattern("iiiiooo"), flight_inputs)
        assert not again.from_remote_cache

    def test_flight_hotel_join_method_is_merge_scan(self, registry):
        # "Since no decay is known for either hotel or flight,
        # merge-scan is used" (Example 5.1).
        assert registry.join_method("flight", "hotel") is JoinMethod.MERGE_SCAN
