"""Property-based tests for phase 3 (fetch assignment)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costs.sum_cost import RequestResponseMetric
from repro.costs.time_cost import ExecutionTimeMetric
from repro.execution.cache import CacheSetting
from repro.optimizer.fetches import (
    FetchContext,
    exhaustive_assignment,
    greedy_assignment,
    square_assignment,
)
from repro.plans.builder import PlanBuilder
from repro.sources.travel import (
    FLIGHT_ATOM,
    HOTEL_ATOM,
    alpha1_patterns,
    poset_optimal,
    poset_serial,
    running_example_query,
    travel_registry,
)

_REGISTRY = travel_registry()
_QUERY = running_example_query()
_BUILDER = PlanBuilder(_QUERY, _REGISTRY)

_k_values = st.integers(1, 60)


def _context(poset, metric):
    plan = _BUILDER.build(alpha1_patterns(), poset)
    return FetchContext(plan, metric, CacheSetting.ONE_CALL)


class TestFeasibility:
    @given(_k_values)
    @settings(max_examples=25, deadline=None)
    def test_greedy_meets_k(self, k):
        result = greedy_assignment(_context(poset_optimal(), ExecutionTimeMetric()), k)
        assert result.feasible
        assert result.output_size >= k

    @given(_k_values)
    @settings(max_examples=25, deadline=None)
    def test_square_meets_k(self, k):
        result = square_assignment(_context(poset_optimal(), ExecutionTimeMetric()), k)
        assert result.feasible

    @given(_k_values)
    @settings(max_examples=15, deadline=None)
    def test_exhaustive_meets_k_on_serial_plan(self, k):
        result = exhaustive_assignment(
            _context(poset_serial(), RequestResponseMetric()), k
        )
        assert result.feasible


class TestOptimality:
    @given(st.integers(1, 40))
    @settings(max_examples=15, deadline=None)
    def test_exhaustive_never_worse_than_heuristics(self, k):
        context = _context(poset_optimal(), ExecutionTimeMetric())
        best = exhaustive_assignment(context, k)
        for heuristic in (greedy_assignment, square_assignment):
            other = heuristic(context, k)
            if other.feasible:
                assert best.cost <= other.cost + 1e-9

    @given(st.integers(1, 40))
    @settings(max_examples=15, deadline=None)
    def test_exhaustive_result_is_minimal(self, k):
        context = _context(poset_optimal(), RequestResponseMetric())
        best = exhaustive_assignment(context, k)
        for atom_index in (FLIGHT_ATOM, HOTEL_ATOM):
            if best.fetches[atom_index] <= 1:
                continue
            shrunk = dict(best.fetches)
            shrunk[atom_index] -= 1
            trial = context.evaluate(shrunk, k)
            assert (not trial.feasible) or trial.cost >= best.cost - 1e-9


class TestOutputModel:
    @given(st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_fast_output_size_matches_annotation(self, f_flight, f_hotel):
        """h(F) = h(1) * prod F_i must agree with the full annotation."""
        context = _context(poset_optimal(), ExecutionTimeMetric())
        fetches = {FLIGHT_ATOM: f_flight, HOTEL_ATOM: f_hotel}
        fast = context.output_size(fetches)
        exact = context.annotate(fetches).output_size
        assert fast == pytest.approx(exact)

    @given(st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_output_monotone_in_fetches(self, f_flight, f_hotel):
        context = _context(poset_optimal(), ExecutionTimeMetric())
        base = context.output_size({FLIGHT_ATOM: f_flight, HOTEL_ATOM: f_hotel})
        more = context.output_size({FLIGHT_ATOM: f_flight + 1, HOTEL_ATOM: f_hotel})
        assert more >= base
