"""Hypothesis differential suite for multi-feed lazy cursors.

The :class:`~repro.execution.lazy.MultiFeedCursor` is the piece that
extends demand-driven fetching to *multi-feed* service nodes — the
input shape of serial plans, where an upstream chain proliferates into
many feed tuples and each one opens its own budgeted block of pages.
Everything here is differential against the same oracles the
single-feed suite uses:

* cursor level — a :class:`JoinStream` over a ``MultiFeedCursor``
  (random block counts, block sizes, chunk sizes, base ranks, and k)
  must be bit-identical to ``compose_ranking(execute_join(...), k)``
  over the eager feed-order concatenation, and must never fetch more
  pages than the eager universe holds;
* engine level — a serial-shaped plan (feeder → multi-feed service,
  joined with a single-feed service) under ``ExecutionMode.STREAMED``
  must agree bit-for-bit with the eager streamed path and the
  full-scan ``PARALLEL`` oracle while fetching **at most** as many raw
  tuples as eager materialization (mirroring the random-chunk engine
  differential of ``tests/test_property_streaming.py``);
* resumes — growing ``k`` on a suspended multi-feed stream stays exact
  and only ever advances the walk.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execution.cache import CacheSetting
from repro.execution.engine import ExecutionEngine, ExecutionMode
from repro.execution.joins import JoinStream, execute_join
from repro.execution.lazy import LazyServiceCursor, ListPageSource, MultiFeedCursor
from repro.execution.results import Row, compose_ranking
from repro.model.atoms import Atom
from repro.model.query import ConjunctiveQuery
from repro.model.schema import signature
from repro.model.terms import Constant, Variable
from repro.plans.builder import PlanBuilder, Poset
from repro.services.profile import search_profile
from repro.services.registry import JoinMethod, ServiceRegistry
from repro.services.table import TableSearchService

METHODS = (JoinMethod.NESTED_LOOP, JoinMethod.MERGE_SCAN)


def _signature(rows):
    return [(dict(r.bindings), r.ranks) for r in rows]


def _block_rows(base: int, service_ranks: list[int], side: str, block: int) -> list[Row]:
    """One feed block: base rank from the feed, growing service ranks."""
    variable = Variable(side)
    return [
        Row(
            bindings={Variable("K"): 0, variable: (block, index)},
            ranks=((f"feed{block}", base), (side, rank)),
        )
        for index, rank in enumerate(service_ranks)
    ]


def _paged(rows: list[Row], chunk: int) -> list[list[Row]]:
    return [rows[i : i + chunk] for i in range(0, len(rows), chunk)] or [[]]


def _multi_feed_cursor(
    blocks: list[tuple[int, list[int]]], side: str, chunk: int
) -> tuple[MultiFeedCursor, list[Row]]:
    """Cursor over per-feed blocks plus the eager concatenation oracle.

    Each block is ``(base_rank, sorted service ranks)``; since the
    rank *values* are arbitrary (not positions), each page's reported
    floor is the smallest service rank any later page holds — the
    tightest sound floor, unlike the tuples-seen convention real
    search services use (sound there because rank == position).
    """
    cursors: list[LazyServiceCursor] = []
    eager: list[Row] = []
    for index, (base, service_ranks) in enumerate(blocks):
        ordered = sorted(service_ranks)
        rows = _block_rows(base, ordered, side, index)
        eager.extend(rows)
        pages = _paged(rows, chunk)
        floors: list[int] = []
        seen = 0
        for page in pages:
            seen += len(page)
            floors.append(ordered[seen] if seen < len(ordered) else 10**9)
        source = ListPageSource(pages=pages, rank_floors=floors)
        cursors.append(LazyServiceCursor(source, base_rank=base))
    return MultiFeedCursor(cursors), eager


_blocks = st.lists(
    st.tuples(
        st.integers(0, 6),  # feed base rank
        st.lists(st.integers(0, 6), min_size=0, max_size=5),  # service ranks
    ),
    min_size=0,
    max_size=4,
)
_chunks = st.integers(1, 3)
_k = st.one_of(st.none(), st.integers(0, 30))


class TestMultiFeedCursorUnits:
    def test_zero_blocks_is_exhausted_and_empty(self):
        cursor, eager = _multi_feed_cursor([], "L", 1)
        assert cursor.exhausted
        assert cursor.rows == [] == eager
        assert cursor.suffix_min(0) == math.inf
        assert cursor.block_count == 0
        cursor.ensure(5)  # must be a harmless no-op
        assert cursor.rows == []

    def test_placement_follows_feed_order(self):
        cursor, eager = _multi_feed_cursor(
            [(0, [0, 1, 2]), (1, [0, 1]), (5, [0])], "L", 2
        )
        cursor.ensure_all()
        assert cursor.exhausted
        assert [r.rank_key() for r in cursor.rows] == [
            r.rank_key() for r in eager
        ]
        assert _signature(cursor.rows) == _signature(eager)
        assert cursor.block_count == 3
        assert cursor.blocks_untouched == 0

    def test_untouched_blocks_bound_the_certificate(self):
        # Block 0 is cheap, block 1 starts at base rank 5: demanding
        # one row must leave block 1 untouched, with the certificate
        # bounded by its floor (5), not by +inf.
        cursor, _ = _multi_feed_cursor([(0, [0, 1]), (5, [0, 1])], "L", 2)
        cursor.ensure(1)
        assert cursor.blocks_untouched == 1
        assert cursor.suffix_min(len(cursor.rows)) == 5
        # The floor of every unexhausted block keeps participating:
        # indexes inside the placed prefix are bounded by min(exact, 5).
        assert cursor.suffix_min(0) == 0

    def test_lowest_floor_block_is_pulled_first(self):
        # Feed ranks are *descending* (2, 0): the interleaving must
        # pull the lowest-floor block (the second) before placement
        # can even begin, buffering its rows until block 0 drains.
        cursor, eager = _multi_feed_cursor([(2, [0, 1]), (0, [0, 1])], "L", 1)
        cursor.ensure(1)
        blocks = cursor._blocks
        assert blocks[1].pages_fetched > 0
        assert len(cursor.rows) >= 1
        cursor.ensure_all()
        assert _signature(cursor.rows) == _signature(eager)

    def test_fetches_never_exceed_the_eager_universe(self):
        cursor, _ = _multi_feed_cursor(
            [(0, list(range(5))), (1, list(range(5)))], "L", 2
        )
        cursor.ensure_all()
        cursor.ensure_all()
        total_pages = sum(b.pages_fetched for b in cursor._blocks)
        assert total_pages == 3 + 3  # ceil(5/2) pages per block, once

    def test_non_monotone_block_drains_itself_only(self):
        # Block 0's service ranks regress within its first page: that
        # block must fall back to a full fetch the moment the
        # violation is observed, while block 1 stays lazy.
        rows0 = (
            _block_rows(0, [5], "L", 0)
            + _block_rows(0, [1], "L", 0)
            + _block_rows(0, [2, 3], "L", 0)
        )
        pages0 = _paged(rows0, 2)
        source0 = ListPageSource(pages=pages0, rank_floors=[1, 10**9])
        block0 = LazyServiceCursor(source0, base_rank=0)
        cursor1, _ = _multi_feed_cursor([(3, [0, 1, 2, 3])], "L", 2)
        block1 = cursor1._blocks[0]
        cursor = MultiFeedCursor([block0, block1])
        cursor.ensure(1)  # first page of block 0 observes the regression
        assert block0.exhausted  # drained defensively
        assert not block1.exhausted
        assert cursor.suffix_min(0) == 1  # exact minima over block 0


class TestMultiFeedJoinStreamMatchesOracle:
    @given(_blocks, _blocks, _chunks, _chunks, _k)
    @settings(max_examples=120, deadline=None)
    def test_bit_identical_to_full_scan(self, lb, rb, cl, cr, k):
        for method in METHODS:
            left_cursor, left_eager = _multi_feed_cursor(lb, "L", cl)
            right_cursor, right_eager = _multi_feed_cursor(rb, "R", cr)
            oracle = compose_ranking(
                execute_join(method, left_eager, right_eager), k
            )
            stream = JoinStream(method, left_cursor, right_cursor)
            assert _signature(stream.top(k)) == _signature(oracle)

    @given(_blocks, _blocks, _chunks, _chunks, st.integers(0, 5), st.integers(0, 30))
    @settings(max_examples=80, deadline=None)
    def test_resumed_multi_feed_stream_stays_exact(self, lb, rb, cl, cr, k1, extra):
        left_cursor, left_eager = _multi_feed_cursor(lb, "L", cl)
        right_cursor, right_eager = _multi_feed_cursor(rb, "R", cr)
        full = execute_join(JoinMethod.MERGE_SCAN, left_eager, right_eager)
        stream = JoinStream(JoinMethod.MERGE_SCAN, left_cursor, right_cursor)
        assert _signature(stream.top(k1)) == _signature(compose_ranking(full, k1))
        visited = stream.cells_visited
        k2 = k1 + extra
        assert _signature(stream.top(k2)) == _signature(compose_ranking(full, k2))
        assert stream.cells_visited >= visited
        assert _signature(stream.top(None)) == _signature(compose_ranking(full))

    @given(
        st.integers(1, 6),
        st.integers(1, 8),
        st.integers(1, 4),
        _chunks,
    )
    @settings(max_examples=40, deadline=None)
    def test_small_k_leaves_far_blocks_untouched(self, blocks, per, k, chunk):
        """Ranked feeds: blocks whose base rank exceeds the certificate
        threshold are never pulled at all."""
        spec = [(base * per, list(range(per))) for base in range(blocks)]
        left_cursor, left_eager = _multi_feed_cursor(spec, "L", chunk)
        right_cursor, right_eager = _multi_feed_cursor(
            [(0, list(range(per)))], "R", chunk
        )
        stream = JoinStream(JoinMethod.MERGE_SCAN, left_cursor, right_cursor)
        rows = stream.top(k)
        oracle = compose_ranking(
            execute_join(JoinMethod.MERGE_SCAN, left_eager, right_eager), k
        )
        assert _signature(rows) == _signature(oracle)
        pulled = sum(b.pages_fetched for b in left_cursor._blocks)
        universe = sum(-(-max(len(r), 1) // chunk) for _, r in spec)
        assert pulled <= universe


# -- engine level: serial-shaped plans --------------------------------------


def _serial_plan(feed_keys, block_keys, right_keys, chunk_left, chunk_right):
    """feeder → lefts (multi-feed) joined with single-feed rights.

    ``feeder`` is a ranked search service producing one tuple per feed
    key; every feeder tuple feeds ``lefts`` (so the final join's left
    input is a multi-feed node with one block per feeder tuple), while
    ``rights`` is fed straight from the input node.
    """
    feed_keys = list(feed_keys)
    registry = ServiceRegistry()
    registry.register(
        TableSearchService(
            signature("feeder", ["Q", "X"], ["io"]),
            search_profile(chunk_size=4, response_time=1.0),
            [("q", x) for x in feed_keys],  # duplicates allowed
            score=lambda row: float(-row[1]),
        )
    )
    registry.register(
        TableSearchService(
            signature("lefts", ["X", "K", "L"], ["ioo"]),
            search_profile(chunk_size=chunk_left, response_time=1.0),
            [
                (x, key, index)
                for x in sorted(set(feed_keys))
                for index, key in enumerate(block_keys)
            ],
            score=lambda row: float(-row[2]),
        )
    )
    registry.register(
        TableSearchService(
            signature("rights", ["Q", "K", "R"], ["ioo"]),
            search_profile(chunk_size=chunk_right, response_time=1.0),
            [("q", key, index) for index, key in enumerate(right_keys)],
            score=lambda row: float(-row[2]),
        )
    )
    key = Variable("K")
    x, lv, rv = Variable("X"), Variable("L"), Variable("R")
    query = ConjunctiveQuery(
        name="serial",
        head=(key, lv, rv),
        atoms=(
            Atom("feeder", (Constant("q"), x)),
            Atom("lefts", (x, key, lv)),
            Atom("rights", (Constant("q"), key, rv)),
        ),
        predicates=(),
    )
    plan = PlanBuilder(query, registry).build(
        (
            registry.signature("feeder").pattern("io"),
            registry.signature("lefts").pattern("ioo"),
            registry.signature("rights").pattern("ioo"),
        ),
        Poset(n=3, pairs=frozenset({(0, 1)})),
        fetches={0: 4, 1: 4, 2: 4},
    )
    return registry, tuple(query.head), plan


class TestSerialPlanEngineDifferential:
    @given(
        st.integers(1, 4),  # feeder tuples = blocks of the lefts node
        st.lists(st.integers(0, 2), min_size=1, max_size=5),
        st.lists(st.integers(0, 2), min_size=1, max_size=5),
        st.integers(1, 3),
        st.integers(1, 3),
        st.integers(0, 12),
        st.sampled_from(METHODS),
    )
    @settings(max_examples=25, deadline=None)
    def test_lazy_equals_eager_equals_oracle_on_serial_plans(
        self, feeds, bk, rk, cl, cr, k, method
    ):
        registry, head, plan = _serial_plan(range(feeds), bk, rk, cl, cr)
        registry.register_join_method("lefts", "rights", method)
        lazy = ExecutionEngine(registry, mode=ExecutionMode.STREAMED).execute(
            plan, head=head, k=k
        )
        eager = ExecutionEngine(
            registry, mode=ExecutionMode.STREAMED, lazy_streaming=False
        ).execute(plan, head=head, k=k)
        oracle = ExecutionEngine(registry, mode=ExecutionMode.PARALLEL).execute(
            plan, head=head
        )
        expected = compose_ranking(oracle.rows, k)
        assert _signature(lazy.rows) == _signature(expected)
        assert _signature(eager.rows) == _signature(expected)
        assert not lazy.stats.streamed_fallback
        # The multi-feed node opens one block per feeder tuple.
        assert lazy.stats.lazy_blocks == feeds + 1  # + the rights cursor
        # Fetching is demand-driven: never more remote work than eager.
        assert lazy.stats.total_fetches <= eager.stats.total_fetches
        assert (
            lazy.stats.total_tuples_fetched <= eager.stats.total_tuples_fetched
        )

    def test_small_k_saves_remote_work_on_serial_plans(self):
        registry, head, plan = _serial_plan(
            range(4), list(range(8)), list(range(8)), 2, 2
        )
        registry.register_join_method("lefts", "rights", JoinMethod.MERGE_SCAN)
        lazy = ExecutionEngine(registry, mode=ExecutionMode.STREAMED).execute(
            plan, head=head, k=1
        )
        eager = ExecutionEngine(
            registry, mode=ExecutionMode.STREAMED, lazy_streaming=False
        ).execute(plan, head=head, k=1)
        oracle = ExecutionEngine(registry, mode=ExecutionMode.PARALLEL).execute(
            plan, head=head
        )
        assert _signature(lazy.rows) == _signature(compose_ranking(oracle.rows, 1))
        assert (
            lazy.stats.total_tuples_fetched < eager.stats.total_tuples_fetched
        )
        assert lazy.stats.lazy_calls_saved > 0
        assert lazy.stats.lazy_blocks_untouched > 0

    @given(st.integers(0, 10**4), st.sampled_from(list(CacheSetting)))
    @settings(max_examples=20, deadline=None)
    def test_answers_identical_under_every_cache_setting(self, seed, setting):
        """Cache settings (including ONE_CALL, whose hit pattern the
        interleaved pull order can degrade — duplicate feed keys lose
        the locality eager's contiguous order enjoys) may change fetch
        counts but never answers."""
        rng = __import__("random").Random(seed)
        feeds = rng.randint(2, 4)
        registry, head, plan = _serial_plan(
            [rng.randint(0, 1) for _ in range(feeds)],  # duplicate keys
            [rng.randint(0, 2) for _ in range(rng.randint(1, 4))],
            [rng.randint(0, 2) for _ in range(rng.randint(1, 4))],
            rng.randint(1, 3),
            rng.randint(1, 3),
        )
        registry.register_join_method(
            "lefts", "rights", JoinMethod.MERGE_SCAN
        )
        k = rng.randint(0, 10)
        lazy = ExecutionEngine(
            registry, mode=ExecutionMode.STREAMED, cache_setting=setting
        ).execute(plan, head=head, k=k)
        oracle = ExecutionEngine(
            registry, mode=ExecutionMode.PARALLEL, cache_setting=setting
        ).execute(plan, head=head)
        assert _signature(lazy.rows) == _signature(
            compose_ranking(oracle.rows, k)
        )

    def test_progressive_resume_grows_multi_feed_demand(self):
        from repro.execution.progressive import ProgressiveExecutor

        registry, head, plan = _serial_plan(
            range(3), list(range(8)), list(range(8)), 2, 2
        )
        registry.register_join_method("lefts", "rights", JoinMethod.MERGE_SCAN)
        executor = ProgressiveExecutor(
            registry=registry, plan=plan, head=head,
            mode=ExecutionMode.STREAMED,
        )
        first = executor.run(k=1)
        assert first.stream is not None
        first_fetches = first.stats.total_fetches
        more = executor.more(7)
        latest = executor.rounds[-1]
        assert latest.resumed
        # The grown demand pulled further budgeted pages, recorded on
        # the resumed round's stats; round 1 stays frozen.
        assert first.stats.total_fetches == first_fetches
        oracle = ExecutionEngine(registry, mode=ExecutionMode.PARALLEL).execute(
            plan, head=head
        )
        expected = compose_ranking(oracle.rows, 8)
        assert _signature(more.rows) == _signature(expected)


# -- heap vs linear-scan differential ---------------------------------------


class _LinearScanReference:
    """The pre-heap O(B)-per-pull selection logic, as a test oracle.

    Recomputes the lowest-floor block and the unplaced bound by full
    linear scans over a :class:`MultiFeedCursor`'s internals — exactly
    what the cursor did before the floor/bound heaps replaced the
    scans.  The differential drives a cursor step by step and checks
    the heap-served answers against these scans at every step.
    """

    @staticmethod
    def lowest_floor_index(cursor: MultiFeedCursor) -> int | None:
        best_index, best_floor = None, math.inf
        for index in range(cursor._front, len(cursor._blocks)):
            block = cursor._blocks[index]
            if block.exhausted:
                continue
            if block.floor < best_floor:
                best_index, best_floor = index, block.floor
        return best_index

    @staticmethod
    def unplaced_bound(cursor: MultiFeedCursor) -> float:
        bound = math.inf
        for index in range(cursor._front, len(cursor._blocks)):
            candidate = cursor._blocks[index].suffix_min(
                cursor._placed[index]
            )
            if candidate < bound:
                bound = candidate
        return bound

    @staticmethod
    def counters(cursor: MultiFeedCursor) -> tuple[int, int, int]:
        blocks = cursor._blocks
        return (
            sum(1 for b in blocks if b.pages_fetched == 0),
            sum(b.tuples_fetched for b in blocks),
            sum(b.pages_saved() for b in blocks),
        )


class TestHeapMatchesLinearScan:
    """The floor/bound heaps vs full recomputation, step by step."""

    @given(_blocks, _chunks, st.lists(st.integers(1, 4), max_size=8))
    @settings(max_examples=120, deadline=None)
    def test_stepwise_pulls_match_linear_scans(self, blocks, chunk, demands):
        cursor, eager = _multi_feed_cursor(blocks, "L", chunk)
        reference, _ = _multi_feed_cursor(blocks, "L", chunk)
        for demand in demands:
            target = len(cursor.rows) + demand
            while len(cursor.rows) < target and not cursor.exhausted:
                expected_index = _LinearScanReference.lowest_floor_index(
                    cursor
                )
                expected_pages = [
                    b.pages_fetched for b in cursor._blocks
                ]
                expected_pages[expected_index] += 1
                cursor._pull_lowest_floor()
                # the heap pulled exactly the linear scan's block (one
                # pull may drain extra pages on a monotonicity
                # violation, always within the selected block)
                pulled = [
                    i
                    for i, b in enumerate(cursor._blocks)
                    if b.pages_fetched
                    > expected_pages[i] - (1 if i == expected_index else 0)
                    and i != expected_index
                ]
                assert pulled == []
                assert (
                    cursor._blocks[expected_index].pages_fetched
                    >= expected_pages[expected_index]
                )
            reference.ensure(target)
            # same rows, same per-block fetch state, same certificate
            assert _signature(cursor.rows) == _signature(reference.rows)
            assert [b.pages_fetched for b in cursor._blocks] == [
                b.pages_fetched for b in reference._blocks
            ]
            for start in range(len(cursor.rows) + 2):
                assert cursor.suffix_min(start) == reference.suffix_min(start)
            assert cursor.suffix_min(len(cursor.rows)) == (
                _LinearScanReference.unplaced_bound(cursor)
            )

    @given(_blocks, _chunks, st.integers(0, 30))
    @settings(max_examples=100, deadline=None)
    def test_running_counters_match_recomputation(self, blocks, chunk, demand):
        cursor, eager = _multi_feed_cursor(blocks, "L", chunk)
        cursor.ensure(demand)
        untouched, tuples, saved = _LinearScanReference.counters(cursor)
        assert cursor.blocks_untouched == untouched
        assert cursor.tuples_fetched == tuples
        assert cursor.pages_saved() == saved
        cursor.ensure_all()
        untouched, tuples, saved = _LinearScanReference.counters(cursor)
        assert cursor.blocks_untouched == untouched
        assert cursor.tuples_fetched == tuples
        assert cursor.pages_saved() == saved
        assert _signature(cursor.rows) == _signature(eager)
        assert cursor.suffix_min(len(cursor.rows)) == math.inf

    def test_thousand_block_scenario_stays_lazy(self):
        """The O(log B) cursor at the scale the heap unlocks: 1000
        blocks, top-of-the-feed demand touches only a tiny prefix."""
        blocks = [(base, [base, base + 1, base + 2]) for base in range(1000)]
        cursor, eager = _multi_feed_cursor(blocks, "L", 2)
        cursor.ensure(10)
        assert _signature(cursor.rows[:10]) == _signature(eager[:10])
        assert cursor.blocks_untouched > 900  # the point of being lazy
        assert cursor.suffix_min(len(cursor.rows)) == (
            _LinearScanReference.unplaced_bound(cursor)
        )
