"""Unit tests for access patterns, signatures, and schemas (Sec. 3.1)."""

import pytest

from repro.model.schema import (
    AccessPattern,
    Schema,
    SchemaError,
    schema_of,
    signature,
)


class TestAccessPattern:
    def test_positions(self):
        pattern = AccessPattern("iooio")
        assert pattern.input_positions == (0, 3)
        assert pattern.output_positions == (1, 2, 4)
        assert pattern.arity == 5

    def test_is_input(self):
        pattern = AccessPattern("io")
        assert pattern.is_input(0)
        assert not pattern.is_input(1)

    def test_invalid_symbols_rejected(self):
        with pytest.raises(SchemaError):
            AccessPattern("ixo")

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            AccessPattern("")

    def test_cogency_reflexive(self):
        pattern = AccessPattern("io")
        assert pattern.is_more_cogent_than(pattern)
        assert not pattern.is_strictly_more_cogent_than(pattern)

    def test_cogency_more_inputs_wins(self):
        # Every input of 'ooooo' (none) is an input of 'ioooo'.
        more = AccessPattern("ioooo")
        less = AccessPattern("ooooo")
        assert more.is_more_cogent_than(less)
        assert more.is_strictly_more_cogent_than(less)
        assert not less.is_more_cogent_than(more)

    def test_cogency_incomparable(self):
        first = AccessPattern("io")
        second = AccessPattern("oi")
        assert not first.is_more_cogent_than(second)
        assert not second.is_more_cogent_than(first)

    def test_cogency_arity_mismatch(self):
        with pytest.raises(SchemaError):
            AccessPattern("io").is_more_cogent_than(AccessPattern("ioo"))


class TestServiceSignature:
    def test_basic_construction(self):
        sig = signature("conf", ["Topic", "Name", "City"], ["ioo", "ooi"])
        assert sig.arity == 3
        assert sig.pattern("ioo").code == "ioo"

    def test_unknown_pattern_lookup(self):
        sig = signature("conf", ["Topic", "Name", "City"], ["ioo"])
        with pytest.raises(SchemaError):
            sig.pattern("ooi")

    def test_pattern_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            signature("s", ["A", "B"], ["ioo"])

    def test_duplicate_patterns_rejected(self):
        with pytest.raises(SchemaError):
            signature("s", ["A", "B"], ["io", "io"])

    def test_no_patterns_rejected(self):
        with pytest.raises(SchemaError):
            signature("s", ["A"], [])

    def test_most_cogent_patterns(self):
        sig = signature("hotel", ["N", "C"], ["oi", "oo"])
        assert [p.code for p in sig.most_cogent_patterns()] == ["oi"]

    def test_most_cogent_keeps_incomparable(self):
        sig = signature("s", ["A", "B"], ["io", "oi"])
        assert {p.code for p in sig.most_cogent_patterns()} == {"io", "oi"}

    def test_describe_mentions_patterns(self):
        sig = signature("conf", ["Topic", "City"], ["io", "oi"])
        assert sig.describe() == "conf{io,oi}(Topic, City)"

    def test_domain_of(self):
        sig = signature("s", ["Topic", "City"], ["io"])
        assert sig.domain_of(1) == "City"


class TestSchema:
    def test_add_and_get(self):
        schema = Schema()
        sig = signature("s", ["A"], ["i"])
        schema.add(sig)
        assert schema.get("s") is sig
        assert "s" in schema
        assert len(schema) == 1

    def test_duplicate_rejected(self):
        schema = Schema()
        schema.add(signature("s", ["A"], ["i"]))
        with pytest.raises(SchemaError):
            schema.add(signature("s", ["A"], ["o"]))

    def test_unknown_lookup(self):
        with pytest.raises(SchemaError):
            Schema().get("nope")

    def test_schema_of_builds_from_iterable(self):
        schema = schema_of([signature("a", ["X"], ["o"]), signature("b", ["X"], ["i"])])
        assert schema.names == ("a", "b")

    def test_services_outputting_domain(self):
        schema = schema_of(
            [
                signature("towns", ["City"], ["o"]),
                signature("lookup", ["City"], ["i"]),
                signature("pair", ["Name", "City"], ["oi"]),
            ]
        )
        names = [s.name for s in schema.services_outputting_domain("City")]
        assert names == ["towns"]
