"""Unit tests for the cost metrics (Eq. 3, Eq. 4, bottleneck, TTS)."""

import pytest

from repro.costs.sum_cost import (
    MonetaryCostMetric,
    RequestResponseMetric,
    SumCostMetric,
)
from repro.costs.time_cost import (
    BottleneckMetric,
    ExecutionTimeMetric,
    TimeToScreenMetric,
)
from repro.execution.cache import CacheSetting
from repro.plans.annotate import annotate
from repro.plans.builder import PlanBuilder
from repro.sources.travel import (
    CONF_TAU,
    FLIGHT_ATOM,
    FLIGHT_TAU,
    HOTEL_ATOM,
    HOTEL_TAU,
    WEATHER_TAU,
    alpha1_patterns,
    poset_optimal,
    poset_parallel,
    poset_serial,
)


@pytest.fixture()
def builder(registry, travel_query):
    return PlanBuilder(travel_query, registry)


def _costed(builder, poset, fetches, metric, cache=CacheSetting.ONE_CALL):
    plan = builder.build(alpha1_patterns(), poset, fetches=fetches)
    annotation = annotate(plan, cache)
    return metric.cost(plan, annotation), plan, annotation


class TestExecutionTimeMetric:
    def test_plan_o_value(self, builder):
        # Paths: conf(1.2) -> weather(20 calls * 1.5 = 30 busy) ->
        # flight(3 * 1 * 9.7 = 29.1) -> MS -> OUT.  Bottleneck is
        # weather (30); fill/drain adds τ_conf + τ_flight.
        cost, _, _ = _costed(
            builder, poset_optimal(), {FLIGHT_ATOM: 3, HOTEL_ATOM: 4},
            ExecutionTimeMetric(),
        )
        expected = 30 + CONF_TAU + FLIGHT_TAU
        assert cost == pytest.approx(expected)

    def test_serial_plan_value(self, builder):
        # Eq. 7 pushes fetching downstream: F_flight=1, F_hotel=8.
        cost, _, _ = _costed(
            builder, poset_serial(), {FLIGHT_ATOM: 1, HOTEL_ATOM: 8},
            ExecutionTimeMetric(),
        )
        expected = 8 * 1 * HOTEL_TAU + CONF_TAU + WEATHER_TAU + FLIGHT_TAU
        assert cost == pytest.approx(expected)

    def test_ordering_o_beats_s_beats_p(self, builder):
        metric = ExecutionTimeMetric()
        cost_o, _, _ = _costed(
            builder, poset_optimal(), {FLIGHT_ATOM: 3, HOTEL_ATOM: 4}, metric
        )
        cost_s, _, _ = _costed(
            builder, poset_serial(), {FLIGHT_ATOM: 1, HOTEL_ATOM: 8}, metric
        )
        cost_p, _, _ = _costed(
            builder, poset_parallel(), {FLIGHT_ATOM: 3, HOTEL_ATOM: 4}, metric
        )
        assert cost_o < cost_s < cost_p


class TestSumAndRequestResponse:
    def test_request_response_counts_fetches(self, builder):
        cost, plan, annotation = _costed(
            builder, poset_optimal(), {FLIGHT_ATOM: 3, HOTEL_ATOM: 4},
            RequestResponseMetric(),
        )
        manual = sum(
            annotation.calls(node) * node.fetches for node in plan.service_nodes
        )
        assert cost == pytest.approx(manual)

    def test_request_response_without_fetches(self, builder):
        with_f = RequestResponseMetric(count_fetches=True)
        without_f = RequestResponseMetric(count_fetches=False)
        cost_with, plan, annotation = _costed(
            builder, poset_optimal(), {FLIGHT_ATOM: 3, HOTEL_ATOM: 4}, with_f
        )
        assert without_f.cost(plan, annotation) < cost_with

    def test_sum_cost_uses_per_call_prices(self, builder, registry):
        plan = builder.build(
            alpha1_patterns(), poset_optimal(),
            fetches={FLIGHT_ATOM: 1, HOTEL_ATOM: 1},
        )
        annotation = annotate(plan, CacheSetting.ONE_CALL)
        # default cost_per_call is 1 and joins are free with
        # cost_per_tuple 0, so SCM == RR here.
        assert SumCostMetric().cost(plan, annotation) == pytest.approx(
            RequestResponseMetric().cost(plan, annotation)
        )

    def test_monetary_ignores_joins(self, builder):
        plan = builder.build(
            alpha1_patterns(), poset_optimal(),
            fetches={FLIGHT_ATOM: 1, HOTEL_ATOM: 1},
        )
        for join in plan.join_nodes:
            join.cost_per_tuple = 0.5
        annotation = annotate(plan, CacheSetting.ONE_CALL)
        assert MonetaryCostMetric().cost(plan, annotation) < SumCostMetric().cost(
            plan, annotation
        )


class TestBottleneckAndTimeToScreen:
    def test_bottleneck_is_max_work(self, builder):
        cost, plan, annotation = _costed(
            builder, poset_optimal(), {FLIGHT_ATOM: 3, HOTEL_ATOM: 4},
            BottleneckMetric(),
        )
        works = [
            node.fetches * annotation.calls(node) * node.profile.response_time
            for node in plan.service_nodes
        ]
        assert cost == pytest.approx(max(works))

    def test_time_to_screen_is_slowest_path_of_taus(self, builder):
        cost, _, _ = _costed(
            builder, poset_optimal(), {FLIGHT_ATOM: 3, HOTEL_ATOM: 4},
            TimeToScreenMetric(),
        )
        # conf + weather + flight (the slower parallel branch)
        assert cost == pytest.approx(CONF_TAU + WEATHER_TAU + FLIGHT_TAU)

    def test_bottleneck_leq_etm(self, builder):
        for poset in (poset_serial(), poset_optimal(), poset_parallel()):
            plan = builder.build(
                alpha1_patterns(), poset, fetches={FLIGHT_ATOM: 2, HOTEL_ATOM: 2}
            )
            annotation = annotate(plan, CacheSetting.ONE_CALL)
            assert BottleneckMetric().cost(plan, annotation) <= (
                ExecutionTimeMetric().cost(plan, annotation) + 1e-9
            )


class TestMonotonicity:
    """Cost metrics are monotonic in plan construction (Section 2.4)."""

    @pytest.mark.parametrize(
        "metric",
        [ExecutionTimeMetric(), RequestResponseMetric(), SumCostMetric(),
         BottleneckMetric(), TimeToScreenMetric()],
        ids=lambda m: m.name,
    )
    def test_prefix_cost_bounds_full_cost(self, registry, metric):
        from repro.model.query import ConjunctiveQuery
        from repro.plans.builder import Poset
        from repro.sources.travel import running_example_query

        query = running_example_query()
        builder = PlanBuilder(query, registry)
        full = builder.build(alpha1_patterns(), poset_serial())
        full_cost = metric.cost(full, annotate(full, CacheSetting.ONE_CALL))

        # Prefix: conf -> weather only (atoms 2, 3 of the body).
        sub_query = ConjunctiveQuery(
            name="q",
            head=(),
            atoms=(query.atoms[2], query.atoms[3]),
            predicates=tuple(
                p for p in query.predicates
                if p.variables <= (
                    query.atoms[2].variable_set | query.atoms[3].variable_set
                )
            ),
        )
        sub_builder = PlanBuilder(sub_query, registry)
        prefix = sub_builder.build(
            (alpha1_patterns()[2], alpha1_patterns()[3]),
            Poset(n=2, pairs=frozenset({(0, 1)})),
        )
        prefix_cost = metric.cost(prefix, annotate(prefix, CacheSetting.ONE_CALL))
        assert prefix_cost <= full_cost + 1e-9
