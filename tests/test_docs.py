"""Documentation rot checks.

Keeps README.md, docs/ARCHITECTURE.md, and ROADMAP.md honest:

* every relative markdown link must resolve to an existing file;
* every ``src/...``, ``tests/...``, or ``benchmarks/...`` path named
  in backticks must exist (trajectory JSONs are resolved against
  ``benchmarks/out/``);
* the documented quick-start anchors (tier-1 command, bench runner,
  CLI entry point) must still be real.

Runs in tier-1, and CI executes it as an explicit docs-check step, so
a doc can't silently outlive the code it describes.
"""

from __future__ import annotations

import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
DOCS = ["README.md", "docs/ARCHITECTURE.md", "ROADMAP.md"]

_LINK = re.compile(r"\[[^\]]+\]\(([^)#]+)(?:#[^)]*)?\)")
_CODE_PATH = re.compile(
    r"`((?:src|tests|benchmarks|docs|examples)/[A-Za-z0-9_./-]+"
    r"|[A-Za-z0-9_.-]+\.(?:py|md|json|yml|ini))`"
)


def _doc_paths():
    return [REPO / name for name in DOCS]


@pytest.mark.parametrize("doc", DOCS)
def test_doc_exists(doc):
    assert (REPO / doc).is_file(), f"{doc} is missing"


@pytest.mark.parametrize("doc", DOCS)
def test_relative_links_resolve(doc):
    path = REPO / doc
    text = path.read_text()
    broken = []
    for match in _LINK.finditer(text):
        target = match.group(1).strip()
        if "://" in target or target.startswith("mailto:"):
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{doc}: broken relative links: {broken}"


def _repo_basenames() -> set[str]:
    names = set()
    for top in ("src", "tests", "benchmarks", "docs", "examples"):
        for found in (REPO / top).rglob("*"):
            if found.is_file():
                names.add(found.name)
    names.update(p.name for p in REPO.iterdir() if p.is_file())
    return names


@pytest.mark.parametrize("doc", DOCS)
def test_backtick_file_references_exist(doc):
    path = REPO / doc
    text = path.read_text()
    basenames = _repo_basenames()
    missing = []
    for match in _CODE_PATH.finditer(text):
        reference = match.group(1).rstrip("/")
        candidates = [
            REPO / reference,
            REPO / "benchmarks" / "out" / reference,
        ]
        if any(candidate.exists() for candidate in candidates):
            continue
        # Bare filenames (`engine.py`) are contextual references: they
        # must at least name a file that exists somewhere in the tree.
        if "/" not in reference and reference in basenames:
            continue
        missing.append(reference)
    assert not missing, f"{doc}: dangling file references: {missing}"


def test_quickstart_anchors_are_real():
    readme = (REPO / "README.md").read_text()
    assert "PYTHONPATH=src python -m pytest -x -q" in readme
    assert "benchmarks/run_bench.py" in readme
    assert "python -m repro" in readme
    assert (REPO / "src" / "repro" / "__main__.py").is_file()
    assert (REPO / "benchmarks" / "run_bench.py").is_file()


def test_architecture_covers_the_subsystems():
    architecture = (REPO / "docs" / "ARCHITECTURE.md").read_text()
    for anchor in (
        "src/repro/optimizer/memo.py",
        "src/repro/execution/joins.py",
        "src/repro/execution/lazy.py",
        "BENCH_lazy.json",
        "rank floor",
        "Certificate invariant",
    ):
        assert anchor in architecture, f"ARCHITECTURE.md lost anchor: {anchor}"
