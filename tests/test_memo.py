"""The search memo must never change what the optimizer decides.

Memoization (``optimizer/memo.py``) reuses cached sub-plan bounds and
complete plan evaluations across topology states, across pattern
sequences, across the heuristic-seeding pass, and across repeated
``optimize()`` calls.  Every cached value is the exact object computed
on the original miss, so costs, chosen plans, and pruning decisions
must be bit-identical to the unmemoized search — checked here over
every query profile the benchmark suite exercises.
"""

import pytest

from repro.costs.sum_cost import SumCostMetric
from repro.costs.time_cost import ExecutionTimeMetric
from repro.optimizer.memo import MISSING, PlanEntry, PlanMemo, bound_key, plan_key
from repro.optimizer.optimizer import Optimizer, OptimizerConfig
from repro.sources.biblio import biblio_registry, experts_query
from repro.sources.bio import bio_registry, glycolysis_homolog_query
from repro.sources.news import market_moving_news_query, news_registry
from repro.sources.travel import running_example_query, travel_registry
from repro.sources.weekend import mahler_weekend_query, weekend_registry

PROFILES = {
    "travel": lambda: (travel_registry(), running_example_query()),
    "biblio": lambda: (biblio_registry(), experts_query()),
    "bio": lambda: (bio_registry(), glycolysis_homolog_query()),
    "news": lambda: (news_registry(), market_moving_news_query()),
    "weekend": lambda: (weekend_registry(), mahler_weekend_query()),
}

METRICS = {
    "execution-time": ExecutionTimeMetric,
    "sum-cost": SumCostMetric,
}


def _outcome(result):
    """Everything that defines the decision the optimizer made."""
    return (
        result.cost,
        result.expected_answers,
        tuple(p.code for p in result.patterns),
        result.poset.closure(),
        tuple(sorted(result.fetches.items())),
    )


def _pruning(result):
    """The counters describing the search trajectory."""
    stats = result.stats
    return (
        stats.pattern_sequences_considered,
        stats.pattern_sequences_pruned,
        stats.topology_states_explored,
        stats.topology_states_pruned,
        stats.plans_completed,
        stats.incumbent_updates,
    )


@pytest.mark.parametrize("profile", sorted(PROFILES))
@pytest.mark.parametrize("metric_name", sorted(METRICS))
class TestMemoEquivalence:
    def test_memoized_search_is_bit_identical(self, profile, metric_name):
        registry, query = PROFILES[profile]()
        metric = METRICS[metric_name]()
        off = Optimizer(
            registry, metric, OptimizerConfig(memoize=False)
        ).optimize(query)
        on = Optimizer(
            registry, metric, OptimizerConfig(memoize=True)
        ).optimize(query)
        assert _outcome(on) == _outcome(off)
        assert _pruning(on) == _pruning(off)
        assert off.stats.memo_hits == 0 and off.stats.memo_misses == 0

    def test_warm_reoptimization_is_identical_and_annotates_nothing(
        self, profile, metric_name
    ):
        registry, query = PROFILES[profile]()
        metric = METRICS[metric_name]()
        optimizer = Optimizer(registry, metric, OptimizerConfig(memoize=True))
        cold = optimizer.optimize(query)
        warm = optimizer.optimize(query)
        assert _outcome(warm) == _outcome(cold)
        assert _pruning(warm) == _pruning(cold)
        # Every search annotation is answered from the memo on the warm
        # run; the only annotate call left is materializing the
        # returned plan (each caller gets an exclusive plan object).
        assert warm.stats.annotate_calls == 1
        assert warm.stats.memo_misses == 0
        assert warm.stats.memo_hits == cold.stats.memo_hits + cold.stats.memo_misses


class TestMemoLifecycle:
    def test_cross_sequence_hits_occur_on_the_running_example(self):
        registry, query = PROFILES["travel"]()
        optimizer = Optimizer(registry, ExecutionTimeMetric(), OptimizerConfig())
        result = optimizer.optimize(query)
        # Pattern sequences share placed subsets, and the heuristic
        # seeds are re-reached by the enumeration: both must hit.
        assert result.stats.memo_bound_hits > 0
        assert result.stats.memo_plan_hits > 0
        assert optimizer.memo.bound_entries == result.stats.memo_bound_misses

    def test_memo_resets_when_the_query_changes(self):
        registry, _ = PROFILES["weekend"]()
        optimizer = Optimizer(registry, ExecutionTimeMetric(), OptimizerConfig())
        first = optimizer.optimize(mahler_weekend_query(budget=120))
        entries = optimizer.memo.plan_entries
        assert entries > 0
        second = optimizer.optimize(mahler_weekend_query(budget=80))
        fresh = Optimizer(
            registry, ExecutionTimeMetric(), OptimizerConfig(memoize=False)
        ).optimize(mahler_weekend_query(budget=80))
        assert _outcome(second) == _outcome(fresh)
        assert first.cost >= 0.0

    def test_clear_memo_forgets_everything(self):
        registry, query = PROFILES["travel"]()
        optimizer = Optimizer(registry, ExecutionTimeMetric(), OptimizerConfig())
        optimizer.optimize(query)
        assert optimizer.memo.plan_entries > 0
        optimizer.clear_memo()
        assert optimizer.memo.plan_entries == 0
        assert optimizer.memo.bound_entries == 0
        rerun = optimizer.optimize(query)
        assert rerun.stats.memo_misses > 0  # repopulated from scratch

    def test_cached_plan_survives_external_fetch_mutation(self):
        """Progressive execution grows node fetches in place; every
        optimize() call must hand out its own plan object, unaffected
        by what earlier callers did to theirs."""
        registry, query = PROFILES["travel"]()
        optimizer = Optimizer(registry, ExecutionTimeMetric(), OptimizerConfig())
        cold = optimizer.optimize(query)
        grown = {}
        for node in cold.plan.chunked_service_nodes:
            node.fetches = node.fetches * 4  # simulate "ask for more"
            grown[node.atom_index] = node.fetches
        warm = optimizer.optimize(query)
        assert _outcome(warm) == _outcome(cold)
        assert warm.plan is not cold.plan
        for node in warm.plan.chunked_service_nodes:
            assert node.fetches == warm.fetches.get(node.atom_index, 1)
        # ... and the warm call must not have reset the cold caller's
        # in-flight plan either.
        for node in cold.plan.chunked_service_nodes:
            assert node.fetches == grown[node.atom_index]


class TestPlanMemoUnit:
    def test_bound_sentinel_distinguishes_missing_from_none(self):
        memo = PlanMemo()
        key = ((((0, "io")),), frozenset())
        assert memo.lookup_bound(key) is MISSING
        memo.store_bound(key, None)  # a cached PlanError outcome
        assert memo.lookup_bound(key) is None
        memo.store_bound(key, 3.5)
        assert memo.lookup_bound(key) == 3.5

    def test_reset_for_keeps_entries_for_the_same_query(self):
        _, query = PROFILES["travel"]()
        memo = PlanMemo()
        memo.reset_for(query)
        memo.store_plan(
            (("io",), frozenset()),
            PlanEntry(cost=1.0, feasible=True, payload="payload"),
        )
        memo.reset_for(running_example_query())  # equal query: keep
        assert memo.plan_entries == 1
        memo.reset_for(mahler_weekend_query())  # different query: reset
        assert memo.plan_entries == 0

    def test_keys_restrict_to_placed_atoms(self):
        _, query = PROFILES["travel"]()
        registry, _ = PROFILES["travel"]()
        from repro.optimizer.patterns import select_patterns

        sequences = select_patterns(query, registry.schema()).ordered
        assert len(sequences) >= 2
        first, second = sequences[0], sequences[-1]
        shared = frozenset(
            i
            for i in range(len(query.atoms))
            if first[i].code == second[i].code
        )
        assert shared, "profiles should overlap on some atom"
        closure = frozenset()
        placed = frozenset(list(sorted(shared))[:1])
        assert bound_key(first, placed, closure) == bound_key(
            second, placed, closure
        )
        assert plan_key(first, closure) != plan_key(second, closure)
