"""Tests for demand-driven lazy service fetching (execution/lazy.py).

Three layers:

* cursor mechanics — :class:`LazyServiceCursor` over a fake
  :class:`ListPageSource`: demand-driven paging, budget exhaustion,
  ``pages_saved`` accounting, floor soundness, and the full-fetch
  fallback on non-monotone inputs;
* :class:`JoinStream` over lazy cursors — a hypothesis differential
  against ``compose_ranking(execute_join(...), k)`` with random rows,
  random chunk sizes, and both monotone and non-monotone rank
  sequences (the latter exercising the fallback);
* the engine — lazy streamed executions are bit-identical to both the
  eager streamed path and the full-scan oracle while issuing strictly
  fewer fetches on rank-monotone workloads; service-terminal plans set
  ``ExecutionStats.streamed_fallback`` instead of logging misleading
  zeros; resumed streams record their fetches on rebound statistics,
  never on the round that created them.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execution.engine import ExecutionEngine, ExecutionMode
from repro.execution.joins import JoinStream, execute_join
from repro.execution.lazy import (
    LazyServiceCursor,
    ListPageSource,
    MaterializedCursor,
)
from repro.execution.results import Row, compose_ranking
from repro.execution.stats import ExecutionStats
from repro.model.atoms import Atom
from repro.model.query import ConjunctiveQuery
from repro.model.schema import signature
from repro.model.terms import Constant, Variable
from repro.plans.builder import PlanBuilder, Poset, chain_poset
from repro.services.profile import search_profile
from repro.services.registry import JoinMethod, ServiceRegistry
from repro.services.table import TableSearchService

METHODS = (JoinMethod.NESTED_LOOP, JoinMethod.MERGE_SCAN)


def _rows(ranks: list[int], side: str) -> list[Row]:
    variable = Variable(side)
    return [
        Row(
            bindings={Variable("K"): 0, variable: index},
            ranks=((side, rank),),
        )
        for index, rank in enumerate(ranks)
    ]


def _paged(rows: list[Row], chunk: int) -> list[list[Row]]:
    return [rows[i : i + chunk] for i in range(0, len(rows), chunk)] or [[]]


def _sound_floors(pages: list[list[Row]]) -> list[int]:
    """Per-page floor: the smallest rank any *later* page can hold."""
    floors: list[int] = []
    for index in range(len(pages)):
        later = [r.rank_key() for page in pages[index + 1 :] for r in page]
        floors.append(min(later) if later else 10**9)
    return floors


def _lazy_cursor(ranks: list[int], side: str, chunk: int) -> LazyServiceCursor:
    pages = _paged(_rows(ranks, side), chunk)
    source = ListPageSource(pages=pages, rank_floors=_sound_floors(pages))
    return LazyServiceCursor(source)


def _signature(rows):
    return [(dict(r.bindings), r.ranks) for r in rows]


class TestLazyServiceCursor:
    def test_zero_demand_fetches_nothing(self):
        source = ListPageSource(pages=_paged(_rows([0, 1, 2, 3], "L"), 2))
        cursor = LazyServiceCursor(source)
        assert source.fetch_log == []
        assert cursor.pages_fetched == 0
        assert cursor.pages_saved() == 2
        assert not cursor.exhausted

    def test_ensure_fetches_only_needed_pages(self):
        source = ListPageSource(pages=_paged(_rows(list(range(10)), "L"), 2))
        cursor = LazyServiceCursor(source)
        cursor.ensure(3)
        assert source.fetch_log == [0, 1]
        assert [r.rank_key() for r in cursor.rows] == [0, 1, 2, 3]
        assert cursor.pages_saved() == 3
        cursor.ensure_all()
        assert source.fetch_log == [0, 1, 2, 3, 4]
        assert cursor.exhausted
        assert cursor.pages_saved() == 0

    def test_budget_caps_the_universe(self):
        source = ListPageSource(
            pages=_paged(_rows(list(range(10)), "L"), 2), budget=2
        )
        cursor = LazyServiceCursor(source)
        cursor.ensure_all()
        assert len(cursor.rows) == 4  # 2 pages of 2, budget-truncated
        assert cursor.exhausted
        assert cursor.pages_saved() == 0

    def test_suffix_min_uses_floor_for_unfetched_rows(self):
        pages = _paged(_rows([0, 1, 2, 3, 4, 5], "L"), 2)
        source = ListPageSource(pages=pages, rank_floors=_sound_floors(pages))
        cursor = LazyServiceCursor(source)
        cursor.ensure(1)  # one page: rows 0, 1 fetched
        assert cursor.suffix_min(0) == 0
        assert cursor.suffix_min(1) == 1
        # Beyond the fetched prefix: the floor (smallest later rank).
        assert cursor.suffix_min(2) == 2
        cursor.ensure_all()
        assert cursor.suffix_min(5) == 5
        assert cursor.suffix_min(6) == math.inf

    def test_tuples_fetched_counts_raw_tuples(self):
        pages = _paged(_rows(list(range(7)), "L"), 3)
        cursor = LazyServiceCursor(ListPageSource(pages=pages))
        cursor.ensure(4)
        assert cursor.tuples_fetched == 6
        cursor.ensure_all()
        assert cursor.tuples_fetched == 7

    def test_non_monotone_input_falls_back_to_full_fetch(self):
        # Ranks regress across pages: the floor bound would be unsound,
        # so the cursor must drain the remaining pages before the
        # certificate may consult suffix_min again.
        pages = _paged(_rows([5, 6, 1, 2], "L"), 2)
        source = ListPageSource(pages=pages, rank_floors=_sound_floors(pages))
        cursor = LazyServiceCursor(source)
        cursor.ensure(3)  # crosses the violation
        assert cursor.exhausted
        assert len(cursor.rows) == 4
        # Exact suffix minima over the complete list, as eager would.
        assert cursor.suffix_min(0) == 1
        assert cursor.suffix_min(2) == 1
        assert cursor.suffix_min(3) == 2

    def test_materialized_cursor_matches_list_semantics(self):
        rows = _rows([3, 1, 2], "L")
        cursor = MaterializedCursor(rows)
        assert cursor.exhausted
        assert cursor.rows == rows
        assert cursor.suffix_min(0) == 1
        assert cursor.suffix_min(2) == 2
        assert cursor.suffix_min(3) == math.inf


_ranks = st.lists(st.integers(0, 9), min_size=0, max_size=8)
_chunks = st.integers(1, 4)
_k = st.one_of(st.none(), st.integers(0, 40))


class TestLazyJoinStreamMatchesOracle:
    """JoinStream over lazy cursors vs. the full-scan oracle."""

    @given(_ranks, _ranks, _chunks, _chunks, _k)
    @settings(max_examples=120, deadline=None)
    def test_monotone_lazy_inputs_bit_identical(self, lr, rr, cl, cr, k):
        lr, rr = sorted(lr), sorted(rr)
        left_rows, right_rows = _rows(lr, "L"), _rows(rr, "R")
        for method in METHODS:
            oracle = compose_ranking(
                execute_join(method, left_rows, right_rows), k
            )
            stream = JoinStream(
                method, _lazy_cursor(lr, "L", cl), _lazy_cursor(rr, "R", cr)
            )
            assert _signature(stream.top(k)) == _signature(oracle)

    @given(_ranks, _ranks, _chunks, _chunks, _k)
    @settings(max_examples=80, deadline=None)
    def test_non_monotone_lazy_inputs_bit_identical(self, lr, rr, cl, cr, k):
        """Unsorted ranks: the fallback path must still be exact."""
        left_rows, right_rows = _rows(lr, "L"), _rows(rr, "R")
        for method in METHODS:
            oracle = compose_ranking(
                execute_join(method, left_rows, right_rows), k
            )
            stream = JoinStream(
                method, _lazy_cursor(lr, "L", cl), _lazy_cursor(rr, "R", cr)
            )
            assert _signature(stream.top(k)) == _signature(oracle)

    @given(_ranks, _ranks, _chunks, _chunks, st.integers(0, 6), st.integers(0, 40))
    @settings(max_examples=80, deadline=None)
    def test_resumed_lazy_stream_stays_exact(self, lr, rr, cl, cr, k1, extra):
        lr, rr = sorted(lr), sorted(rr)
        left_rows, right_rows = _rows(lr, "L"), _rows(rr, "R")
        full = execute_join(JoinMethod.MERGE_SCAN, left_rows, right_rows)
        stream = JoinStream(
            JoinMethod.MERGE_SCAN,
            _lazy_cursor(lr, "L", cl),
            _lazy_cursor(rr, "R", cr),
        )
        assert _signature(stream.top(k1)) == _signature(compose_ranking(full, k1))
        visited = stream.cells_visited
        k2 = k1 + extra
        assert _signature(stream.top(k2)) == _signature(compose_ranking(full, k2))
        assert stream.cells_visited >= visited
        assert _signature(stream.top(None)) == _signature(compose_ranking(full))

    @given(st.integers(1, 30), st.integers(1, 30), st.integers(1, 5), _chunks)
    @settings(max_examples=40, deadline=None)
    def test_small_k_fetches_few_pages_on_monotone_plane(self, n, m, k, chunk):
        """The point of the subsystem: MS top-k demands O(k) rows per
        side, so only ~ceil(k/chunk)+1 pages are ever pulled."""
        lr, rr = list(range(n)), list(range(m))
        left, right = _lazy_cursor(lr, "L", chunk), _lazy_cursor(rr, "R", chunk)
        stream = JoinStream(JoinMethod.MERGE_SCAN, left, right)
        rows = stream.top(k)
        oracle = compose_ranking(
            execute_join(JoinMethod.MERGE_SCAN, _rows(lr, "L"), _rows(rr, "R")), k
        )
        assert _signature(rows) == _signature(oracle)
        demanded = min(k + 1, max(n, m))  # rows per side an MS top-k needs
        ceiling = -(-demanded // chunk) + 1
        assert left.pages_fetched <= ceiling
        assert right.pages_fetched <= ceiling


# -- engine level -----------------------------------------------------------


def _single_feed_plan(method, side=20, chunk=4, fetches=5):
    """Two single-feed search services merged by *method*.

    Both services are keyed by the constant ``q`` and fed straight from
    the input node (one tuple), so the engine wraps them in lazy
    cursors under STREAMED execution.
    """
    registry = ServiceRegistry()
    for name, var in (("lefts", "L"), ("rights", "R")):
        registry.register(
            TableSearchService(
                signature(name, ["Q", "K", var], ["ioo"]),
                search_profile(chunk_size=chunk, response_time=1.0),
                [("q", 0, i) for i in range(side)],
                score=lambda row: float(-row[2]),
            )
        )
    registry.register_join_method("lefts", "rights", method)
    key, left_var, right_var = Variable("K"), Variable("L"), Variable("R")
    query = ConjunctiveQuery(
        name="lazy",
        head=(key, left_var, right_var),
        atoms=(
            Atom("lefts", (Constant("q"), key, left_var)),
            Atom("rights", (Constant("q"), key, right_var)),
        ),
        predicates=(),
    )
    plan = PlanBuilder(query, registry).build(
        (
            registry.signature("lefts").pattern("ioo"),
            registry.signature("rights").pattern("ioo"),
        ),
        Poset(n=2),
        fetches={0: fetches, 1: fetches},
    )
    return registry, query, plan


class TestLazyStreamedEngine:
    def test_lazy_saves_fetches_and_stays_exact(self):
        registry, query, plan = _single_feed_plan(JoinMethod.MERGE_SCAN)
        head = tuple(query.head)
        engine = ExecutionEngine(registry, mode=ExecutionMode.STREAMED)
        lazy = engine.execute(plan, head=head, k=1)
        eager = ExecutionEngine(
            registry, mode=ExecutionMode.STREAMED, lazy_streaming=False
        ).execute(plan, head=head, k=1)
        oracle = ExecutionEngine(registry, mode=ExecutionMode.PARALLEL).execute(
            plan, head=head
        )
        expected = compose_ranking(oracle.rows, 1)
        assert _signature(lazy.rows) == _signature(expected)
        assert _signature(eager.rows) == _signature(expected)
        # One page per side instead of the full budget.
        assert lazy.stats.total_fetches == 2
        assert eager.stats.total_fetches == 10
        assert lazy.stats.lazy_tuples_fetched == 8
        assert lazy.stats.lazy_calls_saved == 8
        assert eager.stats.lazy_tuples_fetched == 0
        # Node sizes trace what was actually materialized.
        sizes = lazy.node_output_sizes
        lazy_nodes = [
            n for n in plan.topological_order()
            if getattr(n, "service_name", None) in ("lefts", "rights")
        ]
        assert all(sizes[n.node_id] == 4 for n in lazy_nodes)

    def test_multi_feed_inputs_fetch_lazily_per_block(
        self, registry, travel_query
    ):
        """The travel plan's flight/hotel nodes are fed by multiple
        weather tuples: each feed tuple becomes a budgeted block of a
        :class:`MultiFeedCursor`, so the streamed walk fetches fewer
        raw tuples than eager materialization while staying
        bit-identical to the full-scan oracle — serial-shaped plans
        now save remote work too."""
        from repro.sources.travel import (
            FLIGHT_ATOM,
            HOTEL_ATOM,
            alpha1_patterns,
            poset_optimal,
        )

        plan = PlanBuilder(travel_query, registry).build(
            alpha1_patterns(), poset_optimal(),
            fetches={FLIGHT_ATOM: 2, HOTEL_ATOM: 2},
        )
        head = tuple(travel_query.head)
        streamed = ExecutionEngine(registry, mode=ExecutionMode.STREAMED).execute(
            plan, head=head, k=2
        )
        eager = ExecutionEngine(
            registry, mode=ExecutionMode.STREAMED, lazy_streaming=False
        ).execute(plan, head=head, k=2)
        oracle = ExecutionEngine(registry, mode=ExecutionMode.PARALLEL).execute(
            plan, head=head
        )
        expected = compose_ranking(oracle.rows, 2)
        assert _signature(streamed.rows) == _signature(expected)
        assert _signature(eager.rows) == _signature(expected)
        assert not streamed.stats.streamed_fallback
        # One block per weather tuple, on both the flight and hotel side.
        assert streamed.stats.lazy_blocks > 2
        assert streamed.stats.lazy_calls_saved > 0
        assert 0 < streamed.stats.lazy_tuples_fetched
        assert (
            streamed.stats.total_tuples_fetched
            <= eager.stats.total_tuples_fetched
        )
        assert streamed.stats.total_fetches <= eager.stats.total_fetches

    def test_service_terminal_plan_sets_fallback_flag(
        self, tiny_registry, tiny_query
    ):
        """A chain plan ends in a service node: nothing can stream, and
        the stats must say so instead of logging ambiguous zeros."""
        plan = PlanBuilder(tiny_query, tiny_registry).build(
            (
                tiny_registry.signature("cities").pattern("io"),
                tiny_registry.signature("spots").pattern("ioo"),
            ),
            chain_poset(2, [0, 1]),
        )
        head = tuple(tiny_query.head)
        streamed = ExecutionEngine(
            tiny_registry, mode=ExecutionMode.STREAMED
        ).execute(plan, head=head, k=2)
        assert streamed.stats.streamed_fallback
        assert streamed.stream is None
        assert streamed.stats.streamed_cells_visited == 0
        assert streamed.stats.lazy_tuples_fetched == 0
        assert "no streamable final join" in streamed.stats.summary()
        oracle = ExecutionEngine(
            tiny_registry, mode=ExecutionMode.PARALLEL
        ).execute(plan, head=head)
        assert _signature(streamed.rows) == _signature(
            compose_ranking(oracle.rows, 2)
        )
        # A streaming execution, by contrast, must not raise the flag.
        registry, query, stream_plan = _single_feed_plan(JoinMethod.MERGE_SCAN)
        ok = ExecutionEngine(registry, mode=ExecutionMode.STREAMED).execute(
            stream_plan, head=tuple(query.head), k=1
        )
        assert not ok.stats.streamed_fallback

    def test_resume_records_fetches_on_rebound_stats(self):
        """Fetches demanded by a resumed stream must land on the stats
        object the resumer provides — the creating round's counters
        stay frozen (the stale-counter regression)."""
        registry, query, plan = _single_feed_plan(
            JoinMethod.MERGE_SCAN, side=20, chunk=2, fetches=10
        )
        head = tuple(query.head)
        engine = ExecutionEngine(registry, mode=ExecutionMode.STREAMED)
        first = engine.execute(plan, head=head, k=1)
        assert first.stream is not None
        fetches_before = first.stats.total_fetches
        assert fetches_before == 2  # one page per side
        resume_stats = ExecutionStats()
        first.stream.rebind_stats(resume_stats)
        rows = first.stream.top(8)
        oracle = ExecutionEngine(registry, mode=ExecutionMode.PARALLEL).execute(
            plan, head=head
        )
        assert _signature(rows) == _signature(compose_ranking(oracle.rows, 8))
        assert resume_stats.total_fetches > 0
        assert first.stats.total_fetches == fetches_before

    @given(
        st.lists(st.integers(0, 2), min_size=1, max_size=6),
        st.lists(st.integers(0, 2), min_size=1, max_size=6),
        st.integers(1, 3),
        st.integers(1, 3),
        st.integers(0, 12),
        st.sampled_from(METHODS),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_chunks_lazy_equals_eager_equals_oracle(
        self, lk, rk, cl, cr, k, method
    ):
        """Engine-level differential with random chunk sizes: the lazy
        path, the eager streamed path, and the full-scan oracle agree
        bit-for-bit while lazy never fetches more than eager."""
        registry = ServiceRegistry()
        registry.register(
            TableSearchService(
                signature("lefts", ["Q", "K", "L"], ["ioo"]),
                search_profile(chunk_size=cl, response_time=1.0),
                [("q", key, index) for index, key in enumerate(lk)],
                score=lambda row: float(-row[2]),
            )
        )
        registry.register(
            TableSearchService(
                signature("rights", ["Q", "K", "R"], ["ioo"]),
                search_profile(chunk_size=cr, response_time=1.0),
                [("q", key, index) for index, key in enumerate(rk)],
                score=lambda row: float(-row[2]),
            )
        )
        registry.register_join_method("lefts", "rights", method)
        key, lv, rv = Variable("K"), Variable("L"), Variable("R")
        query = ConjunctiveQuery(
            name="chunked",
            head=(key, lv, rv),
            atoms=(
                Atom("lefts", (Constant("q"), key, lv)),
                Atom("rights", (Constant("q"), key, rv)),
            ),
            predicates=(),
        )
        plan = PlanBuilder(query, registry).build(
            (
                registry.signature("lefts").pattern("ioo"),
                registry.signature("rights").pattern("ioo"),
            ),
            Poset(n=2),
            fetches={0: 2, 1: 2},
        )
        head = tuple(query.head)
        lazy = ExecutionEngine(registry, mode=ExecutionMode.STREAMED).execute(
            plan, head=head, k=k
        )
        eager = ExecutionEngine(
            registry, mode=ExecutionMode.STREAMED, lazy_streaming=False
        ).execute(plan, head=head, k=k)
        oracle = ExecutionEngine(registry, mode=ExecutionMode.PARALLEL).execute(
            plan, head=head
        )
        expected = compose_ranking(oracle.rows, k)
        assert _signature(lazy.rows) == _signature(expected)
        assert _signature(eager.rows) == _signature(expected)
        assert lazy.stats.total_fetches <= eager.stats.total_fetches
        assert (
            lazy.stats.total_tuples_fetched <= eager.stats.total_tuples_fetched
        )
