"""Tests for the bio, biblio, and weekend domains (Section 6, abstract)."""

import pytest

from repro.costs.time_cost import ExecutionTimeMetric
from repro.execution.cache import CacheSetting
from repro.execution.engine import execute_plan
from repro.optimizer.optimizer import optimize_query
from repro.services.registry import JoinMethod
from repro.sources.bio import (
    BLAST_DECAY,
    bio_registry,
    glycolysis_homolog_query,
)
from repro.sources.biblio import biblio_registry, experts_query, planted_experts
from repro.sources.weekend import mahler_weekend_query, weekend_registry


class TestBioDomain:
    def test_blast_has_decay(self):
        registry = bio_registry()
        profile = registry.profile("blast")
        assert profile.decay == BLAST_DECAY
        assert profile.max_fetches() == 3

    def test_blast_join_defaults_to_nested_loop(self):
        registry = bio_registry()
        # blast tops out quickly (decay) -> NL against a deep service.
        assert registry.join_method("blast", "interpro") in (
            JoinMethod.NESTED_LOOP, JoinMethod.MERGE_SCAN
        )

    def test_optimized_execution_finds_homologs(self):
        registry = bio_registry()
        query = glycolysis_homolog_query()
        best = optimize_query(query, registry, ExecutionTimeMetric(), k=5)
        result = execute_plan(
            best.plan, registry, head=query.head,
            cache_setting=CacheSetting.ONE_CALL,
        )
        assert len(result.rows) >= 5
        for human, mouse, _, score in result.answers():
            assert human.startswith("HSA")
            assert mouse.startswith("MMU")
            assert score >= 500

    def test_repeats_predicate_enforced(self):
        registry = bio_registry()
        query = glycolysis_homolog_query()
        best = optimize_query(query, registry, ExecutionTimeMetric(), k=5)
        result = execute_plan(best.plan, registry, head=query.head)
        interpro_rows = {
            (row[0], row[1]): row[2]
            for row in registry.service("interpro").rows
        }
        for _, mouse, domain, _ in result.answers():
            assert interpro_rows[(mouse, domain)] >= 2

    def test_decay_caps_blast_fetches(self):
        registry = bio_registry()
        query = glycolysis_homolog_query()
        best = optimize_query(query, registry, ExecutionTimeMetric(), k=5)
        blast_node = best.plan.service_node_for_atom(2)
        assert blast_node.fetches <= 3


class TestBiblioDomain:
    def test_experts_found(self):
        registry = biblio_registry()
        query = experts_query()
        best = optimize_query(query, registry, ExecutionTimeMetric(), k=5)
        result = execute_plan(
            best.plan, registry, head=query.head,
            cache_setting=CacheSetting.OPTIMAL,
        )
        authors = {answer[0] for answer in result.answers()}
        assert authors & set(planted_experts())

    def test_year_filter_enforced(self):
        registry = biblio_registry()
        query = experts_query()
        best = optimize_query(query, registry, ExecutionTimeMetric(), k=5)
        result = execute_plan(best.plan, registry, head=query.head)
        for _, _, _, year in result.answers():
            assert year >= 2005

    def test_projects_service_is_selective(self):
        registry = biblio_registry()
        assert registry.profile("projects").is_selective


class TestWeekendDomain:
    def test_both_drivers_are_permissible(self):
        from repro.optimizer.patterns import permissible_sequences

        registry = weekend_registry()
        query = mahler_weekend_query()
        sequences = permissible_sequences(query, registry.schema())
        # route-driven lowcost needs composer-driven concerts; the
        # browse pattern of lowcost combines with both concert patterns.
        assert len(sequences) == 3

    def test_answers_respect_budget_and_dates(self):
        registry = weekend_registry()
        query = mahler_weekend_query(budget=120)
        best = optimize_query(query, registry, ExecutionTimeMetric(), k=3)
        result = execute_plan(best.plan, registry, head=query.head)
        assert len(result.rows) >= 3
        for _, date, price, _ in result.answers():
            assert "2008-04-01" <= date <= "2008-04-30"
            assert price <= 120

    def test_answers_have_mahler_concerts(self):
        registry = weekend_registry()
        query = mahler_weekend_query()
        best = optimize_query(query, registry, ExecutionTimeMetric(), k=3)
        result = execute_plan(best.plan, registry, head=query.head)
        concert_rows = set(registry.service("concerts").rows)
        for city, date, _, venue in result.answers():
            assert (city, date, "Mahler", venue) in concert_rows

    def test_cheapest_fares_ranked_first(self):
        registry = weekend_registry()
        from repro.model.schema import AccessPattern

        result = registry.service("lowcost").invoke(
            AccessPattern("iioo"), {0: "Milano", 1: "Vienna"}
        )
        prices = [row[3] for row in result.tuples]
        assert prices == sorted(prices)
