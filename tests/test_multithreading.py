"""The multithreading experiment of Section 6.

Dispatching all available calls of a node to parallel threads collapses
the node's busy time to its slowest call (plus overhead) — plan S drops
to tens of seconds — but randomizes the arrival order, which degrades
the one-call cache (the paper measures hotel calls going from 15 back
up to 212 of the 284)."""

import pytest

from repro.execution.cache import CacheSetting
from repro.execution.engine import ExecutionEngine, ExecutionMode
from repro.plans.builder import PlanBuilder
from repro.sources.travel import (
    FLIGHT_ATOM,
    HOTEL_ATOM,
    alpha1_patterns,
    poset_serial,
    running_example_query,
    travel_registry,
)


@pytest.fixture(scope="module")
def serial_plan_setup():
    registry = travel_registry()
    query = running_example_query()
    plan = PlanBuilder(query, registry).build(
        alpha1_patterns(), poset_serial(),
        fetches={FLIGHT_ATOM: 1, HOTEL_ATOM: 8},
    )
    return registry, query, plan


class TestSpeedup:
    def test_threads_collapse_serial_plan_time(self, serial_plan_setup):
        registry, query, plan = serial_plan_setup
        sequential = ExecutionEngine(
            registry, CacheSetting.NO_CACHE, mode=ExecutionMode.PARALLEL
        ).execute(plan, head=query.head)
        threaded = ExecutionEngine(
            registry, CacheSetting.NO_CACHE, mode=ExecutionMode.MULTITHREADED
        ).execute(plan, head=query.head)
        # The paper measures 76 s vs 374 s: about a 5x speedup.  Our
        # virtual clock must show at least 3x.
        assert threaded.elapsed < sequential.elapsed / 3

    def test_threaded_time_is_sum_of_slowest_calls(self, serial_plan_setup):
        registry, query, plan = serial_plan_setup
        threaded = ExecutionEngine(
            registry, CacheSetting.NO_CACHE, mode=ExecutionMode.MULTITHREADED
        ).execute(plan, head=query.head)
        # Lower bound: one call per service on the critical path.
        assert threaded.elapsed >= 1.2 + 1.5 + 9.7 + 4.9


class TestCacheDegradation:
    def test_one_call_cache_degrades_under_threads(self, serial_plan_setup):
        """Randomized arrival order breaks consecutive duplicates:
        hotel calls land between the cached 15 and the raw 284."""
        registry, query, plan = serial_plan_setup
        ordered = ExecutionEngine(
            registry, CacheSetting.ONE_CALL, mode=ExecutionMode.PARALLEL
        ).execute(plan, head=query.head)
        threaded = ExecutionEngine(
            registry, CacheSetting.ONE_CALL, mode=ExecutionMode.MULTITHREADED
        ).execute(plan, head=query.head)
        assert ordered.stats.calls("hotel") == 15
        degraded = threaded.stats.calls("hotel")
        assert 15 < degraded <= 284

    def test_optimal_cache_suffers_no_drawback(self, serial_plan_setup):
        """'Of course, the optimal cache suffers no such drawbacks.'"""
        registry, query, plan = serial_plan_setup
        ordered = ExecutionEngine(
            registry, CacheSetting.OPTIMAL, mode=ExecutionMode.PARALLEL
        ).execute(plan, head=query.head)
        threaded = ExecutionEngine(
            registry, CacheSetting.OPTIMAL, mode=ExecutionMode.MULTITHREADED
        ).execute(plan, head=query.head)
        assert threaded.stats.calls("hotel") == ordered.stats.calls("hotel")

    def test_answers_unchanged_by_threading(self, serial_plan_setup):
        registry, query, plan = serial_plan_setup
        ordered = ExecutionEngine(
            registry, CacheSetting.ONE_CALL, mode=ExecutionMode.PARALLEL
        ).execute(plan, head=query.head)
        threaded = ExecutionEngine(
            registry, CacheSetting.ONE_CALL, mode=ExecutionMode.MULTITHREADED
        ).execute(plan, head=query.head)
        assert frozenset(ordered.answers(None)) == frozenset(
            threaded.answers(None)
        )
