"""Unit tests for plan annotation: Sections 3.4, 5.2 (incl. Figure 8)."""

import pytest

from repro.execution.cache import CacheSetting
from repro.plans.annotate import annotate, bulk_erspi
from repro.plans.builder import PlanBuilder, chain_poset
from repro.sources.travel import (
    CONF_ATOM,
    FLIGHT_ATOM,
    HOTEL_ATOM,
    WEATHER_ATOM,
    alpha1_patterns,
    poset_optimal,
    poset_serial,
    running_example_query,
)


@pytest.fixture()
def builder(registry, travel_query):
    return PlanBuilder(travel_query, registry)


@pytest.fixture()
def figure8_plan(builder):
    """Plan O with the paper's fetching factors (F_flight=3, F_hotel=4)."""
    return builder.build(
        alpha1_patterns(), poset_optimal(),
        fetches={FLIGHT_ATOM: 3, HOTEL_ATOM: 4},
    )


class TestFigure8:
    """The annotated values printed in Figure 8, reproduced exactly."""

    def test_conf(self, figure8_plan):
        annotation = annotate(figure8_plan, CacheSetting.ONE_CALL)
        conf = figure8_plan.service_node_for_atom(CONF_ATOM)
        assert annotation.tuples_in(conf) == pytest.approx(1)
        assert annotation.tuples_out(conf) == pytest.approx(20)

    def test_weather(self, figure8_plan):
        annotation = annotate(figure8_plan, CacheSetting.ONE_CALL)
        weather = figure8_plan.service_node_for_atom(WEATHER_ATOM)
        assert annotation.tuples_in(weather) == pytest.approx(20)
        assert annotation.tuples_out(weather) == pytest.approx(1)

    def test_flight(self, figure8_plan):
        annotation = annotate(figure8_plan, CacheSetting.ONE_CALL)
        flight = figure8_plan.service_node_for_atom(FLIGHT_ATOM)
        assert annotation.tuples_in(flight) == pytest.approx(1)
        assert annotation.tuples_out(flight) == pytest.approx(75)  # 25 * 3

    def test_hotel(self, figure8_plan):
        annotation = annotate(figure8_plan, CacheSetting.ONE_CALL)
        hotel = figure8_plan.service_node_for_atom(HOTEL_ATOM)
        assert annotation.tuples_in(hotel) == pytest.approx(1)
        assert annotation.tuples_out(hotel) == pytest.approx(20)  # 5 * 4

    def test_merge_scan_join(self, figure8_plan):
        annotation = annotate(figure8_plan, CacheSetting.ONE_CALL)
        join = figure8_plan.join_nodes[0]
        assert annotation.tuples_in(join) == pytest.approx(1500)  # 75 * 20
        assert annotation.tuples_out(join) == pytest.approx(15)  # sigma 0.01

    def test_output_size(self, figure8_plan):
        annotation = annotate(figure8_plan, CacheSetting.ONE_CALL)
        assert annotation.output_size == pytest.approx(15)


class TestCacheAwareCalls:
    """Example 5.1's Eq. 2 computations on the serial plan."""

    def test_serial_plan_calls_with_cache(self, builder):
        plan = builder.build(alpha1_patterns(), poset_serial())
        annotation = annotate(plan, CacheSetting.ONE_CALL)
        # t_in_flight = min(ξ_conf, ξ_conf·ξ_weather) = 20 * 0.05 = 1
        flight = plan.service_node_for_atom(FLIGHT_ATOM)
        assert annotation.calls(flight) == pytest.approx(1)
        # t_in_hotel = min over the path = 1 as well
        hotel = plan.service_node_for_atom(HOTEL_ATOM)
        assert annotation.calls(hotel) == pytest.approx(1)
        # weather has no selective upstream bound below ξ_conf
        weather = plan.service_node_for_atom(WEATHER_ATOM)
        assert annotation.calls(weather) == pytest.approx(20)

    def test_no_cache_calls_equal_stream_size(self, builder):
        plan = builder.build(alpha1_patterns(), poset_serial())
        annotation = annotate(plan, CacheSetting.NO_CACHE)
        flight = plan.service_node_for_atom(FLIGHT_ATOM)
        assert annotation.calls(flight) == pytest.approx(
            annotation.tuples_in(flight)
        )

    def test_constant_only_inputs_need_one_call_with_cache(self, builder):
        plan = builder.build(alpha1_patterns(), poset_serial())
        annotation = annotate(plan, CacheSetting.ONE_CALL)
        conf = plan.service_node_for_atom(CONF_ATOM)
        assert annotation.calls(conf) == pytest.approx(1)

    def test_cached_calls_never_exceed_stream(self, builder):
        plan = builder.build(alpha1_patterns(), poset_serial())
        cached = annotate(plan, CacheSetting.ONE_CALL)
        raw = annotate(plan, CacheSetting.NO_CACHE)
        for node in plan.service_nodes:
            assert cached.calls(node) <= raw.calls(node) + 1e-9


class TestStructuralProperties:
    def test_input_node_injects_one_tuple(self, figure8_plan):
        annotation = annotate(figure8_plan, CacheSetting.NO_CACHE)
        assert annotation.tuples_out(figure8_plan.input_node) == 1.0

    def test_output_equals_last_stream(self, figure8_plan):
        annotation = annotate(figure8_plan, CacheSetting.NO_CACHE)
        out = figure8_plan.output_node
        assert annotation.tuples_in(out) == annotation.tuples_out(out)

    def test_fetches_scale_output_linearly(self, builder):
        small = builder.build(
            alpha1_patterns(), poset_optimal(),
            fetches={FLIGHT_ATOM: 1, HOTEL_ATOM: 1},
        )
        large = builder.build(
            alpha1_patterns(), poset_optimal(),
            fetches={FLIGHT_ATOM: 2, HOTEL_ATOM: 3},
        )
        h_small = annotate(small, CacheSetting.NO_CACHE).output_size
        h_large = annotate(large, CacheSetting.NO_CACHE).output_size
        assert h_large == pytest.approx(h_small * 6)

    def test_bulk_erspi(self, figure8_plan):
        # ξ_conf · ξ_weather_effective = 20 * 0.05 = 1
        assert bulk_erspi(figure8_plan) == pytest.approx(1.0)


class TestRebindingSelectivity:
    """Output fields that are constants or rebind bound variables act
    as selections (the execution engine drops mismatches)."""

    def test_constant_output_charged(self, registry, travel_query):
        from repro.sources.travel import alpha4_patterns, HOTEL_ATOM as H

        builder = PlanBuilder(travel_query, registry)
        # hotel2 (all output) first, then conf2 by city, etc.
        from repro.plans.builder import Poset

        poset = Poset(
            n=4,
            pairs=frozenset({(H, 0), (H, 2), (H, 3), (2, 0), (3, 0)}),
        )
        plan = builder.build(alpha4_patterns(), poset)
        annotation = annotate(plan, CacheSetting.NO_CACHE)
        hotel = plan.service_node_for_atom(H)
        # 'luxury' sits at an output position: one chunk of 5 tuples is
        # discounted by the equality selectivity 0.1.
        assert annotation.tuples_out(hotel) == pytest.approx(0.5)
