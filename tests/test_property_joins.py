"""Property-based tests for the rank-preserving join strategies."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execution.joins import (
    execute_join,
    is_order_rank_consistent,
    merge_scan_order,
    nested_loop_order,
)
from repro.execution.results import Row
from repro.model.terms import Variable
from repro.services.registry import JoinMethod

_sizes = st.integers(min_value=0, max_value=8)


class TestVisitOrderProperties:
    @given(_sizes, _sizes)
    def test_nested_loop_covers_grid_exactly_once(self, n, m):
        cells = list(nested_loop_order(n, m))
        assert len(cells) == n * m
        assert len(set(cells)) == n * m

    @given(_sizes, _sizes)
    def test_merge_scan_covers_grid_exactly_once(self, n, m):
        cells = list(merge_scan_order(n, m))
        assert len(cells) == n * m
        assert len(set(cells)) == n * m

    @given(st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=30)
    def test_nested_loop_rank_consistent(self, n, m):
        assert is_order_rank_consistent(list(nested_loop_order(n, m)))

    @given(st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=30)
    def test_merge_scan_rank_consistent(self, n, m):
        assert is_order_rank_consistent(list(merge_scan_order(n, m)))

    @given(st.integers(1, 8), st.integers(1, 8))
    def test_merge_scan_diagonals_nondecreasing(self, n, m):
        sums = [i + j for i, j in merge_scan_order(n, m)]
        assert sums == sorted(sums)


def _rows(values, key_name):
    return [
        Row(bindings={Variable("K"): key, Variable(key_name): index})
        for index, key in enumerate(values)
    ]


_keys = st.lists(st.integers(0, 3), min_size=0, max_size=6)


class TestJoinSemantics:
    @given(_keys, _keys)
    @settings(max_examples=60)
    def test_join_equals_naive_natural_join(self, left_keys, right_keys):
        left = _rows(left_keys, "L")
        right = _rows(right_keys, "R")
        for method in (JoinMethod.NESTED_LOOP, JoinMethod.MERGE_SCAN):
            produced = execute_join(method, left, right)
            expected = {
                (lk, li, ri)
                for li, lk in enumerate(left_keys)
                for ri, rk in enumerate(right_keys)
                if lk == rk
            }
            actual = {
                (
                    row.bindings[Variable("K")],
                    row.bindings[Variable("L")],
                    row.bindings[Variable("R")],
                )
                for row in produced
            }
            assert actual == expected

    @given(_keys, _keys)
    @settings(max_examples=60)
    def test_both_methods_produce_same_multiset(self, left_keys, right_keys):
        left = _rows(left_keys, "L")
        right = _rows(right_keys, "R")
        nl = execute_join(JoinMethod.NESTED_LOOP, left, right)
        ms = execute_join(JoinMethod.MERGE_SCAN, left, right)
        as_set = lambda rows: sorted(
            tuple(sorted((v.name, x) for v, x in r.bindings.items())) for r in rows
        )
        assert as_set(nl) == as_set(ms)

    @given(st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=30)
    def test_emission_respects_domination(self, n, m):
        """If pair (i,j) componentwise dominates (i',j'), it is emitted
        earlier — for both strategies, on an all-matching key."""
        left = _rows([0] * n, "L")
        right = _rows([0] * m, "R")
        for method in (JoinMethod.NESTED_LOOP, JoinMethod.MERGE_SCAN):
            produced = execute_join(method, left, right)
            emitted = [
                (row.bindings[Variable("L")], row.bindings[Variable("R")])
                for row in produced
            ]
            assert is_order_rank_consistent(emitted)
