"""Property-based tests for the rank-preserving join strategies."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execution.joins import (
    execute_join,
    execute_join_hashed,
    is_order_rank_consistent,
    merge_scan_order,
    nested_loop_order,
)
from repro.model.predicates import BinaryExpression, Comparison
from repro.model.terms import Constant
from repro.execution.results import Row
from repro.model.terms import Variable
from repro.services.registry import JoinMethod

_sizes = st.integers(min_value=0, max_value=8)


class TestVisitOrderProperties:
    @given(_sizes, _sizes)
    def test_nested_loop_covers_grid_exactly_once(self, n, m):
        cells = list(nested_loop_order(n, m))
        assert len(cells) == n * m
        assert len(set(cells)) == n * m

    @given(_sizes, _sizes)
    def test_merge_scan_covers_grid_exactly_once(self, n, m):
        cells = list(merge_scan_order(n, m))
        assert len(cells) == n * m
        assert len(set(cells)) == n * m

    @given(st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=30)
    def test_nested_loop_rank_consistent(self, n, m):
        assert is_order_rank_consistent(list(nested_loop_order(n, m)))

    @given(st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=30)
    def test_merge_scan_rank_consistent(self, n, m):
        assert is_order_rank_consistent(list(merge_scan_order(n, m)))

    @given(st.integers(1, 8), st.integers(1, 8))
    def test_merge_scan_diagonals_nondecreasing(self, n, m):
        sums = [i + j for i, j in merge_scan_order(n, m)]
        assert sums == sorted(sums)


def _rows(values, key_name):
    return [
        Row(bindings={Variable("K"): key, Variable(key_name): index})
        for index, key in enumerate(values)
    ]


_keys = st.lists(st.integers(0, 3), min_size=0, max_size=6)


class TestJoinSemantics:
    @given(_keys, _keys)
    @settings(max_examples=60)
    def test_join_equals_naive_natural_join(self, left_keys, right_keys):
        left = _rows(left_keys, "L")
        right = _rows(right_keys, "R")
        for method in (JoinMethod.NESTED_LOOP, JoinMethod.MERGE_SCAN):
            produced = execute_join(method, left, right)
            expected = {
                (lk, li, ri)
                for li, lk in enumerate(left_keys)
                for ri, rk in enumerate(right_keys)
                if lk == rk
            }
            actual = {
                (
                    row.bindings[Variable("K")],
                    row.bindings[Variable("L")],
                    row.bindings[Variable("R")],
                )
                for row in produced
            }
            assert actual == expected

    @given(_keys, _keys)
    @settings(max_examples=60)
    def test_both_methods_produce_same_multiset(self, left_keys, right_keys):
        left = _rows(left_keys, "L")
        right = _rows(right_keys, "R")
        nl = execute_join(JoinMethod.NESTED_LOOP, left, right)
        ms = execute_join(JoinMethod.MERGE_SCAN, left, right)
        as_set = lambda rows: sorted(
            tuple(sorted((v.name, x) for v, x in r.bindings.items())) for r in rows
        )
        assert as_set(nl) == as_set(ms)

    @given(st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=30)
    def test_emission_respects_domination(self, n, m):
        """If pair (i,j) componentwise dominates (i',j'), it is emitted
        earlier — for both strategies, on an all-matching key."""
        left = _rows([0] * n, "L")
        right = _rows([0] * m, "R")
        for method in (JoinMethod.NESTED_LOOP, JoinMethod.MERGE_SCAN):
            produced = execute_join(method, left, right)
            emitted = [
                (row.bindings[Variable("L")], row.bindings[Variable("R")])
                for row in produced
            ]
            assert is_order_rank_consistent(emitted)


def _keyed_rows(keys, side_name, extra_keys=None):
    """Rows with a common K plus an occasionally-present second variable."""
    rows = []
    for index, key in enumerate(keys):
        bindings = {Variable("K"): key, Variable(side_name): index}
        if extra_keys is not None and index < len(extra_keys):
            bindings[Variable("X")] = extra_keys[index]
        rows.append(Row(bindings=bindings, ranks=((side_name, index),)))
    return rows


_maybe_extra = st.none() | st.lists(st.integers(0, 1), min_size=0, max_size=6)


class TestHashedJoinMatchesReference:
    """``execute_join_hashed`` vs. the reference oracle (Section 3.3):
    identical row sets, identical bindings *and ranks*, identical
    emission order, hence the same domination property."""

    @given(_keys, _keys, _maybe_extra, _maybe_extra)
    @settings(max_examples=80)
    def test_identical_rows_and_order(self, lk, rk, lx, rx):
        left = _keyed_rows(lk, "L", lx)
        right = _keyed_rows(rk, "R", rx)
        for method in (JoinMethod.NESTED_LOOP, JoinMethod.MERGE_SCAN):
            reference = execute_join(method, left, right)
            hashed = execute_join_hashed(method, left, right)
            assert [(r.bindings, r.ranks) for r in hashed] == [
                (r.bindings, r.ranks) for r in reference
            ]

    @given(_keys, _keys)
    @settings(max_examples=40)
    def test_identical_under_predicates(self, lk, rk):
        left = _keyed_rows(lk, "L")
        right = _keyed_rows(rk, "R")
        predicate = Comparison(
            BinaryExpression("+", Variable("L"), Variable("R")), "<", Constant(5)
        )
        for method in (JoinMethod.NESTED_LOOP, JoinMethod.MERGE_SCAN):
            reference = execute_join(method, left, right, [predicate])
            hashed = execute_join_hashed(method, left, right, [predicate])
            assert [r.bindings for r in hashed] == [r.bindings for r in reference]

    @given(st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=30)
    def test_hashed_emission_respects_domination(self, n, m):
        left = _rows([0] * n, "L")
        right = _rows([0] * m, "R")
        for method in (JoinMethod.NESTED_LOOP, JoinMethod.MERGE_SCAN):
            produced = execute_join_hashed(method, left, right)
            emitted = [
                (row.bindings[Variable("L")], row.bindings[Variable("R")])
                for row in produced
            ]
            assert len(emitted) == n * m
            assert is_order_rank_consistent(emitted)

    def test_no_shared_variables_falls_back(self):
        left = [Row(bindings={Variable("A"): 1})]
        right = [Row(bindings={Variable("B"): 2})]
        result = execute_join_hashed(JoinMethod.MERGE_SCAN, left, right)
        assert result == execute_join(JoinMethod.MERGE_SCAN, left, right)
        assert len(result) == 1  # cross product of disjoint bindings

    def test_unhashable_binding_falls_back(self):
        left = [Row(bindings={Variable("K"): [1, 2], Variable("L"): 0})]
        right = [Row(bindings={Variable("K"): [1, 2], Variable("R"): 0})]
        result = execute_join_hashed(JoinMethod.NESTED_LOOP, left, right)
        assert result == execute_join(JoinMethod.NESTED_LOOP, left, right)
        assert len(result) == 1

    def test_empty_sides(self):
        assert execute_join_hashed(JoinMethod.MERGE_SCAN, [], []) == []
        row = Row(bindings={Variable("K"): 1})
        assert execute_join_hashed(JoinMethod.NESTED_LOOP, [row], []) == []
        assert execute_join_hashed(JoinMethod.MERGE_SCAN, [], [row]) == []
