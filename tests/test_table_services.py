"""Unit tests for table-backed exact and search services."""

import pytest

from repro.model.schema import AccessPattern, signature
from repro.services.base import InvocationError
from repro.services.profile import exact_profile, search_profile
from repro.services.table import TableExactService, TableSearchService


@pytest.fixture()
def cities():
    return TableExactService(
        signature("cities", ["Country", "City"], ["io", "oo"]),
        exact_profile(erspi=2.0, response_time=1.0),
        [("it", "Roma"), ("it", "Milano"), ("fr", "Paris")],
    )


@pytest.fixture()
def spots():
    return TableSearchService(
        signature("spots", ["City", "Spot", "Score"], ["ioo"]),
        search_profile(chunk_size=2, response_time=2.0),
        [
            ("Roma", "Colosseo", 10),
            ("Roma", "Pantheon", 9),
            ("Roma", "Trastevere", 7),
            ("Roma", "Testaccio", 5),
            ("Milano", "Duomo", 9),
        ],
        score=lambda row: float(row[2]),
    )


class TestExactService:
    def test_invoke_filters_by_inputs(self, cities):
        result = cities.invoke(AccessPattern("io"), {0: "it"})
        assert set(result.tuples) == {("it", "Roma"), ("it", "Milano")}
        assert not result.has_more

    def test_invoke_all_output_pattern(self, cities):
        result = cities.invoke(AccessPattern("oo"), {})
        assert len(result) == 3

    def test_no_matches_is_empty_not_error(self, cities):
        result = cities.invoke(AccessPattern("io"), {0: "de"})
        assert result.tuples == ()

    def test_missing_input_rejected(self, cities):
        with pytest.raises(InvocationError):
            cities.invoke(AccessPattern("io"), {})

    def test_extra_input_rejected(self, cities):
        with pytest.raises(InvocationError):
            cities.invoke(AccessPattern("io"), {0: "it", 1: "Roma"})

    def test_unknown_pattern_rejected(self, cities):
        with pytest.raises(InvocationError):
            cities.invoke(AccessPattern("oi"), {1: "Roma"})

    def test_bulk_service_rejects_pages(self, cities):
        with pytest.raises(InvocationError):
            cities.invoke(AccessPattern("io"), {0: "it"}, page=1)

    def test_latency_reported(self, cities):
        result = cities.invoke(AccessPattern("io"), {0: "it"})
        assert result.latency == pytest.approx(1.0)

    def test_row_arity_validated(self):
        with pytest.raises(InvocationError):
            TableExactService(
                signature("s", ["A", "B"], ["io"]),
                exact_profile(erspi=1, response_time=1),
                [("only-one",)],
            )


class TestSearchService:
    def test_results_ranked_by_score(self, spots):
        result = spots.invoke(AccessPattern("ioo"), {0: "Roma"})
        assert [row[1] for row in result.tuples] == ["Colosseo", "Pantheon"]

    def test_chunking_and_has_more(self, spots):
        first = spots.invoke(AccessPattern("ioo"), {0: "Roma"}, page=0)
        assert len(first) == 2 and first.has_more
        second = spots.invoke(AccessPattern("ioo"), {0: "Roma"}, page=1)
        assert len(second) == 2 and not second.has_more
        third = spots.invoke(AccessPattern("ioo"), {0: "Roma"}, page=2)
        assert len(third) == 0

    def test_ranks_are_global_indexes(self, spots):
        second = spots.invoke(AccessPattern("ioo"), {0: "Roma"}, page=1)
        assert second.ranks == (2, 3)

    def test_decay_truncates_results(self):
        service = TableSearchService(
            signature("s", ["K", "V"], ["io"]),
            search_profile(chunk_size=2, response_time=1.0, decay=3),
            [("k", f"v{i}") for i in range(10)],
            score=lambda row: -float(row[1][1:]),
        )
        first = service.invoke(AccessPattern("io"), {0: "k"}, page=0)
        second = service.invoke(AccessPattern("io"), {0: "k"}, page=1)
        assert len(first) == 2 and first.has_more
        assert len(second) == 1 and not second.has_more  # decayed at 3

    def test_search_profile_required(self):
        with pytest.raises(InvocationError):
            TableSearchService(
                signature("s", ["K"], ["i"]),
                exact_profile(erspi=1, response_time=1),
                [],
                score=lambda row: 0.0,
            )


class TestRemoteCaching:
    def test_repeat_call_is_fast(self):
        service = TableExactService(
            signature("s", ["K", "V"], ["io"]),
            exact_profile(erspi=1, response_time=10.0),
            [("a", 1)],
            remote_caching=True,
        )
        first = service.invoke(AccessPattern("io"), {0: "a"})
        repeat = service.invoke(AccessPattern("io"), {0: "a"})
        assert first.latency == pytest.approx(10.0)
        assert not first.from_remote_cache
        assert repeat.latency < 1.0
        assert repeat.from_remote_cache

    def test_reset_clears_remote_cache(self):
        service = TableExactService(
            signature("s", ["K", "V"], ["io"]),
            exact_profile(erspi=1, response_time=10.0),
            [("a", 1)],
            remote_caching=True,
        )
        service.invoke(AccessPattern("io"), {0: "a"})
        service.reset()
        fresh = service.invoke(AccessPattern("io"), {0: "a"})
        assert fresh.latency == pytest.approx(10.0)

    def test_no_remote_caching_by_default(self):
        service = TableExactService(
            signature("s", ["K", "V"], ["io"]),
            exact_profile(erspi=1, response_time=10.0),
            [("a", 1)],
        )
        service.invoke(AccessPattern("io"), {0: "a"})
        repeat = service.invoke(AccessPattern("io"), {0: "a"})
        assert repeat.latency == pytest.approx(10.0)


class TestPatternProfiles:
    def test_profile_for_override(self):
        service = TableExactService(
            signature("s", ["A", "B"], ["io", "oo"]),
            exact_profile(erspi=2.0, response_time=1.0),
            [],
            pattern_profiles={"oo": exact_profile(erspi=50.0, response_time=1.0)},
        )
        assert service.profile_for("io").erspi == 2.0
        assert service.profile_for("oo").erspi == 50.0
        assert service.profile_for(None).erspi == 2.0

    def test_override_must_target_feasible_pattern(self):
        from repro.model.schema import SchemaError

        with pytest.raises(SchemaError):
            TableExactService(
                signature("s", ["A", "B"], ["io"]),
                exact_profile(erspi=2.0, response_time=1.0),
                [],
                pattern_profiles={"oi": exact_profile(erspi=1.0, response_time=1.0)},
            )
