"""End-to-end reproduction of the paper's running example.

Covers Example 3.1 (schema/query), Example 4.1 (pattern selection),
Example 5.1 (plan space and ETM pruning arithmetic), and Figure 8
(the fully instantiated optimal physical plan).
"""

import pytest

from repro.costs.time_cost import ExecutionTimeMetric
from repro.execution.cache import CacheSetting
from repro.optimizer.fetches import FetchContext, closed_form_pair
from repro.optimizer.optimizer import Optimizer, OptimizerConfig
from repro.optimizer.patterns import select_patterns
from repro.optimizer.topology import count_posets
from repro.plans.annotate import annotate
from repro.plans.builder import PlanBuilder
from repro.sources.travel import (
    CONF_ATOM,
    FLIGHT_ATOM,
    HOTEL_ATOM,
    WEATHER_ATOM,
    alpha1_patterns,
    poset_optimal,
    running_example_query,
    travel_schema,
)


class TestExample31:
    """The schema of Figure 2 and the query of Figure 3."""

    def test_conf_signature_matches_paper(self):
        sig = travel_schema().get("conf")
        assert sig.arity == 5
        assert {p.code for p in sig.patterns} == {"ioooo", "ooooi"}

    def test_query_is_safe_and_multi_domain(self, travel_query):
        assert travel_query.is_multi_domain
        assert len(travel_query.atoms) == 4

    def test_search_services_are_flight_and_hotel(self, registry):
        assert registry.profile("flight").is_search
        assert registry.profile("hotel").is_search
        assert registry.profile("conf").is_exact
        assert registry.profile("weather").is_exact


class TestExample41:
    """Pattern selection: 4 choices, α3 impermissible, α1/α4 most cogent."""

    def test_pattern_phase(self, travel_query):
        phase = select_patterns(travel_query, travel_schema())
        assert len(phase.permissible) == 3  # of the 4 combinations
        assert len(phase.most_cogent) == 2
        assert phase.ordered[0] in phase.most_cogent


class TestExample51:
    """Plan space and cost arithmetic of Example 5.1."""

    def test_19_alternative_plans(self, travel_query):
        assert count_posets(travel_query, alpha1_patterns()) == 19

    def test_eq6_gives_paper_fetching_factors(self, registry, travel_query):
        plan = PlanBuilder(travel_query, registry).build(
            alpha1_patterns(), poset_optimal()
        )
        context = FetchContext(plan, ExecutionTimeMetric(), CacheSetting.ONE_CALL)
        result = closed_form_pair(context, k=10)
        assert result.fetches == {FLIGHT_ATOM: 3, HOTEL_ATOM: 4}

    def test_optimizer_selects_plan_o(self, registry, travel_query):
        best = Optimizer(
            registry,
            ExecutionTimeMetric(),
            OptimizerConfig(k=10, cache_setting=CacheSetting.ONE_CALL),
        ).optimize(travel_query)
        assert best.poset.closure() == poset_optimal().closure()

    def test_join_erspi_is_001(self, registry, travel_query):
        plan = PlanBuilder(travel_query, registry).build(
            alpha1_patterns(), poset_optimal()
        )
        assert plan.join_nodes[0].selectivity == pytest.approx(0.01)


class TestFigure8:
    """The annotated physical plan: every number in the figure."""

    EXPECTED = {
        CONF_ATOM: (1.0, 20.0),
        WEATHER_ATOM: (20.0, 1.0),
        FLIGHT_ATOM: (1.0, 75.0),
        HOTEL_ATOM: (1.0, 20.0),
    }

    def test_every_figure8_value(self, registry, travel_query):
        plan = PlanBuilder(travel_query, registry).build(
            alpha1_patterns(), poset_optimal(),
            fetches={FLIGHT_ATOM: 3, HOTEL_ATOM: 4},
        )
        annotation = annotate(plan, CacheSetting.ONE_CALL)
        for atom_index, (t_in, t_out) in self.EXPECTED.items():
            node = plan.service_node_for_atom(atom_index)
            assert annotation.calls(node) == pytest.approx(t_in), atom_index
            assert annotation.tuples_out(node) == pytest.approx(t_out), atom_index
        join = plan.join_nodes[0]
        assert annotation.tuples_in(join) == pytest.approx(1500.0)
        assert annotation.tuples_out(join) == pytest.approx(15.0)
        assert annotation.output_size >= 10  # enough answers for k=10


class TestExample51Pruning:
    """The ETM pruning argument: the conf→flight prefix already costs
    more than the full serial plan, so every completion is pruned."""

    def test_prefix_cost_exceeds_serial_plan(self, registry, travel_query):
        from repro.model.query import ConjunctiveQuery
        from repro.plans.builder import Poset, chain_poset

        metric = ExecutionTimeMetric()
        builder = PlanBuilder(travel_query, registry)

        # ETM1: the full serial plan with Eq. 7 factors.
        serial = builder.build(
            alpha1_patterns(),
            chain_poset(4, [CONF_ATOM, WEATHER_ATOM, FLIGHT_ATOM, HOTEL_ATOM]),
            fetches={FLIGHT_ATOM: 1, HOTEL_ATOM: 8},
        )
        etm1 = metric.cost(serial, annotate(serial, CacheSetting.ONE_CALL))

        # ETM2: the partial plan conf → flight (flight fed by 20 conf
        # tuples — the weather filter is missing).
        sub_query = ConjunctiveQuery(
            name="q",
            head=(),
            atoms=(travel_query.atoms[CONF_ATOM], travel_query.atoms[FLIGHT_ATOM]),
            predicates=(),
        )
        sub_builder = PlanBuilder(sub_query, registry)
        prefix = sub_builder.build(
            (alpha1_patterns()[CONF_ATOM], alpha1_patterns()[FLIGHT_ATOM]),
            Poset(n=2, pairs=frozenset({(0, 1)})),
        )
        etm2 = metric.cost(prefix, annotate(prefix, CacheSetting.ONE_CALL))
        # t_in_flight = ξ_conf = 20, so ETM2 = 20·9.7 + 1.2 = 195.2.
        assert etm2 == pytest.approx(20 * 9.7 + 1.2)
        assert etm2 > etm1  # hence the paper prunes the prefix

    def test_branch_and_bound_actually_prunes_that_prefix(
        self, registry, travel_query
    ):
        best = Optimizer(
            registry,
            ExecutionTimeMetric(),
            OptimizerConfig(k=10, cache_setting=CacheSetting.ONE_CALL),
        ).optimize(travel_query)
        assert best.stats.topology_states_pruned > 0
