"""Unit tests for the branch-and-bound bookkeeping."""

from repro.optimizer.branch_and_bound import Incumbent, SearchStats


class TestIncumbent:
    def test_starts_unset(self):
        incumbent: Incumbent[str] = Incumbent()
        assert not incumbent.is_set
        assert incumbent.cost == float("inf")

    def test_offer_improves(self):
        incumbent: Incumbent[str] = Incumbent()
        assert incumbent.offer(10.0, "a")
        assert incumbent.is_set
        assert incumbent.cost == 10.0
        assert incumbent.payload == "a"

    def test_offer_rejects_worse(self):
        incumbent: Incumbent[str] = Incumbent()
        incumbent.offer(10.0, "a")
        assert not incumbent.offer(12.0, "b")
        assert incumbent.payload == "a"

    def test_offer_rejects_equal(self):
        incumbent: Incumbent[str] = Incumbent()
        incumbent.offer(10.0, "a")
        assert not incumbent.offer(10.0, "b")

    def test_history_records_improvements(self):
        incumbent: Incumbent[str] = Incumbent()
        incumbent.offer(10.0, "a")
        incumbent.offer(12.0, "b")
        incumbent.offer(7.0, "c")
        assert incumbent.history == [10.0, 7.0]

    def test_prunes_requires_incumbent(self):
        incumbent: Incumbent[str] = Incumbent()
        assert not incumbent.prunes(5.0)
        incumbent.offer(10.0, "a")
        assert incumbent.prunes(10.0)
        assert incumbent.prunes(11.0)
        assert not incumbent.prunes(9.0)


class TestSearchStats:
    def test_defaults_zero(self):
        stats = SearchStats()
        assert stats.plans_completed == 0
        assert stats.topology_states_pruned == 0

    def test_summary_mentions_counters(self):
        stats = SearchStats(
            pattern_sequences_considered=3,
            topology_states_explored=42,
            plans_completed=7,
        )
        text = stats.summary()
        assert "patterns=3" in text
        assert "topology states=42" in text
        assert "plans completed=7" in text
