"""Unit tests for the rank-preserving NL and MS join strategies."""

import pytest

from repro.execution.joins import (
    execute_join,
    is_order_rank_consistent,
    join_order,
    merge_scan_order,
    nested_loop_order,
)
from repro.execution.results import Row
from repro.model.predicates import comparison
from repro.model.terms import Variable
from repro.services.registry import JoinMethod


class TestVisitOrders:
    def test_nested_loop_order_is_row_major(self):
        assert list(nested_loop_order(2, 2)) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_merge_scan_order_is_diagonal(self):
        assert list(merge_scan_order(2, 2)) == [(0, 0), (0, 1), (1, 0), (1, 1)]
        assert list(merge_scan_order(3, 2)) == [
            (0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1),
        ]

    def test_orders_cover_the_grid(self):
        for maker in (nested_loop_order, merge_scan_order):
            cells = list(maker(3, 4))
            assert len(cells) == 12
            assert len(set(cells)) == 12

    def test_empty_sides(self):
        assert list(join_order(JoinMethod.MERGE_SCAN, 0, 5)) == []
        assert list(join_order(JoinMethod.NESTED_LOOP, 5, 0)) == []

    def test_both_orders_rank_consistent(self):
        for maker in (nested_loop_order, merge_scan_order):
            assert is_order_rank_consistent(list(maker(4, 3)))

    def test_inconsistency_detector(self):
        assert not is_order_rank_consistent([(1, 1), (0, 0)])


def _row(**bindings):
    return Row(bindings={Variable(k): v for k, v in bindings.items()})


class TestExecuteJoin:
    def test_natural_join_on_shared_variables(self):
        left = [_row(City="Roma", F=100), _row(City="Milano", F=70)]
        right = [_row(City="Roma", H=50), _row(City="Paris", H=90)]
        result = execute_join(JoinMethod.MERGE_SCAN, left, right)
        assert len(result) == 1
        assert result[0].bindings[Variable("City")] == "Roma"
        assert result[0].bindings[Variable("H")] == 50

    def test_cartesian_when_no_shared_variables(self):
        left = [_row(A=1), _row(A=2)]
        right = [_row(B=1), _row(B=2), _row(B=3)]
        result = execute_join(JoinMethod.NESTED_LOOP, left, right)
        assert len(result) == 6

    def test_predicates_filter_pairs(self):
        left = [_row(City="Roma", F=1500), _row(City="Roma", F=100)]
        right = [_row(City="Roma", H=700)]
        from repro.model.predicates import BinaryExpression, Comparison
        from repro.model.terms import Constant

        predicate = Comparison(
            BinaryExpression("+", Variable("F"), Variable("H")),
            "<",
            Constant(2000),
        )
        result = execute_join(JoinMethod.MERGE_SCAN, left, right, [predicate])
        assert len(result) == 1
        assert result[0].bindings[Variable("F")] == 100

    def test_ranks_are_concatenated(self):
        left = [Row(bindings={Variable("A"): 1}, ranks=(("l", 0),))]
        right = [Row(bindings={Variable("B"): 2}, ranks=(("r", 3),))]
        result = execute_join(JoinMethod.MERGE_SCAN, left, right)
        assert result[0].ranks == (("l", 0), ("r", 3))

    def test_merge_scan_emission_order(self):
        left = [_row(A=i) for i in range(3)]
        right = [_row(B=j) for j in range(3)]
        result = execute_join(JoinMethod.MERGE_SCAN, left, right)
        first_cells = [
            (row.bindings[Variable("A")], row.bindings[Variable("B")])
            for row in result[:3]
        ]
        assert first_cells == [(0, 0), (0, 1), (1, 0)]

    def test_nested_loop_emission_order(self):
        left = [_row(A=i) for i in range(2)]
        right = [_row(B=j) for j in range(3)]
        result = execute_join(JoinMethod.NESTED_LOOP, left, right)
        cells = [
            (row.bindings[Variable("A")], row.bindings[Variable("B")])
            for row in result
        ]
        assert cells == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]

    def test_empty_inputs(self):
        assert execute_join(JoinMethod.MERGE_SCAN, [], [_row(A=1)]) == []
        assert execute_join(JoinMethod.NESTED_LOOP, [_row(A=1)], []) == []

    def test_score_filter_predicate(self):
        left = [_row(City="Roma", S=9), _row(City="Roma", S=5)]
        right = [_row(City="Roma")]
        predicate = comparison("S", ">=", 7)
        result = execute_join(JoinMethod.MERGE_SCAN, left, right, [predicate])
        assert len(result) == 1
