"""Property-based tests: parser round trips, templates, specs, rows."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execution.results import Row
from repro.model.parser import parse_query
from repro.model.template import QueryTemplate, parameter
from repro.model.terms import Variable
from repro.plans.spec import PlanSpec

_names = st.text(
    alphabet="abcdefghij", min_size=1, max_size=6
).map(lambda s: s)
_variables = st.sampled_from(["X", "Y", "Z", "Value", "City"])
_constants = st.one_of(
    st.integers(0, 999),
    st.sampled_from(["milano", "db", "luxury"]),
)


@st.composite
def _simple_queries(draw):
    """Random small queries rendered in datalog syntax."""
    n_atoms = draw(st.integers(1, 3))
    used_vars: list[str] = []
    atoms = []
    for index in range(n_atoms):
        name = f"s{index}"
        args = []
        for _ in range(draw(st.integers(1, 3))):
            if draw(st.booleans()):
                var = draw(_variables)
                used_vars.append(var)
                args.append(var)
            else:
                value = draw(_constants)
                args.append(f"'{value}'" if isinstance(value, str) else str(value))
        atoms.append(f"{name}({', '.join(args)})")
    if not used_vars:
        atoms[0] = "s0(X)"
        used_vars.append("X")
    head = ", ".join(sorted(set(used_vars)))
    return f"q({head}) :- {', '.join(atoms)}."


class TestParserRoundTrip:
    @given(_simple_queries())
    @settings(max_examples=80)
    def test_parse_render_parse_fixpoint(self, text):
        """parse(str(parse(text))) == parse(text)."""
        first = parse_query(text)
        rendered = str(first)
        second = parse_query(rendered + ".")
        assert first.atoms == second.atoms
        assert first.head == second.head
        assert first.predicates == second.predicates

    def test_running_example_round_trip(self):
        from repro.sources.travel import running_example_query

        query = running_example_query()
        parsed = parse_query(str(query) + ".")
        assert parsed.atoms == query.atoms
        assert parsed.head == query.head
        # Selectivities are metadata, not syntax: compare structure.
        assert [(str(p.left), p.op, str(p.right)) for p in parsed.predicates] == [
            (str(p.left), p.op, str(p.right)) for p in query.predicates
        ]


class TestTemplateProperties:
    @given(st.sampled_from(["DB", "AI", "IR"]), st.integers(100, 2000))
    @settings(max_examples=20)
    def test_instantiation_removes_all_parameters(self, topic, budget):
        from repro.model.atoms import Atom
        from repro.model.predicates import Comparison
        from repro.model.query import ConjunctiveQuery
        from repro.model.terms import Constant

        template = QueryTemplate(
            ConjunctiveQuery(
                name="t",
                head=(Variable("C"),),
                atoms=(
                    Atom("conf", (parameter("topic"), Variable("C"),
                                  Variable("S"), Variable("E"), Variable("City"))),
                ),
                predicates=(
                    Comparison(Variable("S"), ">=", parameter("start")),
                ),
            )
        )
        query = template.instantiate({"topic": topic, "start": budget})
        assert QueryTemplate(query).parameters == ()
        assert query.atoms[0].terms[0] == Constant(topic)


class TestSpecProperties:
    @given(
        st.lists(st.sampled_from(["io", "oi", "oo"]), min_size=1, max_size=4),
        st.integers(0, 10),
    )
    @settings(max_examples=60)
    def test_json_round_trip(self, codes, seed):
        import random

        rng = random.Random(seed)
        n = len(codes)
        pairs = frozenset(
            (i, j) for i in range(n) for j in range(i + 1, n)
            if rng.random() < 0.4
        )
        fetches = {
            i: rng.randint(1, 5) for i in range(n) if rng.random() < 0.5
        }
        from repro.plans.builder import Poset

        spec = PlanSpec(
            pattern_codes=tuple(codes),
            precedence_pairs=tuple(sorted(pairs)),
            fetches=tuple(sorted(fetches.items())),
        )
        assert PlanSpec.from_json(spec.to_json()) == spec
        assert spec.poset().pairs == Poset(n=n, pairs=pairs).pairs


class TestRowProperties:
    _bindings = st.dictionaries(
        st.sampled_from([Variable("A"), Variable("B"), Variable("C")]),
        st.integers(0, 3),
        max_size=3,
    )

    @given(_bindings, _bindings)
    @settings(max_examples=80)
    def test_merge_symmetric_in_success(self, left, right):
        first = Row(bindings=left).merged_with(Row(bindings=right))
        second = Row(bindings=right).merged_with(Row(bindings=left))
        assert (first is None) == (second is None)
        if first is not None:
            assert dict(first.bindings) == dict(second.bindings)

    @given(_bindings)
    @settings(max_examples=40)
    def test_merge_with_self_is_identity(self, bindings):
        row = Row(bindings=bindings)
        merged = row.merged_with(row)
        assert merged is not None
        assert dict(merged.bindings) == dict(bindings)

    @given(_bindings, _bindings)
    @settings(max_examples=80)
    def test_merge_none_iff_conflict(self, left, right):
        conflict = any(
            left[key] != right[key] for key in left.keys() & right.keys()
        )
        merged = Row(bindings=left).merged_with(Row(bindings=right))
        assert (merged is None) == conflict
