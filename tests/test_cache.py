"""Unit tests for the three logical-cache settings (Section 5.1)."""

import pytest

from repro.execution.cache import (
    CacheSetting,
    NoCache,
    OneCallCache,
    OptimalCache,
    make_cache,
)


class TestFactory:
    def test_make_cache_types(self):
        assert isinstance(make_cache(CacheSetting.NO_CACHE), NoCache)
        assert isinstance(make_cache(CacheSetting.ONE_CALL), OneCallCache)
        assert isinstance(make_cache(CacheSetting.OPTIMAL), OptimalCache)


class TestNoCache:
    def test_always_misses(self):
        cache = NoCache()
        cache.store("s", "key", 0, "value")
        assert cache.lookup("s", "key", 0) is None

    def test_clear_is_noop(self):
        NoCache().clear()


class TestOneCallCache:
    def test_hit_on_repeat_of_last_call(self):
        cache = OneCallCache()
        cache.store("s", "city-a", 0, "result-a")
        assert cache.lookup("s", "city-a", 0) == "result-a"

    def test_miss_after_different_input(self):
        cache = OneCallCache()
        cache.store("s", "city-a", 0, "result-a")
        cache.store("s", "city-b", 0, "result-b")
        assert cache.lookup("s", "city-a", 0) is None
        assert cache.lookup("s", "city-b", 0) == "result-b"

    def test_all_pages_of_last_input_kept(self):
        # A chunked service fetched page-by-page for the same input
        # must keep every page until the input changes.
        cache = OneCallCache()
        cache.store("s", "city-a", 0, "page0")
        cache.store("s", "city-a", 1, "page1")
        assert cache.lookup("s", "city-a", 0) == "page0"
        assert cache.lookup("s", "city-a", 1) == "page1"

    def test_pages_evicted_with_input(self):
        cache = OneCallCache()
        cache.store("s", "city-a", 0, "page0")
        cache.store("s", "city-a", 1, "page1")
        cache.store("s", "city-b", 0, "other")
        assert cache.lookup("s", "city-a", 1) is None

    def test_per_service_isolation(self):
        cache = OneCallCache()
        cache.store("s", "k", 0, "v-s")
        cache.store("t", "other", 0, "v-t")
        assert cache.lookup("s", "k", 0) == "v-s"

    def test_clear(self):
        cache = OneCallCache()
        cache.store("s", "k", 0, "v")
        cache.clear()
        assert cache.lookup("s", "k", 0) is None


class TestOptimalCache:
    def test_remembers_everything(self):
        cache = OptimalCache()
        cache.store("s", "a", 0, "va")
        cache.store("s", "b", 0, "vb")
        cache.store("s", "a", 1, "va1")
        assert cache.lookup("s", "a", 0) == "va"
        assert cache.lookup("s", "b", 0) == "vb"
        assert cache.lookup("s", "a", 1) == "va1"

    def test_distinct_services_distinct_entries(self):
        cache = OptimalCache()
        cache.store("s", "k", 0, "v-s")
        assert cache.lookup("t", "k", 0) is None

    def test_clear(self):
        cache = OptimalCache()
        cache.store("s", "k", 0, "v")
        cache.clear()
        assert cache.lookup("s", "k", 0) is None


class TestHierarchy:
    def test_optimal_supersedes_one_call(self):
        """Any hit in the one-call cache is also a hit in the optimal
        cache under the same call trace."""
        trace = [("a", 0), ("a", 0), ("b", 0), ("a", 0), ("a", 1)]
        one_call = OneCallCache()
        optimal = OptimalCache()
        one_hits = opt_hits = 0
        for key, page in trace:
            if one_call.lookup("s", key, page) is not None:
                one_hits += 1
            one_call.store("s", key, page, "x")
            if optimal.lookup("s", key, page) is not None:
                opt_hits += 1
            optimal.store("s", key, page, "x")
        assert opt_hits >= one_hits
        assert one_hits == 1  # only the immediate repeat
        assert opt_hits == 2  # the repeat and the later return to 'a'
