"""Unit tests for the three logical-cache settings (Section 5.1)."""

import pytest

from repro.execution.cache import (
    CacheSetting,
    NoCache,
    OneCallCache,
    OptimalCache,
    make_cache,
)


class TestFactory:
    def test_make_cache_types(self):
        assert isinstance(make_cache(CacheSetting.NO_CACHE), NoCache)
        assert isinstance(make_cache(CacheSetting.ONE_CALL), OneCallCache)
        assert isinstance(make_cache(CacheSetting.OPTIMAL), OptimalCache)


class TestNoCache:
    def test_always_misses(self):
        cache = NoCache()
        cache.store("s", "key", 0, "value")
        assert cache.lookup("s", "key", 0) is None

    def test_clear_is_noop(self):
        NoCache().clear()


class TestOneCallCache:
    def test_hit_on_repeat_of_last_call(self):
        cache = OneCallCache()
        cache.store("s", "city-a", 0, "result-a")
        assert cache.lookup("s", "city-a", 0) == "result-a"

    def test_miss_after_different_input(self):
        cache = OneCallCache()
        cache.store("s", "city-a", 0, "result-a")
        cache.store("s", "city-b", 0, "result-b")
        assert cache.lookup("s", "city-a", 0) is None
        assert cache.lookup("s", "city-b", 0) == "result-b"

    def test_all_pages_of_last_input_kept(self):
        # A chunked service fetched page-by-page for the same input
        # must keep every page until the input changes.
        cache = OneCallCache()
        cache.store("s", "city-a", 0, "page0")
        cache.store("s", "city-a", 1, "page1")
        assert cache.lookup("s", "city-a", 0) == "page0"
        assert cache.lookup("s", "city-a", 1) == "page1"

    def test_pages_evicted_with_input(self):
        cache = OneCallCache()
        cache.store("s", "city-a", 0, "page0")
        cache.store("s", "city-a", 1, "page1")
        cache.store("s", "city-b", 0, "other")
        assert cache.lookup("s", "city-a", 1) is None

    def test_per_service_isolation(self):
        cache = OneCallCache()
        cache.store("s", "k", 0, "v-s")
        cache.store("t", "other", 0, "v-t")
        assert cache.lookup("s", "k", 0) == "v-s"

    def test_clear(self):
        cache = OneCallCache()
        cache.store("s", "k", 0, "v")
        cache.clear()
        assert cache.lookup("s", "k", 0) is None


class TestOptimalCache:
    def test_remembers_everything(self):
        cache = OptimalCache()
        cache.store("s", "a", 0, "va")
        cache.store("s", "b", 0, "vb")
        cache.store("s", "a", 1, "va1")
        assert cache.lookup("s", "a", 0) == "va"
        assert cache.lookup("s", "b", 0) == "vb"
        assert cache.lookup("s", "a", 1) == "va1"

    def test_distinct_services_distinct_entries(self):
        cache = OptimalCache()
        cache.store("s", "k", 0, "v-s")
        assert cache.lookup("t", "k", 0) is None

    def test_clear(self):
        cache = OptimalCache()
        cache.store("s", "k", 0, "v")
        cache.clear()
        assert cache.lookup("s", "k", 0) is None


class TestOptimalCacheAdmissionControl:
    def test_capacity_bounds_entry_count(self):
        cache = OptimalCache(capacity=2)
        for index in range(5):
            cache.store("s", f"k{index}", 0, f"v{index}")
        assert len(cache) == 2
        assert cache.evictions == 3
        assert cache.lookup("s", "k4", 0) == "v4"
        assert cache.lookup("s", "k0", 0) is None

    def test_eviction_is_least_recently_used(self):
        cache = OptimalCache(capacity=2)
        cache.store("s", "a", 0, "va")
        cache.store("s", "b", 0, "vb")
        assert cache.lookup("s", "a", 0) == "va"  # refreshes 'a'
        cache.store("s", "c", 0, "vc")  # must evict 'b', not 'a'
        assert cache.lookup("s", "a", 0) == "va"
        assert cache.lookup("s", "b", 0) is None
        assert cache.lookup("s", "c", 0) == "vc"

    def test_restore_of_existing_key_does_not_evict(self):
        cache = OptimalCache(capacity=2)
        cache.store("s", "a", 0, "va")
        cache.store("s", "b", 0, "vb")
        cache.store("s", "a", 0, "va2")  # overwrite, still 2 entries
        assert cache.evictions == 0
        assert cache.lookup("s", "a", 0) == "va2"
        assert cache.lookup("s", "b", 0) == "vb"

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            OptimalCache(capacity=0)

    def test_unbounded_default_never_evicts(self):
        cache = OptimalCache()
        for index in range(100):
            cache.store("s", f"k{index}", 0, index)
        assert len(cache) == 100
        assert cache.evictions == 0
        assert cache.capacity is None

    def test_make_cache_passes_capacity_to_optimal_only(self):
        bounded = make_cache(CacheSetting.OPTIMAL, capacity=3)
        assert isinstance(bounded, OptimalCache)
        assert bounded.capacity == 3
        # Inherently bounded settings ignore the parameter.
        assert isinstance(make_cache(CacheSetting.ONE_CALL, capacity=3), OneCallCache)
        assert isinstance(make_cache(CacheSetting.NO_CACHE, capacity=3), NoCache)

    def test_eviction_changes_call_counts_never_answers(self):
        """The admission-control contract at the engine level: a tiny
        capacity forces re-fetches, but the produced rows, ranks, and
        order are identical to the unbounded cache's."""
        from repro.execution.engine import ExecutionEngine, ExecutionMode
        from repro.model.atoms import Atom
        from repro.model.query import ConjunctiveQuery
        from repro.model.schema import signature as sig
        from repro.model.terms import Constant, Variable
        from repro.plans.builder import PlanBuilder, Poset
        from repro.services.profile import search_profile
        from repro.services.registry import JoinMethod, ServiceRegistry
        from repro.services.table import TableSearchService

        def build():
            registry = ServiceRegistry()
            for name, var in (("lefts", "L"), ("rights", "R")):
                registry.register(
                    TableSearchService(
                        sig(name, ["Q", "K", var], ["ioo"]),
                        search_profile(chunk_size=2, response_time=1.0),
                        [("q", i % 2, i) for i in range(8)],
                        score=lambda row: float(-row[2]),
                    )
                )
            registry.register_join_method(
                "lefts", "rights", JoinMethod.MERGE_SCAN
            )
            key, lv, rv = Variable("K"), Variable("L"), Variable("R")
            query = ConjunctiveQuery(
                name="bounded",
                head=(key, lv, rv),
                atoms=(
                    Atom("lefts", (Constant("q"), key, lv)),
                    Atom("rights", (Constant("q"), key, rv)),
                ),
                predicates=(),
            )
            plan = PlanBuilder(query, registry).build(
                (
                    registry.signature("lefts").pattern("ioo"),
                    registry.signature("rights").pattern("ioo"),
                ),
                Poset(n=2),
                fetches={0: 4, 1: 4},
            )
            return registry, tuple(query.head), plan

        outcomes = {}
        for capacity in (None, 1):
            registry, head, plan = build()
            engine = ExecutionEngine(registry, mode=ExecutionMode.PARALLEL)
            cache = OptimalCache(capacity=capacity)
            calls = 0
            rows = None
            for _ in range(3):  # repeated executions share the cache
                result = engine.execute(
                    plan, head=head, reset_remote_caches=False,
                    shared_cache=cache,
                )
                calls += result.stats.total_calls
                # Node ids differ between plan builds; compare rank
                # *values* (and the composed key), not node labels.
                rows = [
                    (
                        dict(r.bindings),
                        tuple(rank for _, rank in r.ranks),
                        r.rank_key(),
                    )
                    for r in result.rows
                ]
            outcomes[capacity] = (rows, calls, cache.evictions)

        unbounded_rows, unbounded_calls, _ = outcomes[None]
        bounded_rows, bounded_calls, evictions = outcomes[1]
        assert bounded_rows == unbounded_rows  # answers never change
        assert evictions > 0  # the bound actually bit
        assert bounded_calls >= unbounded_calls  # only cost changes


class TestHierarchy:
    def test_optimal_supersedes_one_call(self):
        """Any hit in the one-call cache is also a hit in the optimal
        cache under the same call trace."""
        trace = [("a", 0), ("a", 0), ("b", 0), ("a", 0), ("a", 1)]
        one_call = OneCallCache()
        optimal = OptimalCache()
        one_hits = opt_hits = 0
        for key, page in trace:
            if one_call.lookup("s", key, page) is not None:
                one_hits += 1
            one_call.store("s", key, page, "x")
            if optimal.lookup("s", key, page) is not None:
                opt_hits += 1
            optimal.store("s", key, page, "x")
        assert opt_hits >= one_hits
        assert one_hits == 1  # only the immediate repeat
        assert opt_hits == 2  # the repeat and the later return to 'a'
