"""The shared content-digest idiom: stability, canonicality, length.

Every fingerprint site (profiles, registry epochs, query fingerprints,
plan-cache keys) routes through :func:`repro.digest.content_digest`;
these tests pin the properties those sites rely on — key-order
independence, sensitivity to any value change, the truncation length —
plus a golden value so an accidental change to the serialization or
hash breaks loudly (it would silently invalidate every persisted plan
cache).
"""

from __future__ import annotations

import hashlib
import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.digest import DIGEST_LENGTH, content_digest

_JSON = st.recursive(
    st.none() | st.booleans() | st.integers() | st.floats(allow_nan=False)
    | st.text(max_size=8),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=4), children, max_size=4),
    max_leaves=10,
)


def test_golden_value():
    # Pinned: changing the serialization or hash silently invalidates
    # every persisted plan cache — make that a visible failure instead.
    assert content_digest({"a": 1}) == (
        hashlib.sha256(b'{"a": 1}').hexdigest()[:DIGEST_LENGTH]
    )
    assert content_digest([]) == hashlib.sha256(b"[]").hexdigest()[:16]


def test_key_order_independent():
    assert content_digest({"a": 1, "b": [2, 3]}) == content_digest(
        {"b": [2, 3], "a": 1}
    )


def test_distinguishes_payloads():
    assert content_digest({"a": 1}) != content_digest({"a": 2})
    assert content_digest([1, 2]) != content_digest([2, 1])
    assert content_digest("1") != content_digest(1)


def test_rejects_unserializable_payloads():
    with pytest.raises(TypeError):
        content_digest({"bad": object()})


@given(payload=_JSON)
def test_stable_and_well_formed(payload):
    digest = content_digest(payload)
    assert digest == content_digest(payload)
    assert len(digest) == DIGEST_LENGTH == 16
    assert set(digest) <= set("0123456789abcdef")
    # Canonical: any JSON round-trip of the payload digests the same.
    assert content_digest(json.loads(json.dumps(payload))) == digest
