"""Tests for query templates (Section 2.2: optimize once per template)."""

import pytest

from repro.costs.time_cost import ExecutionTimeMetric
from repro.execution.cache import CacheSetting
from repro.execution.engine import execute_plan
from repro.model.atoms import Atom
from repro.model.predicates import Comparison
from repro.model.query import ConjunctiveQuery
from repro.model.template import (
    Parameter,
    QueryTemplate,
    TemplateError,
    parameter,
)
from repro.model.terms import Constant, Variable
from repro.optimizer.optimizer import Optimizer, OptimizerConfig
from repro.plans.spec import PlanSpec


@pytest.fixture()
def travel_template():
    """The running example with the topic and budget as parameters."""
    city = Variable("City")
    start, end = Variable("Start"), Variable("End")
    conf_name = Variable("Conf")
    hotel_name, h_price = Variable("Hotel"), Variable("HPrice")
    query = ConjunctiveQuery(
        name="t",
        head=(conf_name, city, hotel_name, h_price),
        atoms=(
            Atom("conf", (parameter("topic"), conf_name, start, end, city)),
            Atom("hotel", (hotel_name, city, Constant("luxury"), start, end,
                           h_price)),
        ),
        predicates=(
            Comparison(h_price, "<=", parameter("budget"), selectivity=0.5),
        ),
    )
    return QueryTemplate(query)


class TestParameters:
    def test_parameter_discovery(self, travel_template):
        assert travel_template.parameters == ("budget", "topic")

    def test_missing_value_rejected(self, travel_template):
        with pytest.raises(TemplateError):
            travel_template.instantiate({"topic": "DB"})

    def test_unknown_value_rejected(self, travel_template):
        with pytest.raises(TemplateError):
            travel_template.instantiate(
                {"topic": "DB", "budget": 700, "extra": 1}
            )

    def test_empty_parameter_name_rejected(self):
        with pytest.raises(TemplateError):
            Parameter("")

    def test_str_shows_placeholder(self):
        assert str(Parameter("topic")) == "$topic"


class TestInstantiation:
    def test_constants_substituted(self, travel_template):
        query = travel_template.instantiate({"topic": "DB", "budget": 700})
        assert query.atoms[0].terms[0] == Constant("DB")
        assert query.predicates[0].right == Constant(700)

    def test_selectivity_preserved(self, travel_template):
        query = travel_template.instantiate({"topic": "DB", "budget": 700})
        assert query.predicates[0].selectivity == 0.5

    def test_instantiations_are_independent(self, travel_template):
        db = travel_template.instantiate({"topic": "DB", "budget": 700})
        ai = travel_template.instantiate({"topic": "AI", "budget": 500})
        assert db.atoms[0].terms[0] != ai.atoms[0].terms[0]


class TestTemplateReuse:
    """Optimize once, execute many instantiations via PlanSpec."""

    def test_one_spec_serves_many_bindings(self, registry, travel_template):
        reference = travel_template.instantiate({"topic": "DB", "budget": 700})
        best = Optimizer(
            registry,
            ExecutionTimeMetric(),
            OptimizerConfig(k=5, cache_setting=CacheSetting.ONE_CALL),
        ).optimize(reference)
        spec = PlanSpec.from_optimized(best)

        for topic, budget in [("DB", 700), ("AI", 500), ("IR", 900)]:
            query = travel_template.instantiate(
                {"topic": topic, "budget": budget}
            )
            plan = spec.build(query, registry)
            result = execute_plan(plan, registry, head=query.head)
            for _, _, _, price in result.answers(None):
                assert price <= budget
