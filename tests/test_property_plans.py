"""Property-based tests over the plan space of the running example:
annotation invariants, cache-setting monotonicity, and execution
agreement across all 19 topologies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costs.sum_cost import RequestResponseMetric
from repro.costs.time_cost import BottleneckMetric, ExecutionTimeMetric
from repro.execution.cache import CacheSetting
from repro.optimizer.topology import TopologyEnumerator
from repro.plans.annotate import annotate
from repro.plans.builder import PlanBuilder
from repro.sources.travel import (
    FLIGHT_ATOM,
    HOTEL_ATOM,
    alpha1_patterns,
    running_example_query,
    travel_registry,
)

_REGISTRY = travel_registry()
_QUERY = running_example_query()
_POSETS = TopologyEnumerator(_QUERY, alpha1_patterns()).all_posets()
_BUILDER = PlanBuilder(_QUERY, _REGISTRY)

poset_indexes = st.integers(0, len(_POSETS) - 1)
fetch_factors = st.integers(1, 4)


class TestAllNineteenTopologies:
    def test_the_space_has_19_posets(self):
        assert len(_POSETS) == 19

    @given(poset_indexes, fetch_factors, fetch_factors)
    @settings(max_examples=40, deadline=None)
    def test_every_plan_validates(self, index, f_flight, f_hotel):
        plan = _BUILDER.build(
            alpha1_patterns(), _POSETS[index],
            fetches={FLIGHT_ATOM: f_flight, HOTEL_ATOM: f_hotel},
        )
        plan.validate()

    @given(poset_indexes, fetch_factors, fetch_factors)
    @settings(max_examples=25, deadline=None)
    def test_annotation_invariants(self, index, f_flight, f_hotel):
        plan = _BUILDER.build(
            alpha1_patterns(), _POSETS[index],
            fetches={FLIGHT_ATOM: f_flight, HOTEL_ATOM: f_hotel},
        )
        for setting in CacheSetting:
            annotation = annotate(plan, setting)
            for node in plan.service_nodes:
                estimate = annotation.of(node)
                assert estimate.tuples_in >= 0
                assert estimate.tuples_out >= 0
                assert estimate.calls <= estimate.tuples_in + 1e-9

    @given(poset_indexes, fetch_factors, fetch_factors)
    @settings(max_examples=25, deadline=None)
    def test_cached_estimates_below_raw(self, index, f_flight, f_hotel):
        plan = _BUILDER.build(
            alpha1_patterns(), _POSETS[index],
            fetches={FLIGHT_ATOM: f_flight, HOTEL_ATOM: f_hotel},
        )
        raw = annotate(plan, CacheSetting.NO_CACHE)
        cached = annotate(plan, CacheSetting.ONE_CALL)
        for node in plan.service_nodes:
            assert cached.calls(node) <= raw.calls(node) + 1e-9
        # Output sizes do not depend on the cache setting.
        assert cached.output_size == pytest.approx(raw.output_size)

    @given(poset_indexes, fetch_factors, fetch_factors)
    @settings(max_examples=25, deadline=None)
    def test_bottleneck_below_etm(self, index, f_flight, f_hotel):
        plan = _BUILDER.build(
            alpha1_patterns(), _POSETS[index],
            fetches={FLIGHT_ATOM: f_flight, HOTEL_ATOM: f_hotel},
        )
        annotation = annotate(plan, CacheSetting.ONE_CALL)
        assert BottleneckMetric().cost(plan, annotation) <= (
            ExecutionTimeMetric().cost(plan, annotation) + 1e-9
        )

    @given(poset_indexes, st.integers(1, 3), st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_costs_monotone_in_fetches(self, index, f_flight, f_hotel):
        for metric in (ExecutionTimeMetric(), RequestResponseMetric()):
            small = _BUILDER.build(
                alpha1_patterns(), _POSETS[index],
                fetches={FLIGHT_ATOM: f_flight, HOTEL_ATOM: f_hotel},
            )
            big = _BUILDER.build(
                alpha1_patterns(), _POSETS[index],
                fetches={FLIGHT_ATOM: f_flight + 1, HOTEL_ATOM: f_hotel + 1},
            )
            cost_small = metric.cost(small, annotate(small, CacheSetting.ONE_CALL))
            cost_big = metric.cost(big, annotate(big, CacheSetting.ONE_CALL))
            assert cost_small <= cost_big + 1e-9


class TestExecutionAgreement:
    """Every topology computes the same answers (plans are equivalent
    rewritings of one conjunctive query)."""

    @pytest.fixture(scope="class")
    def reference_answers(self):
        from repro.execution.engine import execute_plan
        from repro.sources.travel import poset_optimal

        plan = _BUILDER.build(
            alpha1_patterns(), poset_optimal(),
            fetches={FLIGHT_ATOM: 1, HOTEL_ATOM: 1},
        )
        result = execute_plan(plan, _REGISTRY, head=_QUERY.head)
        return frozenset(result.answers(None))

    @pytest.mark.parametrize("index", range(len(_POSETS)))
    def test_topology_answers_agree(self, index, reference_answers):
        from repro.execution.engine import execute_plan

        plan = _BUILDER.build(
            alpha1_patterns(), _POSETS[index],
            fetches={FLIGHT_ATOM: 1, HOTEL_ATOM: 1},
        )
        result = execute_plan(plan, _REGISTRY, head=_QUERY.head)
        assert frozenset(result.answers(None)) == reference_answers
