"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestDemo:
    def test_weekend_demo(self, capsys):
        assert main(["demo", "weekend", "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "Optimal plan" in out
        assert "Top 3 answers" in out

    def test_demo_without_execution(self, capsys):
        assert main(["demo", "weekend", "-k", "3", "--no-execute"]) == 0
        out = capsys.readouterr().out
        assert "Optimal plan" in out
        assert "Top 3 answers" not in out

    def test_demo_requests_metric(self, capsys):
        assert main(
            ["demo", "weekend", "-k", "3", "--metric", "requests",
             "--no-execute"]
        ) == 0
        assert "request-response" in capsys.readouterr().out

    def test_default_domain_is_travel(self, capsys):
        assert main(["demo", "-k", "10", "--no-execute"]) == 0
        out = capsys.readouterr().out
        assert "conf" in out and "weather" in out


class TestOptimize:
    def test_adhoc_query_over_travel(self, capsys):
        query = (
            "q(City, Hotel, HPrice) :- "
            "conf('DB', Conf, Start, End, City), "
            "hotel(Hotel, City, 'luxury', Start, End, HPrice), "
            "HPrice <= 600."
        )
        assert main(["optimize", query, "-k", "5", "--no-execute"]) == 0
        out = capsys.readouterr().out
        assert "Optimal plan" in out

    def test_bad_query_raises(self):
        from repro.model.parser import ParseError

        with pytest.raises(ParseError):
            main(["optimize", "not a query", "--no-execute"])


class TestArgparse:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_domain_rejected(self):
        with pytest.raises(SystemExit):
            main(["demo", "mars"])
