"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestDemo:
    def test_weekend_demo(self, capsys):
        assert main(["demo", "weekend", "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "Optimal plan" in out
        assert "Top 3 answers" in out

    def test_demo_without_execution(self, capsys):
        assert main(["demo", "weekend", "-k", "3", "--no-execute"]) == 0
        out = capsys.readouterr().out
        assert "Optimal plan" in out
        assert "Top 3 answers" not in out

    def test_demo_requests_metric(self, capsys):
        assert main(
            ["demo", "weekend", "-k", "3", "--metric", "requests",
             "--no-execute"]
        ) == 0
        assert "request-response" in capsys.readouterr().out

    def test_default_domain_is_travel(self, capsys):
        assert main(["demo", "-k", "10", "--no-execute"]) == 0
        out = capsys.readouterr().out
        assert "conf" in out and "weather" in out


class TestOptimize:
    def test_adhoc_query_over_travel(self, capsys):
        query = (
            "q(City, Hotel, HPrice) :- "
            "conf('DB', Conf, Start, End, City), "
            "hotel(Hotel, City, 'luxury', Start, End, HPrice), "
            "HPrice <= 600."
        )
        assert main(["optimize", query, "-k", "5", "--no-execute"]) == 0
        out = capsys.readouterr().out
        assert "Optimal plan" in out

    def test_bad_query_raises(self):
        from repro.model.parser import ParseError

        with pytest.raises(ParseError):
            main(["optimize", "not a query", "--no-execute"])


class TestQueryCommand:
    def test_repeat_flips_provenance_to_memory(self, capsys):
        assert main(
            ["query", "--domain", "weekend", "-k", "3", "--repeat", "2"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        import json

        first, second, snapshot = (json.loads(line) for line in lines)
        assert first["provenance"] == "optimized"
        assert second["provenance"] == "memory"
        assert second["rows"] == first["rows"]
        assert second["rank_keys"] == first["rank_keys"]
        assert second["stats"]["service_calls"] == 0  # shared service cache
        assert snapshot["plan_cache"]["memory_hits"] == 1

    def test_adhoc_query_and_disk_persistence(self, capsys, tmp_path):
        cache_path = str(tmp_path / "plans.json")
        query = (
            "q(City, Price) :- lowcost('Milano', City, Date, Price), "
            "Price <= 60."
        )
        import json

        assert main(
            ["query", query, "--domain", "weekend", "-k", "2",
             "--plan-cache", cache_path]
        ) == 0
        first = json.loads(capsys.readouterr().out.strip().splitlines()[0])
        assert first["provenance"] == "optimized"
        # A second process (fresh service) starts warm from disk.
        assert main(
            ["query", query, "--domain", "weekend", "-k", "2",
             "--plan-cache", cache_path]
        ) == 0
        second = json.loads(capsys.readouterr().out.strip().splitlines()[0])
        assert second["provenance"] == "disk"
        assert second["rows"] == first["rows"]

    def test_sqlite_plan_cache_selected_by_suffix(self, capsys, tmp_path):
        # A .sqlite suffix picks the WAL-mode SQLite tier without any
        # backend flag, and a second process starts warm from it.
        import json
        import sqlite3

        cache_path = str(tmp_path / "plans.sqlite")
        query = (
            "q(City, Price) :- lowcost('Milano', City, Date, Price), "
            "Price <= 60."
        )
        assert main(
            ["query", query, "--domain", "weekend", "-k", "2",
             "--plan-cache", cache_path]
        ) == 0
        first = json.loads(capsys.readouterr().out.strip().splitlines()[0])
        assert first["provenance"] == "optimized"
        with sqlite3.connect(cache_path) as db:
            assert db.execute("SELECT COUNT(*) FROM plans").fetchone()[0] == 1
        assert main(
            ["query", query, "--domain", "weekend", "-k", "2",
             "--plan-cache", cache_path]
        ) == 0
        second = json.loads(capsys.readouterr().out.strip().splitlines()[0])
        assert second["provenance"] == "disk"
        assert second["rows"] == first["rows"]

    def test_explicit_backend_flag_overrides_suffix(self, capsys, tmp_path):
        import json
        import sqlite3

        cache_path = str(tmp_path / "plans.cache")  # neutral suffix
        query = "q(City) :- lowcost('Milano', City, Date, Price)."
        assert main(
            ["query", query, "--domain", "weekend", "-k", "1",
             "--plan-cache", cache_path,
             "--plan-cache-backend", "sqlite"]
        ) == 0
        json.loads(capsys.readouterr().out.strip().splitlines()[0])
        with sqlite3.connect(cache_path) as db:
            assert db.execute("SELECT COUNT(*) FROM plans").fetchone()[0] == 1


class TestServeCommand:
    def test_serve_loop(self, capsys, monkeypatch):
        import io
        import json

        script = (
            "q(City, Date, Price, Venue) :- "
            "lowcost('Milano', City, Date, Price), "
            "concerts(City, Date, 'Mahler', Venue), Price <= 120.\n"
            "more s000001 2\n"
            "not a query\n"
            "stats\n"
            "quit\n"
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(script))
        assert main(["serve", "--domain", "weekend", "-k", "2"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        submitted = json.loads(lines[0])
        assert submitted["provenance"] == "optimized"
        assert submitted["session_id"] == "s000001"
        more = json.loads(lines[1])
        assert more["provenance"] == "session"
        assert len(more["rows"]) >= len(submitted["rows"])
        assert "error" in json.loads(lines[2])
        stats = json.loads(lines[3])
        assert stats["serving"]["continuations"] == 1

    def test_query_named_like_more_is_not_misrouted(self, capsys, monkeypatch):
        import io
        import json

        script = (
            "more_shows(City, Venue) :- "
            "concerts(City, Date, 'Mahler', Venue).\n"
            "quit\n"
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(script))
        assert main(["serve", "--domain", "weekend", "-k", "2"]) == 0
        response = json.loads(capsys.readouterr().out.splitlines()[0])
        assert "error" not in response
        assert response["columns"] == ["City", "Venue"]


class TestArgparse:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_domain_rejected(self):
        with pytest.raises(SystemExit):
            main(["demo", "mars"])
