"""Unit tests for atoms and the callability test (Definition 3.1)."""

import pytest

from repro.model.atoms import Atom, atom
from repro.model.schema import AccessPattern, SchemaError, schema_of, signature
from repro.model.terms import Constant, Variable


@pytest.fixture()
def conf_atom():
    return atom("conf", "db", "Name", "Start", "End", "City")


class TestAtomBasics:
    def test_arity(self, conf_atom):
        assert conf_atom.arity == 5

    def test_variables_in_order(self, conf_atom):
        assert conf_atom.variables == (
            Variable("Name"), Variable("Start"), Variable("End"), Variable("City")
        )

    def test_constants(self, conf_atom):
        assert conf_atom.constants == (Constant("db"),)

    def test_variable_set_deduplicates(self):
        repeated = atom("s", "X", "X", "Y")
        assert repeated.variable_set == {Variable("X"), Variable("Y")}

    def test_positions_of(self):
        repeated = atom("s", "X", "X", "Y")
        assert repeated.positions_of(Variable("X")) == (0, 1)

    def test_str(self, conf_atom):
        assert str(conf_atom) == "conf('db', Name, Start, End, City)"

    def test_non_term_argument_rejected(self):
        with pytest.raises(TypeError):
            Atom("s", ("raw",))  # type: ignore[arg-type]


class TestPatternViews:
    def test_input_and_output_terms(self, conf_atom):
        pattern = AccessPattern("ioooo")
        assert conf_atom.input_terms(pattern) == (Constant("db"),)
        assert conf_atom.output_terms(pattern) == (
            Variable("Name"), Variable("Start"), Variable("End"), Variable("City")
        )

    def test_input_and_output_variables(self, conf_atom):
        pattern = AccessPattern("ooooi")
        assert conf_atom.input_variables(pattern) == {Variable("City")}
        assert Variable("Name") in conf_atom.output_variables(pattern)

    def test_pattern_arity_checked(self, conf_atom):
        with pytest.raises(SchemaError):
            conf_atom.input_terms(AccessPattern("io"))


class TestCallability:
    def test_constant_inputs_make_directly_callable(self, conf_atom):
        assert conf_atom.is_callable_given(AccessPattern("ioooo"), frozenset())

    def test_unbound_variable_input_blocks(self, conf_atom):
        assert not conf_atom.is_callable_given(AccessPattern("ooooi"), frozenset())

    def test_bound_variable_input_allows(self, conf_atom):
        bound = frozenset({Variable("City")})
        assert conf_atom.is_callable_given(AccessPattern("ooooi"), bound)

    def test_mixed_inputs(self):
        mixed = atom("f", "milano", "City", "Date")
        pattern = AccessPattern("iio")
        assert not mixed.is_callable_given(pattern, frozenset())
        assert mixed.is_callable_given(pattern, frozenset({Variable("City")}))


class TestSchemaValidation:
    def test_validate_against_ok(self, conf_atom):
        schema = schema_of(
            [signature("conf", ["T", "N", "S", "E", "C"], ["ioooo"])]
        )
        assert conf_atom.validate_against(schema).name == "conf"

    def test_validate_against_wrong_arity(self, conf_atom):
        schema = schema_of([signature("conf", ["T", "N"], ["io"])])
        with pytest.raises(SchemaError):
            conf_atom.validate_against(schema)

    def test_validate_against_unknown_service(self, conf_atom):
        schema = schema_of([signature("other", ["A"], ["o"])])
        with pytest.raises(SchemaError):
            conf_atom.validate_against(schema)
