"""Tests for per-node execution tracing (estimated vs actual flow)."""

import pytest

from repro.execution.cache import CacheSetting
from repro.execution.engine import execute_plan
from repro.plans.annotate import annotate
from repro.plans.builder import PlanBuilder
from repro.sources.travel import (
    CONF_ATOM,
    FLIGHT_ATOM,
    HOTEL_ATOM,
    WEATHER_ATOM,
    alpha1_patterns,
    poset_optimal,
    poset_serial,
)


@pytest.fixture()
def traced(registry, travel_query):
    plan = PlanBuilder(travel_query, registry).build(
        alpha1_patterns(), poset_serial(),
        fetches={FLIGHT_ATOM: 1, HOTEL_ATOM: 1},
    )
    result = execute_plan(
        plan, registry, head=travel_query.head,
        cache_setting=CacheSetting.NO_CACHE,
    )
    return plan, result


class TestNodeTracing:
    def test_sizes_collected_for_every_node(self, traced):
        plan, result = traced
        for node in plan.nodes:
            assert result.output_size_of(node) >= 0

    def test_known_flow_values(self, traced):
        """The Section 6 narrative, node by node, in plan S."""
        plan, result = traced
        assert result.output_size_of(plan.input_node) == 1
        assert result.output_size_of(
            plan.service_node_for_atom(CONF_ATOM)
        ) == 71
        assert result.output_size_of(
            plan.service_node_for_atom(WEATHER_ATOM)
        ) == 16
        assert result.output_size_of(
            plan.service_node_for_atom(FLIGHT_ATOM)
        ) == 284

    def test_estimates_and_actuals_have_same_shape(self, registry, travel_query):
        """Estimated t_out orders the nodes the same way the executed
        flow does (the estimate uses average profiles, the execution
        the concrete 'DB' data)."""
        plan = PlanBuilder(travel_query, registry).build(
            alpha1_patterns(), poset_optimal(),
            fetches={FLIGHT_ATOM: 1, HOTEL_ATOM: 1},
        )
        annotation = annotate(plan, CacheSetting.NO_CACHE)
        result = execute_plan(plan, registry, head=travel_query.head)
        service_nodes = plan.service_nodes
        estimated = sorted(
            service_nodes, key=lambda n: annotation.tuples_out(n)
        )
        actual = sorted(
            service_nodes, key=lambda n: result.output_size_of(n)
        )
        # weather smallest, conf middle, searches largest in both.
        assert estimated[0].service_name == actual[0].service_name == "weather"

    def test_output_node_matches_row_count(self, traced):
        plan, result = traced
        assert result.output_size_of(plan.output_node) == len(result.rows)
