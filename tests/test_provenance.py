"""Per-row provenance: truthful audit records, zero-cost when off.

Every answer row can carry the ``(service, input key, page index)``
of each page pull that contributed to it
(:data:`~repro.execution.results.ProvenanceRecord`), epoch-stamped at
the serving layer.  The contracts pinned here:

* **Off by default, and free**: with ``row_provenance`` disabled
  (everywhere the default) every row's provenance is empty, rows and
  ranks are bit-identical to a provenance-enabled run, and the JSON
  response is byte-identical — the ``row_provenance`` key is *absent*,
  not null.
* **Truthful**: replaying the invocation named by a record (same
  service, pattern, inputs, page) returns a page actually containing
  the row's contribution — provenance is an audit trail, not an
  annotation.
* **Complete**: under every execution mode (sequential, parallel,
  streamed lazy/eager, the thread-pool executor) and through
  continuations, every answer row carries one record per service atom
  it was joined from.
"""

from __future__ import annotations

import json

import pytest

from repro.execution.engine import ExecutionEngine, ExecutionMode
from repro.execution.parallel import ParallelExecutor
from repro.execution.results import Row
from repro.model.parser import parse_query
from repro.serving import QueryService
from repro.sources.biblio import biblio_registry, experts_query

PUBSEARCH_ONLY = (
    "q(P, T, Y) :- pubsearch('service computing', P, T, Y)."
)


def _optimize(registry, query, k=8):
    from repro.costs.time_cost import ExecutionTimeMetric
    from repro.optimizer.optimizer import Optimizer, OptimizerConfig

    return Optimizer(
        registry, ExecutionTimeMetric(), OptimizerConfig(k=k)
    ).optimize(query).plan


class TestRowMechanics:
    def test_with_provenance_appends(self):
        row = Row(bindings={"X": 1})
        tagged = row.with_provenance(("svc", ("i", ((0, "a"),)), 0))
        again = tagged.with_provenance(("svc", ("i", ((0, "a"),)), 1))
        assert row.provenance == ()
        assert len(again.provenance) == 2

    def test_merge_concatenates(self):
        left = Row(bindings={"X": 1}).with_provenance(("a", ("i", ()), 0))
        right = Row(bindings={"Y": 2}).with_provenance(("b", ("i", ()), 3))
        merged = left.merged_with(right)
        assert merged is not None
        assert merged.provenance == left.provenance + right.provenance

    def test_with_rank_preserves(self):
        row = Row(bindings={"X": 1}).with_provenance(("a", ("i", ()), 0))
        assert row.with_rank("s1", 4).provenance == row.provenance


def _rows(registry, query, *, enabled, mode=ExecutionMode.PARALLEL,
          lazy=True, pool=False, k=8):
    plan = _optimize(registry, query, k)
    if pool:
        executor = ParallelExecutor(registry, row_provenance=enabled)
        return executor.execute(plan, head=query.head, k=k).rows
    engine = ExecutionEngine(
        registry, mode=mode, lazy_streaming=lazy, row_provenance=enabled
    )
    return engine.execute(plan, head=query.head, k=k).rows


class TestEngineProvenance:
    MODES = [
        ("sequential", dict(mode=ExecutionMode.SEQUENTIAL)),
        ("parallel", dict(mode=ExecutionMode.PARALLEL)),
        ("streamed-lazy", dict(mode=ExecutionMode.STREAMED, lazy=True)),
        ("streamed-eager", dict(mode=ExecutionMode.STREAMED, lazy=False)),
        ("thread-pool", dict(pool=True)),
    ]

    @pytest.mark.parametrize(
        "kwargs", [kwargs for _, kwargs in MODES],
        ids=[name for name, _ in MODES],
    )
    def test_every_row_tagged_and_answers_unchanged(self, kwargs):
        query = experts_query()
        plain = _rows(biblio_registry(), query, enabled=False, **kwargs)
        tagged = _rows(biblio_registry(), query, enabled=True, **kwargs)
        # Rank *labels* are registry-local auto-assigned ids, so a
        # cross-registry differential compares bindings + rank values.
        signature_of = lambda rows: [  # noqa: E731
            (r.bindings, tuple(rank for _, rank in r.ranks)) for r in rows
        ]
        assert signature_of(plain) == signature_of(tagged)
        assert plain  # the query has answers
        assert all(row.provenance == () for row in plain)
        services = {name for name in ("pubsearch", "authors", "projects")}
        for row in tagged:
            named = {record[0] for record in row.provenance}
            # One record per service atom the row was joined from.
            assert named == services
            assert all(page >= 0 for _, _, page in row.provenance)

    def test_records_replay_truthfully(self):
        registry = biblio_registry()
        query = parse_query(PUBSEARCH_ONLY)
        rows = _rows(registry, query, enabled=True)
        assert rows
        for row in rows:
            assert len(row.provenance) == 1
            service_name, (pattern_code, bound), page = row.provenance[0]
            service = registry.service(service_name)
            replayed = service.invoke(
                service.signature.pattern(pattern_code), dict(bound), page
            )
            answer = row.project(query.head)
            assert any(
                tuple_[1:4] == answer for tuple_ in replayed.tuples
            ), (answer, replayed.tuples)


class TestServingProvenance:
    def _service(self, enabled, registry=None, plan_cache=None):
        kwargs = {} if plan_cache is None else {"plan_cache": plan_cache}
        return QueryService(
            registry=registry if registry is not None else biblio_registry(),
            row_provenance=enabled,
            **kwargs,
        )

    @staticmethod
    def _canonical(rendered: dict) -> dict:
        """Rendered response with rank labels made submission-stable.

        Rank labels are plan-node ids minted fresh on every plan
        materialization (two *identical disabled* submissions already
        differ in them), so the byte-identity claim is over the
        response modulo that pre-existing gensym: labels are renamed
        to their order of first appearance.
        """
        names: dict[str, str] = {}
        ranks = [
            [
                [names.setdefault(label, f"n{len(names)}"), rank]
                for label, rank in row
            ]
            for row in rendered["ranks"]
        ]
        return {**rendered, "ranks": ranks}

    def test_disabled_response_is_byte_identical(self):
        # One registry (rank values are registry-order-dependent),
        # remote latency state reset between submissions so each sees
        # an equally cold world.
        registry = biblio_registry()
        off = self._service(False, registry).submit(experts_query(), k=6)
        registry.reset_all()
        off_again = self._service(False, registry).submit(experts_query(), k=6)
        registry.reset_all()
        on = self._service(True, registry).submit(experts_query(), k=6)
        rendered_off = off.to_dict()
        rendered_on = on.to_dict()
        assert "row_provenance" not in rendered_off
        assert json.dumps(rendered_off, sort_keys=True) == off.to_json()
        provenance = rendered_on.pop("row_provenance")
        assert len(provenance) == len(rendered_off["rows"])
        # The gensym baseline: two disabled submissions agree only up
        # to label renaming — and the enabled one agrees to exactly
        # the same degree, i.e. provenance changed no answer bytes.
        assert self._canonical(off_again.to_dict()) == self._canonical(
            rendered_off
        )
        assert self._canonical(rendered_on) == self._canonical(rendered_off)

    def test_records_are_epoch_stamped_dicts(self):
        response = self._service(True).submit(experts_query(), k=6)
        rendered = response.to_dict()
        assert rendered["rows"]
        for row_records in rendered["row_provenance"]:
            assert row_records  # no answer row without an audit trail
            for record in row_records:
                assert set(record) == {"service", "input", "page", "epoch"}
                assert record["epoch"] == response.epoch
                assert record["page"] >= 0

    def test_continuations_carry_provenance(self):
        service = self._service(True)
        first = service.submit(experts_query(), k=3)
        more = service.ask_for_more(first.session_id, 4)
        rendered = more.to_dict()
        assert len(rendered["row_provenance"]) == len(rendered["rows"])
        assert len(rendered["rows"]) > len(first.rows)
        assert all(records for records in rendered["row_provenance"])

    def test_json_round_trip(self):
        response = self._service(True).submit(experts_query(), k=4)
        decoded = json.loads(response.to_json())
        rendered = json.loads(
            json.dumps(response.to_dict()["row_provenance"])
        )  # tuples flatten to JSON arrays
        assert decoded["row_provenance"] == rendered
