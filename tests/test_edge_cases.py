"""Edge-case batch: validation errors and rarely-hit branches."""

import pytest

from repro.model.schema import AccessPattern, signature
from repro.services.base import InvocationError, InvocationResult, LatencyModel
from repro.services.profile import exact_profile
from repro.services.table import TableExactService


class TestInvocationResult:
    def test_rank_alignment_enforced(self):
        with pytest.raises(InvocationError):
            InvocationResult(
                tuples=(("a",), ("b",)), latency=1.0, has_more=False,
                ranks=(0,),
            )

    def test_len(self):
        result = InvocationResult(tuples=(("a",),), latency=1.0, has_more=False)
        assert len(result) == 1


class TestLatencyModel:
    def test_custom_repeat_factor(self):
        model = LatencyModel(
            response_time=10.0, remote_caching=True, repeat_factor=0.5
        )
        first, hit_first = model.latency_for("key")
        second, hit_second = model.latency_for("key")
        assert (first, hit_first) == (10.0, False)
        assert (second, hit_second) == (5.0, True)

    def test_reset_forgets(self):
        model = LatencyModel(response_time=10.0, remote_caching=True)
        model.latency_for("key")
        model.reset()
        latency, hit = model.latency_for("key")
        assert latency == 10.0 and not hit


class TestServiceValidation:
    @pytest.fixture()
    def service(self):
        return TableExactService(
            signature("s", ["A", "B"], ["io"]),
            exact_profile(erspi=1.0, response_time=1.0),
            [("a", 1)],
        )

    def test_negative_page_rejected(self, service):
        with pytest.raises(InvocationError):
            service.invoke(AccessPattern("io"), {0: "a"}, page=-1)

    def test_repr(self, service):
        assert "TableExactService" in repr(service)
        assert "'s'" in repr(service)


class TestNodeValidation:
    def test_service_node_requires_parts(self):
        from repro.plans.nodes import ServiceNode

        with pytest.raises(ValueError):
            ServiceNode()

    def test_bulk_node_rejects_fetches(self):
        from repro.model.atoms import atom
        from repro.plans.nodes import ServiceNode

        with pytest.raises(ValueError):
            ServiceNode(
                atom_index=0,
                atom=atom("s", "X"),
                pattern=AccessPattern("o"),
                profile=exact_profile(erspi=1.0, response_time=1.0),
                fetches=2,
            )

    def test_join_selectivity_bounds(self):
        from repro.plans.nodes import JoinNode

        with pytest.raises(ValueError):
            JoinNode(selectivity=1.5)

    def test_labels(self):
        from repro.model.atoms import atom
        from repro.plans.nodes import JoinNode, ServiceNode
        from repro.services.profile import search_profile
        from repro.services.registry import JoinMethod
        from repro.model.terms import Variable

        search_node = ServiceNode(
            atom_index=0,
            atom=atom("s", "X"),
            pattern=AccessPattern("o"),
            profile=search_profile(chunk_size=5, response_time=1.0),
            fetches=2,
        )
        assert "~" in search_node.label and "F=2" in search_node.label
        join = JoinNode(
            method=JoinMethod.NESTED_LOOP,
            variables=frozenset({Variable("City")}),
        )
        assert join.label == "NL(City)"
        assert JoinNode().label == "MS(×)"


class TestProfilerEdge:
    def test_multi_page_probe_counts_all_fetches(self):
        from repro.services.profiler import ServiceProfiler
        from repro.services.profile import search_profile
        from repro.services.table import TableSearchService

        service = TableSearchService(
            signature("s", ["K", "V"], ["io"]),
            search_profile(chunk_size=2, response_time=1.0),
            [("k", i) for i in range(5)],
            score=lambda row: -float(row[1]),
        )
        estimate = ServiceProfiler(service).estimate(
            AccessPattern("io"), [{0: "k"}], fetches_per_input=3
        )
        assert estimate.invocations == 3  # pages 0, 1, 2 (last short)
        assert estimate.chunk_size == 2


class TestRegistryEdge:
    def test_names_and_iteration(self, tiny_registry):
        assert tiny_registry.names == ("cities", "spots")
        assert len(list(tiny_registry)) == 2

    def test_profile_unknown_pattern_falls_back(self, tiny_registry):
        default = tiny_registry.profile("cities")
        assert tiny_registry.profile("cities", "zz") == default


class TestAnnotationEdge:
    def test_single_atom_plan(self, tiny_registry):
        from repro.execution.cache import CacheSetting
        from repro.model.atoms import atom
        from repro.model.query import query as make_query
        from repro.model.terms import Variable
        from repro.plans.annotate import annotate
        from repro.plans.builder import PlanBuilder, Poset

        q = make_query("q", [Variable("City")], [atom("cities", "it", "City")])
        plan = PlanBuilder(q, tiny_registry).build(
            (tiny_registry.signature("cities").pattern("io"),), Poset(n=1)
        )
        annotation = annotate(plan, CacheSetting.ONE_CALL)
        assert annotation.output_size == pytest.approx(3.0)
        node = plan.service_nodes[0]
        assert annotation.calls(node) == pytest.approx(1.0)
