"""Differential suite for slot-indexed row execution.

Slot execution (``repro.execution.slots``) is a pure representation
change: the hashed join, the join stream, and the engine's service
nodes carry rows as fixed-width value tuples through their inner loops
and decode them back to :class:`Row` bindings at node boundaries.
Everything here checks **bit-identity** against the dict-row path —
the ``slot_rows=False`` oracle — across random inputs, methods, k, and
whole-plan executions, plus the documented fallbacks: heterogeneous
rows, unhashable key values, and predicates over unbound variables
must take the dict path and reproduce its exact behavior (including
its exceptions).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execution.engine import ExecutionEngine, ExecutionMode
from repro.execution.joins import (
    JoinStream,
    _hashed_join_slot_path,
    execute_join,
    execute_join_hashed,
)
from repro.execution.results import Row, compose_ranking
from repro.execution.slots import (
    SlotJoinPlan,
    SlotLayout,
    compile_comparison,
    compile_expression,
    compile_predicates,
    layout_for_rows,
)
from repro.model.predicates import BinaryExpression, Comparison, PredicateError
from repro.model.terms import Constant, Variable
from repro.services.registry import JoinMethod

from tests.test_property_streaming import (
    _random_table_plan,
    _ranked_side,
    _signature,
)

METHODS = (JoinMethod.NESTED_LOOP, JoinMethod.MERGE_SCAN)

K, L, R = Variable("K"), Variable("L"), Variable("R")

_keys = st.lists(st.integers(0, 3), min_size=0, max_size=6)
_ranks = st.lists(st.integers(0, 9), min_size=6, max_size=6)
_k = st.one_of(st.none(), st.integers(0, 40))


class TestSlotLayout:
    def test_encode_decode_roundtrip(self):
        row = Row(bindings={K: 1, L: "x"}, ranks=(("s", 2),))
        layout = SlotLayout.for_row(row)
        values = layout.encode(row)
        assert values == (1, "x")
        decoded = layout.decode(values, ranks=row.ranks)
        assert decoded == row

    def test_encode_rejects_heterogeneous_rows(self):
        layout = SlotLayout((K, L))
        assert layout.encode(Row(bindings={K: 1})) is None  # missing L
        assert layout.encode(Row(bindings={K: 1, R: 2})) is None  # wrong set
        assert layout.encode(Row(bindings={K: 1, L: 2, R: 3})) is None  # extra

    def test_layout_for_rows_empty(self):
        assert layout_for_rows([]) is None

    def test_join_plan_merge_matches_merged_with(self):
        left = Row(bindings={K: 1, L: 2})
        right_match = Row(bindings={K: 1, R: 3})
        right_clash = Row(bindings={K: 9, R: 3})
        plan = SlotJoinPlan(
            SlotLayout.for_row(left), SlotLayout.for_row(right_match)
        )
        merged = plan.merge(
            plan.left.encode(left), plan.right.encode(right_match)
        )
        expected = left.merged_with(right_match)
        assert plan.merged.decode(merged) == expected
        assert tuple(plan.merged.variables) == tuple(expected.bindings)
        assert (
            plan.merge(plan.left.encode(left), plan.right.encode(right_clash))
            is None
        )
        assert left.merged_with(right_clash) is None


class TestCompiledPredicates:
    def test_compiled_comparison_matches_holds(self):
        layout = SlotLayout((L, R))
        predicate = Comparison(
            BinaryExpression("+", L, R), "<", Constant(5)
        )
        holds = compile_comparison(predicate, layout)
        for pair in [(1, 2), (4, 4), (2, 3)]:
            row = Row(bindings={L: pair[0], R: pair[1]})
            assert holds(layout.encode(row)) == predicate.holds(row.bindings)

    def test_compiled_comparison_raises_identical_error(self):
        layout = SlotLayout((L,))
        predicate = Comparison(L, "<", Constant(5))
        holds = compile_comparison(predicate, layout)
        with pytest.raises(PredicateError) as compiled_error:
            holds(layout.encode(Row(bindings={L: "text"})))
        with pytest.raises(PredicateError) as dict_error:
            predicate.holds({L: "text"})
        assert str(compiled_error.value) == str(dict_error.value)

    def test_unbound_variable_is_uncompilable(self):
        layout = SlotLayout((L,))
        assert compile_expression(R, layout) is None
        assert compile_comparison(Comparison(R, "<", Constant(1)), layout) is None
        assert (
            compile_predicates(
                [Comparison(L, "<", Constant(1)), Comparison(R, "<", Constant(1))],
                layout,
            )
            is None
        )  # all-or-nothing


class TestHashedJoinSlotPath:
    @given(_keys, _keys, _ranks, _ranks)
    @settings(max_examples=100, deadline=None)
    def test_bit_identical_to_dict_path(self, lk, rk, lr, rr):
        left = _ranked_side(lk, lr, "L")
        right = _ranked_side(rk, rr, "R")
        predicate = Comparison(
            BinaryExpression("+", L, R), "<", Constant(5)
        )
        for method in METHODS:
            for predicates in ((), (predicate,)):
                slot = execute_join_hashed(
                    method, left, right, predicates, slot_rows=True
                )
                oracle = execute_join_hashed(
                    method, left, right, predicates, slot_rows=False
                )
                assert _signature(slot) == _signature(oracle)

    def test_slot_path_engages_on_homogeneous_rows(self):
        left = _ranked_side([0, 1, 0], [1, 2, 3, 0, 0, 0], "L")
        right = _ranked_side([0, 1, 1], [3, 2, 1, 0, 0, 0], "R")
        assert _hashed_join_slot_path(
            JoinMethod.MERGE_SCAN, left, right, ()
        ) is not None

    def test_heterogeneous_rows_fall_back(self):
        left = [Row(bindings={K: 0, L: 0}), Row(bindings={K: 0})]
        right = [Row(bindings={K: 0, R: 1})]
        assert _hashed_join_slot_path(JoinMethod.NESTED_LOOP, left, right, ()) is None
        assert _signature(
            execute_join_hashed(JoinMethod.NESTED_LOOP, left, right)
        ) == _signature(execute_join(JoinMethod.NESTED_LOOP, left, right))

    def test_unhashable_keys_fall_back(self):
        left = [Row(bindings={K: [1], L: 0})]
        right = [Row(bindings={K: [1], R: 0})]
        assert _hashed_join_slot_path(JoinMethod.NESTED_LOOP, left, right, ()) is None
        assert _signature(
            execute_join_hashed(JoinMethod.NESTED_LOOP, left, right)
        ) == _signature(execute_join(JoinMethod.NESTED_LOOP, left, right))

    def test_uncompilable_predicate_falls_back_to_dict_error(self):
        left = [Row(bindings={K: 0, L: 0})]
        right = [Row(bindings={K: 0, R: 0})]
        unbound = Comparison(Variable("Missing"), "<", Constant(1))
        assert (
            _hashed_join_slot_path(
                JoinMethod.NESTED_LOOP, left, right, (unbound,)
            )
            is None
        )
        with pytest.raises(PredicateError) as slot_error:
            execute_join_hashed(
                JoinMethod.NESTED_LOOP, left, right, (unbound,), slot_rows=True
            )
        with pytest.raises(PredicateError) as dict_error:
            execute_join_hashed(
                JoinMethod.NESTED_LOOP, left, right, (unbound,), slot_rows=False
            )
        assert str(slot_error.value) == str(dict_error.value)


class TestJoinStreamSlotPath:
    @given(_keys, _keys, _ranks, _ranks, _k)
    @settings(max_examples=100, deadline=None)
    def test_bit_identical_to_dict_stream(self, lk, rk, lr, rr, k):
        left = _ranked_side(lk, lr, "L")
        right = _ranked_side(rk, rr, "R")
        predicate = Comparison(
            BinaryExpression("+", L, R), "<", Constant(5)
        )
        for method in METHODS:
            slot_stream = JoinStream(
                method, left, right, (predicate,), slot_rows=True
            )
            dict_stream = JoinStream(
                method, left, right, (predicate,), slot_rows=False
            )
            assert _signature(slot_stream.top(k)) == _signature(
                dict_stream.top(k)
            )
            # identical walk, not just identical answers
            assert slot_stream.cells_visited == dict_stream.cells_visited
            assert slot_stream.cells_skipped == dict_stream.cells_skipped

    @given(_keys, _keys, _ranks, _ranks, st.integers(0, 6), st.integers(0, 30))
    @settings(max_examples=60, deadline=None)
    def test_resumed_slot_stream_stays_identical(
        self, lk, rk, lr, rr, k1, k2_extra
    ):
        left = _ranked_side(lk, lr, "L")
        right = _ranked_side(rk, rr, "R")
        for method in METHODS:
            slot_stream = JoinStream(method, left, right, slot_rows=True)
            dict_stream = JoinStream(method, left, right, slot_rows=False)
            assert _signature(slot_stream.top(k1)) == _signature(
                dict_stream.top(k1)
            )
            k2 = k1 + k2_extra
            assert _signature(slot_stream.top(k2)) == _signature(
                dict_stream.top(k2)
            )

    def test_heterogeneous_input_falls_back_mid_walk(self):
        left = [
            Row(bindings={K: 0, L: 0}, ranks=(("L", 0),)),
            Row(bindings={K: 0}, ranks=(("L", 1),)),  # misfit row
        ]
        right = _ranked_side([0, 0], [0, 1, 0, 0, 0, 0], "R")
        slot_stream = JoinStream(JoinMethod.NESTED_LOOP, left, right)
        dict_stream = JoinStream(
            JoinMethod.NESTED_LOOP, left, right, slot_rows=False
        )
        assert _signature(slot_stream.top(None)) == _signature(
            dict_stream.top(None)
        )
        assert slot_stream._slot_failed  # the fallback actually fired


class TestEngineSlotPath:
    """Whole-plan slot execution vs the dict-row engine."""

    @given(
        st.lists(st.integers(0, 2), min_size=1, max_size=6),
        st.lists(st.integers(0, 2), min_size=1, max_size=6),
        st.one_of(st.none(), st.integers(0, 12)),
        st.sampled_from(METHODS),
    )
    @settings(max_examples=25, deadline=None)
    def test_engine_bit_identical_across_modes(self, lk, rk, k, method):
        registry, query, plan = _random_table_plan(lk, rk, method)
        head = tuple(query.head)
        for mode in (ExecutionMode.PARALLEL, ExecutionMode.STREAMED):
            slot = ExecutionEngine(registry, mode=mode, slot_rows=True).execute(
                plan, head=head, k=k
            )
            oracle = ExecutionEngine(
                registry, mode=mode, slot_rows=False
            ).execute(plan, head=head, k=k)
            assert _signature(slot.rows) == _signature(oracle.rows)
            assert slot.complete == oracle.complete
            assert slot.stats.summary() == oracle.stats.summary()
            assert slot.node_output_sizes == oracle.node_output_sizes

    def test_full_scan_agrees_with_compose_ranking_oracle(self):
        registry, query, plan = _random_table_plan(
            [0, 1, 2, 0], [2, 1, 0, 0], JoinMethod.MERGE_SCAN
        )
        head = tuple(query.head)
        result = ExecutionEngine(
            registry, mode=ExecutionMode.PARALLEL, slot_rows=True
        ).execute(plan, head=head)
        oracle = ExecutionEngine(
            registry, mode=ExecutionMode.PARALLEL, slot_rows=False
        ).execute(plan, head=head)
        assert _signature(result.rows) == _signature(
            compose_ranking(oracle.rows)
        )
