"""Matrix integration test: every domain × every metric, end to end.

Optimizes and executes each showcase query under each primary metric
and checks the fundamental contracts: the chosen plan is executable,
the expected answers meet k, execution respects the query semantics,
and the branch-and-bound optimum matches the exhaustive oracle.
"""

import pytest

from repro.baselines.exhaustive import exhaustive_optimize
from repro.costs.sum_cost import RequestResponseMetric, SumCostMetric
from repro.costs.time_cost import BottleneckMetric, ExecutionTimeMetric
from repro.execution.cache import CacheSetting
from repro.execution.engine import execute_plan
from repro.optimizer.optimizer import Optimizer, OptimizerConfig

_DOMAINS = {}


def _domain(name):
    if name not in _DOMAINS:
        if name == "travel":
            from repro.sources.travel import running_example_query, travel_registry

            _DOMAINS[name] = (travel_registry(), running_example_query(), 10)
        elif name == "bio":
            from repro.sources.bio import bio_registry, glycolysis_homolog_query

            _DOMAINS[name] = (bio_registry(), glycolysis_homolog_query(), 5)
        elif name == "biblio":
            from repro.sources.biblio import biblio_registry, experts_query

            _DOMAINS[name] = (biblio_registry(), experts_query(), 5)
        elif name == "weekend":
            from repro.sources.weekend import (
                mahler_weekend_query,
                weekend_registry,
            )

            _DOMAINS[name] = (weekend_registry(), mahler_weekend_query(), 3)
        elif name == "news":
            from repro.sources.news import (
                market_moving_news_query,
                news_registry,
            )

            _DOMAINS[name] = (
                news_registry(),
                market_moving_news_query(min_move=0),
                3,
            )
    return _DOMAINS[name]


_METRICS = {
    "etm": ExecutionTimeMetric,
    "rr": RequestResponseMetric,
    "scm": SumCostMetric,
    "bottleneck": BottleneckMetric,
}


@pytest.mark.parametrize("domain", ["travel", "bio", "biblio", "weekend", "news"])
@pytest.mark.parametrize("metric_name", ["etm", "rr"])
class TestDomainMetricMatrix:
    def test_optimize_and_execute(self, domain, metric_name):
        registry, query, k = _domain(domain)
        metric = _METRICS[metric_name]()
        best = Optimizer(
            registry, metric,
            OptimizerConfig(k=k, cache_setting=CacheSetting.ONE_CALL),
        ).optimize(query)
        assert best.expected_answers >= k
        result = execute_plan(
            best.plan, registry, head=query.head,
            cache_setting=CacheSetting.ONE_CALL,
        )
        # Executed answers satisfy every query predicate.
        for row in result.rows:
            for predicate in query.predicates:
                assert predicate.holds(row.bindings)

    def test_bnb_matches_oracle(self, domain, metric_name):
        registry, query, k = _domain(domain)
        metric = _METRICS[metric_name]()
        bnb = Optimizer(
            registry, metric,
            OptimizerConfig(k=k, cache_setting=CacheSetting.ONE_CALL),
        ).optimize(query)
        oracle = exhaustive_optimize(
            query, registry, metric, k=k,
            cache_setting=CacheSetting.ONE_CALL,
        )
        assert bnb.cost == pytest.approx(oracle.cost)


@pytest.mark.parametrize("metric_name", ["scm", "bottleneck"])
def test_secondary_metrics_on_travel(metric_name):
    registry, query, k = _domain("travel")
    metric = _METRICS[metric_name]()
    best = Optimizer(
        registry, metric,
        OptimizerConfig(k=k, cache_setting=CacheSetting.ONE_CALL),
    ).optimize(query)
    assert best.expected_answers >= k
