"""Integration tests for the three-phase branch-and-bound optimizer."""

import pytest

from repro.costs.sum_cost import RequestResponseMetric
from repro.costs.time_cost import ExecutionTimeMetric
from repro.execution.cache import CacheSetting
from repro.optimizer.optimizer import Optimizer, OptimizerConfig, optimize_query
from repro.plans.dag import PlanError
from repro.sources.travel import poset_optimal, running_example_query


class TestConfig:
    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            OptimizerConfig(k=0)

    def test_invalid_heuristic_rejected(self):
        with pytest.raises(ValueError):
            OptimizerConfig(fetch_heuristic="magic")


class TestRunningExampleOptimum:
    def test_etm_picks_plan_o(self, registry, travel_query):
        """Under the execution-time metric the optimizer selects the
        paper's plan O: conf → weather → (flight ∥ hotel) → MS."""
        optimizer = Optimizer(
            registry,
            ExecutionTimeMetric(),
            OptimizerConfig(k=10, cache_setting=CacheSetting.ONE_CALL),
        )
        best = optimizer.optimize(travel_query)
        assert best.poset.closure() == poset_optimal().closure()
        assert [p.code for p in best.patterns] == [
            "iiiiooo", "oiiiio", "ioooo", "ioi"
        ]
        assert best.expected_answers >= 10
        assert best.cost == pytest.approx(40.9)

    def test_etm_fetches_satisfy_k(self, registry, travel_query):
        optimizer = Optimizer(
            registry, ExecutionTimeMetric(), OptimizerConfig(k=10)
        )
        best = optimizer.optimize(travel_query)
        product = best.fetches[0] * best.fetches[1]
        assert product >= 8  # K' = ceil(10 / 1.25)

    def test_rr_prefers_more_sequencing(self, registry, travel_query):
        """Sequencing selective services favors invocation-count
        metrics (Section 4.2.1)."""
        optimizer = Optimizer(
            registry, RequestResponseMetric(), OptimizerConfig(k=10)
        )
        best = optimizer.optimize(travel_query)
        # The RR-optimal plan sequences at least one search service
        # after the other instead of running them in parallel.
        closure = best.poset.closure()
        assert (1, 0) in closure or (0, 1) in closure

    def test_heuristics_only_mode_still_feasible(self, registry, travel_query):
        optimizer = Optimizer(
            registry,
            ExecutionTimeMetric(),
            OptimizerConfig(k=10, max_topologies_per_sequence=0),
        )
        best = optimizer.optimize(travel_query)
        assert best.expected_answers >= 10

    def test_most_cogent_only_finds_same_plan(self, registry, travel_query):
        full = Optimizer(
            registry, ExecutionTimeMetric(), OptimizerConfig(k=10)
        ).optimize(travel_query)
        cogent = Optimizer(
            registry,
            ExecutionTimeMetric(),
            OptimizerConfig(k=10, most_cogent_only=True),
        ).optimize(travel_query)
        assert cogent.cost == pytest.approx(full.cost)


class TestPruning:
    def test_pruning_preserves_optimum(self, registry, travel_query):
        pruned = Optimizer(
            registry, ExecutionTimeMetric(), OptimizerConfig(k=10, prune=True)
        ).optimize(travel_query)
        unpruned = Optimizer(
            registry, ExecutionTimeMetric(), OptimizerConfig(k=10, prune=False)
        ).optimize(travel_query)
        assert pruned.cost == pytest.approx(unpruned.cost)

    def test_pruning_reduces_work(self, registry, travel_query):
        pruned = Optimizer(
            registry, ExecutionTimeMetric(), OptimizerConfig(k=10, prune=True)
        ).optimize(travel_query)
        unpruned = Optimizer(
            registry, ExecutionTimeMetric(), OptimizerConfig(k=10, prune=False)
        ).optimize(travel_query)
        assert pruned.stats.plans_completed <= unpruned.stats.plans_completed
        assert pruned.stats.topology_states_pruned > 0


class TestSmallDomains:
    def test_tiny_query(self, tiny_registry, tiny_query):
        best = optimize_query(
            tiny_query, tiny_registry, RequestResponseMetric(), k=3
        )
        assert best.expected_answers >= 3
        assert len(best.plan.service_nodes) == 2

    def test_bio_query(self):
        from repro.sources.bio import bio_registry, glycolysis_homolog_query

        best = optimize_query(
            glycolysis_homolog_query(), bio_registry(), ExecutionTimeMetric(), k=5
        )
        assert best.expected_answers >= 5
        # blast's decay bounds its fetching factor to 3 chunks.
        blast_node = best.plan.service_node_for_atom(2)
        assert blast_node.fetches <= 3

    def test_weekend_query(self):
        from repro.sources.weekend import mahler_weekend_query, weekend_registry

        best = optimize_query(
            mahler_weekend_query(), weekend_registry(), ExecutionTimeMetric(), k=3
        )
        assert best.expected_answers >= 3


class TestErrors:
    def test_unanswerable_query_raises(self, tiny_registry):
        from repro.model.atoms import atom
        from repro.model.query import query
        from repro.model.terms import Variable

        # spots requires City in input, nothing can provide it.
        blocked = query(
            "q", [Variable("Spot")], [atom("spots", "City", "Spot", "Score")]
        )
        optimizer = Optimizer(
            tiny_registry, ExecutionTimeMetric(), OptimizerConfig(k=1)
        )
        with pytest.raises(PlanError):
            optimizer.optimize(blocked)

    def test_describe_is_informative(self, tiny_registry, tiny_query):
        best = optimize_query(
            tiny_query, tiny_registry, RequestResponseMetric(), k=3
        )
        text = best.describe()
        assert "cost=" in text and "plan:" in text
